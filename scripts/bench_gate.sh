#!/usr/bin/env bash
# Bench-regression gate: compares the freshly measured BENCH_edm.json
# (written by the check.sh steps that ran before this script) against the
# copy committed at HEAD, and fails if any hot-path cell lost more than
# 25 % throughput (fresh ops_per_sec < 0.75 x committed).
#
# Only the hot cells below gate; the remaining cells are informational
# (they cover tiny fixtures whose wall times are noise-dominated). The
# threshold table lives in EXPERIMENTS.md; override the ratio with
# EDM_BENCH_MIN_RATIO for local experiments. CI runs this stage
# non-blocking (continue-on-error): shared runners jitter well past 25 %
# under noisy neighbours, so a red bench stage is a prompt to re-run and
# investigate, not an automatic merge blocker.
set -euo pipefail
cd "$(dirname "$0")/.."

HOT_CELLS="ftl_micro_span event_queue_calendar scale_1024osd_sharded spec_check serve_ingest"
MIN_RATIO="${EDM_BENCH_MIN_RATIO:-0.75}"

fresh="BENCH_edm.json"
if [ ! -f "$fresh" ]; then
    echo "bench gate: $fresh missing — run the check.sh bench-producing steps first" >&2
    exit 2
fi
baseline="$(mktemp)"
trap 'rm -f "$baseline"' EXIT
if ! git show HEAD:BENCH_edm.json > "$baseline" 2> /dev/null; then
    echo "bench gate: no committed BENCH_edm.json at HEAD; nothing to compare"
    exit 0
fi

# BENCH_edm.json keeps one cell object per line, so a line-oriented awk
# lookup is exact: find the line whose "name" field matches, pull its
# ops_per_sec value.
cell_ops() { # <file> <cell-name> -> ops_per_sec (empty if absent)
    awk -v name="$2" -F'"' '
        $2 == "name" && $4 == name && match($0, /"ops_per_sec": *[0-9.eE+-]+/) {
            v = substr($0, RSTART, RLENGTH)
            sub(/.*: */, "", v)
            print v
            exit
        }' "$1"
}

fail=0
echo "bench gate: fresh vs HEAD BENCH_edm.json, min ratio $MIN_RATIO"
printf '%-24s %14s %14s %7s  %s\n' "cell" "committed" "fresh" "ratio" "gate"
for cell in $HOT_CELLS; do
    old="$(cell_ops "$baseline" "$cell")"
    new="$(cell_ops "$fresh" "$cell")"
    if [ -z "$old" ]; then
        printf '%-24s %14s %14s %7s  %s\n' "$cell" "-" "${new:--}" "-" "skip (no baseline)"
        continue
    fi
    if [ -z "$new" ]; then
        printf '%-24s %14s %14s %7s  %s\n' "$cell" "$old" "-" "-" "FAIL (not measured)"
        fail=1
        continue
    fi
    ratio="$(awk -v o="$old" -v n="$new" 'BEGIN { printf "%.3f", (o > 0) ? n / o : 1 }')"
    if awk -v o="$old" -v n="$new" -v r="$MIN_RATIO" 'BEGIN { exit !(o <= 0 || n >= o * r) }'; then
        verdict="ok"
    else
        verdict="FAIL (below min ratio)"
        fail=1
    fi
    printf '%-24s %14s %14s %7s  %s\n' "$cell" "$old" "$new" "$ratio" "$verdict"
done

if [ "$fail" -ne 0 ]; then
    echo "bench gate: FAIL — hot-path throughput regressed past the threshold"
    exit 1
fi
echo "bench gate: PASS"

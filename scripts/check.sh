#!/usr/bin/env bash
# Repo gate, composable: `check.sh <step>` runs one stage, `check.sh all`
# (or no argument) runs the full gate. CI invokes the same steps one by
# one, so the gate and the workflow cannot diverge — edm-audit's
# ci.workflow_gate rule checks the STEPS list below against
# .github/workflows/ci.yml.
#
#   check.sh fmt     rustfmt --check
#   check.sh lint    clippy, warnings denied
#   check.sh audit   edm-audit static analysis
#   check.sh build   release build
#   check.sh test    cargo test
#   check.sh smoke   perf + obs + checkpoint/resume smokes
#   check.sh scale   sharded-vs-sequential digest identity smoke
#   check.sh spec    edm-spec conformance replay of smoke + corpus journals
#   check.sh serve   edm-serve daemon: ingest pipeline, kill/resume, replay digest
#   check.sh fuzz    edm-fuzz smoke batch (+ fuzz_throughput bench cell)
#   check.sh model   analytic-model differential gate (edm-exp model-diff
#                    vs scripts/model_tolerances.json, + model_* bench cells)
#   check.sh tsan    ThreadSanitizer lane over shard + serve tests (advisory;
#                    skips cleanly without a nightly toolchain + rust-src)
#
# EDM_CHECK_QUICK=1 shrinks the expensive steps (test -> workspace lib
# tests only, smoke/scale/spec/fuzz -> skipped) for local edit loops.
set -euo pipefail
cd "$(dirname "$0")/.."

STEPS="fmt lint audit build test smoke scale spec serve fuzz model tsan"
QUICK="${EDM_CHECK_QUICK:-0}"

# Resolve a release binary inside the active target directory. The steps
# used to hardcode ./target/release/<bin>, which ran stale (or missing)
# binaries whenever CARGO_TARGET_DIR pointed the build somewhere else.
bin() {
    printf '%s/release/%s' "${CARGO_TARGET_DIR:-target}" "$1"
}

# Temp dirs live in an array cleaned by a single EXIT trap, so any number
# of steps can allocate scratch space without a later `trap ... EXIT`
# silently replacing (and leaking) an earlier step's cleanup. scratch_dir
# reports through the SCRATCH_DIR global rather than stdout: a command
# substitution would fork the append into a subshell, leaking the dir.
CLEANUP_DIRS=()
cleanup() {
    for d in "${CLEANUP_DIRS[@]-}"; do
        if [ -n "$d" ]; then
            rm -rf "$d"
        fi
    done
}
trap cleanup EXIT
scratch_dir() {
    SCRATCH_DIR="$(mktemp -d)"
    CLEANUP_DIRS+=("$SCRATCH_DIR")
}

step_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
}

step_lint() {
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
}

step_audit() {
    echo "==> edm-audit"
    # Determinism & panic-hygiene static analysis: exits nonzero on any
    # unsuppressed finding. Runs before the release build so rule
    # violations surface in seconds, not after a full compile.
    cargo run -q -p edm-audit --bin edm-audit
}

step_build() {
    echo "==> cargo build --release"
    cargo build --release
}

step_test() {
    if [ "$QUICK" = "1" ]; then
        echo "==> cargo test (quick: lib tests only)"
        cargo test -q --workspace --lib
    else
        echo "==> cargo test"
        cargo test -q
    fi
}

step_smoke() {
    if [ "$QUICK" = "1" ]; then
        echo "==> smoke skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> edm-perf --smoke"
    "$(bin edm-perf)" --smoke

    echo "==> obs smoke (edm-sim --obs-level events + edm-probe --journal)"
    local obs_dir
    scratch_dir; obs_dir="$SCRATCH_DIR"
    cat > "$obs_dir/smoke.scn" <<'EOF'
trace home02
scale 0.004
osds 8
groups 4
policy EDM-HDF
schedule midpoint
force true
EOF
    "$(bin edm-sim)" "$obs_dir/smoke.scn" \
        --obs "$obs_dir/smoke.jsonl" --obs-level events > /dev/null
    # The probe exits nonzero if any journal line fails to parse.
    local probe_out
    probe_out="$("$(bin edm-probe)" --journal "$obs_dir/smoke.jsonl")"
    echo "$probe_out" | grep -q "trigger evaluations" \
        || { echo "obs smoke: no trigger evaluations in journal"; exit 1; }
    echo "$probe_out" | grep -q "ftl.block_erases" \
        || { echo "obs smoke: no erase counter in journal"; exit 1; }
    grep -q '"kind":"trigger_eval"' "$obs_dir/smoke.jsonl" \
        || { echo "obs smoke: trigger_eval event missing"; exit 1; }
    grep -q '"rsd":' "$obs_dir/smoke.jsonl" \
        || { echo "obs smoke: rsd field missing"; exit 1; }
    local event_count
    event_count="$(wc -l < "$obs_dir/smoke.jsonl")"
    [ "$event_count" -gt 0 ] || { echo "obs smoke: empty journal"; exit 1; }
    echo "obs smoke: $event_count journal lines OK"

    echo "==> checkpoint/resume smoke (edm-sim --checkpoint-* / --resume / edm-probe --snapshot)"
    # An uninterrupted run and a run resumed from a mid-run checkpoint
    # must print bit-identical reports and determinism digests.
    local ckpt_dir
    scratch_dir; ckpt_dir="$SCRATCH_DIR"
    cat > "$ckpt_dir/ckpt.scn" <<'EOF'
trace home02
scale 0.002
osds 8
policy EDM-CDF
schedule every-tick
fail 150000 1 rebuild
EOF
    "$(bin edm-sim)" "$ckpt_dir/ckpt.scn" \
        --checkpoint-every 0 --checkpoint-dir "$ckpt_dir/ckpts" \
        > "$ckpt_dir/uninterrupted.txt" 2> /dev/null
    local snap_count mid_snap
    snap_count="$(ls "$ckpt_dir"/ckpts/*.snap | wc -l)"
    [ "$snap_count" -ge 2 ] \
        || { echo "ckpt smoke: want >=2 checkpoints, got $snap_count"; exit 1; }
    mid_snap="$(ls "$ckpt_dir"/ckpts/*.snap | sed -n "$(( (snap_count + 1) / 2 ))p")"
    "$(bin edm-sim)" --resume "$mid_snap" \
        > "$ckpt_dir/resumed.txt" 2> /dev/null
    diff "$ckpt_dir/uninterrupted.txt" "$ckpt_dir/resumed.txt" \
        || { echo "ckpt smoke: resumed run diverged from uninterrupted run"; exit 1; }
    grep -q "determinism digest 0x" "$ckpt_dir/resumed.txt" \
        || { echo "ckpt smoke: no determinism digest printed"; exit 1; }
    local probe_snap
    probe_snap="$("$(bin edm-probe)" --snapshot "$mid_snap")"
    echo "$probe_snap" | grep -q "embedded scenario" \
        || { echo "ckpt smoke: probe found no embedded scenario"; exit 1; }
    echo "$probe_snap" | grep -q "policy          EDM-CDF" \
        || { echo "ckpt smoke: probe manifest missing policy"; exit 1; }
    echo "ckpt smoke: $snap_count checkpoints, resume digest matches OK"
}

step_scale() {
    if [ "$QUICK" = "1" ]; then
        echo "==> scale skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> scale smoke (edm-sim --shards vs sequential digest)"
    # The group-sharded engine's contract: a sharded replay must print a
    # bit-identical report and determinism digest. The stride splits the
    # 4 groups into 2 placement components, so `--shards 2` genuinely
    # runs the parallel path (asserted on the shard-plan line).
    local scale_dir
    scratch_dir; scale_dir="$SCRATCH_DIR"
    cat > "$scale_dir/scale.scn" <<'EOF'
trace home02
scale 0.004
osds 16
groups 4
objects_per_file 2
policy EDM-HDF
schedule every-tick
stride 2
affinity component
EOF
    "$(bin edm-sim)" "$scale_dir/scale.scn" \
        > "$scale_dir/sequential.txt" 2> /dev/null
    "$(bin edm-sim)" "$scale_dir/scale.scn" --shards 2 \
        > "$scale_dir/sharded.txt" 2> "$scale_dir/sharded.log"
    grep -q "shard-plan: components=2 threads=2 active=true" "$scale_dir/sharded.log" \
        || { echo "scale smoke: sharded run fell back to the sequential path"; \
             cat "$scale_dir/sharded.log"; exit 1; }
    diff "$scale_dir/sequential.txt" "$scale_dir/sharded.txt" \
        || { echo "scale smoke: sharded report diverged from sequential"; exit 1; }
    grep -q "determinism digest 0x" "$scale_dir/sharded.txt" \
        || { echo "scale smoke: no determinism digest printed"; exit 1; }
    echo "scale smoke: sharded digest matches sequential OK"
}

step_spec() {
    if [ "$QUICK" = "1" ]; then
        echo "==> spec skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> spec conformance (edm-sim --obs + edm-probe --verify)"
    # The obs smoke shape plus every corpus scenario: each run's event
    # journal must replay cleanly through the edm-spec state machine
    # (edm-probe --verify exits nonzero on the first illegal transition).
    local spec_dir
    scratch_dir; spec_dir="$SCRATCH_DIR"
    cat > "$spec_dir/smoke.scn" <<'EOF'
trace home02
scale 0.004
osds 8
groups 4
policy EDM-HDF
schedule midpoint
force true
EOF
    local n=0 scn name
    for scn in "$spec_dir/smoke.scn" fuzz/corpus/*.scn; do
        name="$(basename "$scn" .scn)"
        "$(bin edm-sim)" "$scn" \
            --obs "$spec_dir/$name.jsonl" --obs-level events > /dev/null
        "$(bin edm-probe)" --verify "$spec_dir/$name.jsonl" \
            | grep -q "conformant" \
            || { echo "spec: $name journal violates the EDM spec"; exit 1; }
        n=$((n + 1))
    done
    echo "spec: $n scenario journals conformant"

    echo "==> spec sharded-journal identity (1024 OSDs, sequential vs sharded)"
    # Shard-aware journaling contract: per-shard buffers merge in fixed
    # component order, so the sharded journal is byte-identical to the
    # sequential one — and still a legal transition stream.
    cat > "$spec_dir/dc.scn" <<'EOF'
trace home02
scale 0.001
osds 1024
groups 32
objects_per_file 4
policy EDM-HDF
schedule every-tick
stride 4
affinity component
EOF
    "$(bin edm-sim)" "$spec_dir/dc.scn" \
        --obs "$spec_dir/dc-seq.jsonl" --obs-level events > /dev/null
    "$(bin edm-sim)" "$spec_dir/dc.scn" --shards 4 \
        --obs "$spec_dir/dc-par.jsonl" --obs-level events > /dev/null
    cmp "$spec_dir/dc-seq.jsonl" "$spec_dir/dc-par.jsonl" \
        || { echo "spec: sharded journal diverged from sequential bytes"; exit 1; }
    "$(bin edm-probe)" --verify "$spec_dir/dc-par.jsonl" > /dev/null \
        || { echo "spec: 1024-OSD sharded journal violates the EDM spec"; exit 1; }
    echo "spec: 1024-OSD sharded journal byte-identical and conformant"
}

# --- serve helpers: raw HTTP over bash /dev/tcp (no curl dependency) ---
serve_get() { # <port> <path> -> body on stdout
    exec 3<>"/dev/tcp/127.0.0.1/$1" || return 1
    printf 'GET %s HTTP/1.1\r\n\r\n' "$2" >&3
    local reply
    reply="$(cat <&3)"
    exec 3<&- 3>&-
    printf '%s' "${reply#*$'\r\n\r\n'}"
}

serve_post() { # <port> <path> [body-file] -> body on stdout
    local len=0
    if [ -n "${3:-}" ]; then
        len="$(wc -c < "$3")"
    fi
    exec 3<>"/dev/tcp/127.0.0.1/$1" || return 1
    {
        printf 'POST %s HTTP/1.1\r\nContent-Length: %s\r\n\r\n' "$2" "$len"
        if [ -n "${3:-}" ]; then cat "$3"; fi
    } >&3
    local reply
    reply="$(cat <&3)"
    exec 3<&- 3>&-
    case "$reply" in
        "HTTP/1.1 200"*) ;;
        *) echo "serve: POST $2 -> ${reply%%$'\r'*}" >&2; return 1 ;;
    esac
    printf '%s' "${reply#*$'\r\n\r\n'}"
}

serve_wait_port() { # <port-file>; sets SERVE_PORT
    local i
    for i in $(seq 1 200); do
        if [ -s "$1" ]; then
            SERVE_PORT="$(head -n1 "$1")"
            return 0
        fi
        sleep 0.05
    done
    echo "serve: daemon never wrote its port file $1"
    exit 1
}

serve_wait_health() { # <port> <healthz-substring> <description>
    local i
    for i in $(seq 1 1200); do
        if serve_get "$1" /healthz 2> /dev/null | grep -q "$2"; then
            return 0
        fi
        sleep 0.05
    done
    echo "serve: timed out waiting for $3"
    serve_get "$1" /healthz 2> /dev/null || true
    exit 1
}

step_serve() {
    if [ "$QUICK" = "1" ]; then
        echo "==> serve skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> serve gate (live daemon: ingest, kill/resume convergence, replay digest)"
    local serve_dir
    scratch_dir; serve_dir="$SCRATCH_DIR"
    # The fuzz-corpus live scenario: crosses wear ticks and fires
    # migrations within a ~1200-op stream.
    cat > "$serve_dir/live.scn" <<'EOF'
trace random
scale 0.002
schedule every-tick
lambda 0.05
EOF
    "$(bin edm-serve)" --dump-ops "$serve_dir/live.scn" > "$serve_dir/ops.txt"
    local total_ops
    total_ops="$(wc -l < "$serve_dir/ops.txt")"
    [ "$total_ops" -gt 500 ] || { echo "serve: suspiciously short op stream"; exit 1; }

    # (1) Dilated live replay must reproduce the batch digest, and its
    # journal must conform to the EDM spec.
    local batch_digest
    batch_digest="$("$(bin edm-sim)" "$serve_dir/live.scn" 2> /dev/null \
        | grep -o "determinism digest 0x[0-9a-f]*" | grep -o "0x[0-9a-f]*")"
    [ -n "$batch_digest" ] || { echo "serve: edm-sim printed no digest"; exit 1; }
    "$(bin edm-serve)" "$serve_dir/live.scn" --speed 100000 \
        --port-file "$serve_dir/replay.port" --journal "$serve_dir/replay.jsonl" \
        > /dev/null &
    local replay_pid=$!
    serve_wait_port "$serve_dir/replay.port"
    serve_wait_health "$SERVE_PORT" '"done":true' "the dilated replay to finish"
    serve_get "$SERVE_PORT" /stats > "$serve_dir/replay-stats.json"
    serve_post "$SERVE_PORT" /shutdown > /dev/null
    wait "$replay_pid"
    grep -q "\"digest\":\"$batch_digest\"" "$serve_dir/replay-stats.json" \
        || { echo "serve: live replay digest diverged from edm-sim $batch_digest"; \
             cat "$serve_dir/replay-stats.json"; exit 1; }
    "$(bin edm-probe)" --verify "$serve_dir/replay.jsonl" | grep -q "conformant" \
        || { echo "serve: replay journal violates the EDM spec"; exit 1; }

    # (2) Uninterrupted ingest run: the full stream through POST /ingest.
    # Its journal must also verify, and /plan must carry a real plan.
    "$(bin edm-serve)" "$serve_dir/live.scn" --mode ingest \
        --port-file "$serve_dir/a.port" --journal "$serve_dir/ingest.jsonl" \
        > /dev/null &
    local a_pid=$!
    serve_wait_port "$serve_dir/a.port"
    { cat "$serve_dir/ops.txt"; echo "end"; } > "$serve_dir/ops-end.txt"
    serve_post "$SERVE_PORT" /ingest "$serve_dir/ops-end.txt" > /dev/null
    serve_wait_health "$SERVE_PORT" '"done":true' "the uninterrupted ingest run"
    serve_get "$SERVE_PORT" /healthz | grep -q '"ok":true' \
        || { echo "serve: daemon unhealthy after ingest"; exit 1; }
    serve_get "$SERVE_PORT" /plan > "$serve_dir/plan.json"
    grep -q '"plan_chosen"' "$serve_dir/plan.json" \
        || { echo "serve: /plan carries no chosen plan"; cat "$serve_dir/plan.json"; exit 1; }
    serve_get "$SERVE_PORT" /stats > "$serve_dir/stats-uninterrupted.json"
    serve_post "$SERVE_PORT" /shutdown > /dev/null
    wait "$a_pid"
    grep -q "\"applied_ops\":$total_ops" "$serve_dir/stats-uninterrupted.json" \
        || { echo "serve: ingest run did not apply all $total_ops ops"; exit 1; }
    "$(bin edm-probe)" --verify "$serve_dir/ingest.jsonl" | grep -q "conformant" \
        || { echo "serve: ingest journal violates the EDM spec"; exit 1; }

    # (3) Kill-and-resume: feed a third of the stream, cut a checkpoint,
    # kill -9 the daemon, resume from the snapshot, re-feed the ENTIRE
    # stream. Dedup skips the checkpointed prefix and /stats must
    # converge bit-identically on the uninterrupted run's.
    local part
    part=$(( total_ops / 3 ))
    head -n "$part" "$serve_dir/ops.txt" > "$serve_dir/ops-part.txt"
    "$(bin edm-serve)" "$serve_dir/live.scn" --mode ingest \
        --port-file "$serve_dir/b.port" --checkpoint-dir "$serve_dir/ckpts" \
        > /dev/null &
    local b_pid=$!
    serve_wait_port "$serve_dir/b.port"
    serve_post "$SERVE_PORT" /ingest "$serve_dir/ops-part.txt" > /dev/null
    serve_wait_health "$SERVE_PORT" "\"ingest_accepted\":$part,\"ingest_buffered\":0" \
        "the partial stream to drain"
    serve_post "$SERVE_PORT" /checkpoint > /dev/null
    serve_wait_health "$SERVE_PORT" '"checkpoints":1' "the checkpoint to be cut"
    kill -9 "$b_pid"
    wait "$b_pid" 2> /dev/null || true
    local snap
    snap="$(ls "$serve_dir"/ckpts/*.snap | tail -n1)"
    [ -n "$snap" ] || { echo "serve: no checkpoint survived the kill"; exit 1; }
    "$(bin edm-serve)" --resume "$snap" --mode ingest \
        --port-file "$serve_dir/c.port" > /dev/null &
    local c_pid=$!
    serve_wait_port "$serve_dir/c.port"
    serve_post "$SERVE_PORT" /ingest "$serve_dir/ops-end.txt" > /dev/null
    serve_wait_health "$SERVE_PORT" '"done":true' "the resumed ingest run"
    serve_get "$SERVE_PORT" /healthz | grep -q "\"skipped_ops\":$part" \
        || { echo "serve: resume dedup did not skip the checkpointed prefix"; \
             serve_get "$SERVE_PORT" /healthz; exit 1; }
    serve_get "$SERVE_PORT" /stats > "$serve_dir/stats-resumed.json"
    serve_post "$SERVE_PORT" /shutdown > /dev/null
    wait "$c_pid"
    diff "$serve_dir/stats-uninterrupted.json" "$serve_dir/stats-resumed.json" \
        || { echo "serve: killed-and-resumed /stats diverged from uninterrupted run"; exit 1; }
    echo "serve: replay digest $batch_digest matches, journals conformant, kill/resume converges OK"
}

step_fuzz() {
    if [ "$QUICK" = "1" ]; then
        echo "==> fuzz skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> edm-fuzz --bench (oracle smoke + fuzz_throughput cell)"
    # A fixed seed-1 batch through the full differential-oracle battery;
    # merges the fuzz_throughput cell into BENCH_edm.json. Nightly CI
    # runs the long-budget variant.
    "$(bin edm-fuzz)" --bench
}

step_model() {
    if [ "$QUICK" = "1" ]; then
        echo "==> model skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> model-diff gate (edm-exp model-diff vs scripts/model_tolerances.json)"
    # Differential cross-validation of the analytic mean-field model
    # (edm-model) against the simulator over every fuzz-corpus scenario:
    # per-scenario KS distance, max relative erase error, and GC-rate
    # error must stay within the committed tolerances. Also merges the
    # model_* cells into BENCH_edm.json.
    "$(bin edm-exp)" model-diff
}

step_tsan() {
    if [ "$QUICK" = "1" ]; then
        echo "==> tsan skipped (EDM_CHECK_QUICK=1)"
        return 0
    fi
    echo "==> tsan (nightly -Zsanitizer=thread over edm-cluster + edm-serve tests)"
    # ThreadSanitizer instruments std itself, so it needs a nightly
    # toolchain with the rust-src component (-Zbuild-std). The lane is
    # advisory and environment-gated: machines without that toolchain
    # skip cleanly instead of failing the gate. The blocking layer for
    # concurrency bugs stays edm-audit's conc.* static rules; this lane
    # catches the dynamic races those can't see.
    if ! command -v rustup > /dev/null 2>&1; then
        echo "tsan: rustup not available, skipping"
        return 0
    fi
    if ! rustup toolchain list 2> /dev/null | grep -q '^nightly'; then
        echo "tsan: no nightly toolchain installed, skipping"
        return 0
    fi
    if ! rustup component list --toolchain nightly --installed 2> /dev/null \
        | grep -q '^rust-src'; then
        echo "tsan: nightly rust-src missing (needed for -Zbuild-std), skipping"
        return 0
    fi
    local host
    host="$(rustc -vV | sed -n 's/^host: //p')"
    # Only the crates with real thread concurrency: the group-sharded
    # engine (scoped-thread shard execution) and the serve daemon
    # (listener + worker + journal threads).
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -q -Zbuild-std --target "$host" \
        -p edm-cluster -p edm-serve
    echo "tsan: shard + serve test suites clean under ThreadSanitizer"
}

run_step() {
    case "$1" in
        fmt)   step_fmt ;;
        lint)  step_lint ;;
        audit) step_audit ;;
        build) step_build ;;
        test)  step_test ;;
        smoke) step_smoke ;;
        scale) step_scale ;;
        spec)  step_spec ;;
        serve) step_serve ;;
        fuzz)  step_fuzz ;;
        model) step_model ;;
        tsan)  step_tsan ;;
        all)
            for s in $STEPS; do
                run_step "$s"
            done
            ;;
        *)
            echo "check.sh: unknown step '$1' (steps: $STEPS all)" >&2
            exit 2
            ;;
    esac
}

run_step "${1:-all}"
echo "check.sh: '${1:-all}' passed."

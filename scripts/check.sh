#!/usr/bin/env bash
# Repo gate: formatting, lints, release build, tests, and a perf-harness
# smoke run. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> edm-audit"
# Determinism & panic-hygiene static analysis: exits nonzero on any
# unsuppressed finding. Runs before the release build so rule
# violations surface in seconds, not after a full compile.
cargo run -q -p edm-audit --bin edm-audit

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> edm-perf --smoke"
./target/release/edm-perf --smoke

echo "==> obs smoke (edm-sim --obs-level events + edm-probe --journal)"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
cat > "$obs_dir/smoke.scn" <<'EOF'
trace home02
scale 0.004
osds 8
groups 4
policy EDM-HDF
schedule midpoint
force true
EOF
./target/release/edm-sim "$obs_dir/smoke.scn" \
    --obs "$obs_dir/smoke.jsonl" --obs-level events > /dev/null
# The probe exits nonzero if any journal line fails to parse.
probe_out="$(./target/release/edm-probe --journal "$obs_dir/smoke.jsonl")"
echo "$probe_out" | grep -q "trigger evaluations" \
    || { echo "obs smoke: no trigger evaluations in journal"; exit 1; }
echo "$probe_out" | grep -q "ftl.block_erases" \
    || { echo "obs smoke: no erase counter in journal"; exit 1; }
grep -q '"kind":"trigger_eval"' "$obs_dir/smoke.jsonl" \
    || { echo "obs smoke: trigger_eval event missing"; exit 1; }
grep -q '"rsd":' "$obs_dir/smoke.jsonl" \
    || { echo "obs smoke: rsd field missing"; exit 1; }
event_count="$(wc -l < "$obs_dir/smoke.jsonl")"
[ "$event_count" -gt 0 ] || { echo "obs smoke: empty journal"; exit 1; }
echo "obs smoke: $event_count journal lines OK"

echo "==> checkpoint/resume smoke (edm-sim --checkpoint-* / --resume / edm-probe --snapshot)"
# An uninterrupted run and a run resumed from a mid-run checkpoint must
# print bit-identical reports and determinism digests.
cat > "$obs_dir/ckpt.scn" <<'EOF'
trace home02
scale 0.002
osds 8
policy EDM-CDF
schedule every-tick
fail 150000 1 rebuild
EOF
./target/release/edm-sim "$obs_dir/ckpt.scn" \
    --checkpoint-every 0 --checkpoint-dir "$obs_dir/ckpts" \
    > "$obs_dir/uninterrupted.txt" 2> /dev/null
snap_count="$(ls "$obs_dir"/ckpts/*.snap | wc -l)"
[ "$snap_count" -ge 2 ] \
    || { echo "ckpt smoke: want >=2 checkpoints, got $snap_count"; exit 1; }
mid_snap="$(ls "$obs_dir"/ckpts/*.snap | sed -n "$(( (snap_count + 1) / 2 ))p")"
./target/release/edm-sim --resume "$mid_snap" \
    > "$obs_dir/resumed.txt" 2> /dev/null
diff "$obs_dir/uninterrupted.txt" "$obs_dir/resumed.txt" \
    || { echo "ckpt smoke: resumed run diverged from uninterrupted run"; exit 1; }
grep -q "determinism digest 0x" "$obs_dir/resumed.txt" \
    || { echo "ckpt smoke: no determinism digest printed"; exit 1; }
probe_snap="$(./target/release/edm-probe --snapshot "$mid_snap")"
echo "$probe_snap" | grep -q "embedded scenario" \
    || { echo "ckpt smoke: probe found no embedded scenario"; exit 1; }
echo "$probe_snap" | grep -q "policy          EDM-CDF" \
    || { echo "ckpt smoke: probe manifest missing policy"; exit 1; }
echo "ckpt smoke: $snap_count checkpoints, resume digest matches OK"

echo "All checks passed."

#!/usr/bin/env bash
# Repo gate: formatting, lints, release build, tests, and a perf-harness
# smoke run. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> edm-perf --smoke"
./target/release/edm-perf --smoke

echo "All checks passed."

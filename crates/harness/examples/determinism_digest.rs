//! Session-local determinism digest: prints pinned observables of fixed
//! cells and FTL micro-workloads so a refactor can be checked for
//! bit-identical behavior. Not part of the test suite.

use edm_cluster::MigrationSchedule;
use edm_harness::runner::{run_cell, Cell, RunConfig};
use edm_ssd::{
    DeviceTime, FtlConfig, Geometry, LatencyModel, PageLevelFtl, Ssd, VictimPolicy, WearLevelConfig,
};

fn main() {
    let cfg = RunConfig {
        scale: 0.002,
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
        jobs: None,
    };
    for (t, p) in [
        ("home02", "EDM-HDF"),
        ("deasna", "EDM-CDF"),
        ("lair62", "CMT"),
        ("random", "Baseline"),
    ] {
        let r = run_cell(&Cell::new(t, p, 8), &cfg);
        println!(
            "cell {t}/{p}: duration_us={} erases={} moved={} completed={} mean_resp={:.6}",
            r.duration_us,
            r.aggregate_erases(),
            r.moved_objects,
            r.completed_ops,
            r.mean_response_us
        );
    }

    let geom = Geometry {
        page_size: 4096,
        pages_per_block: 32,
        blocks: 256,
        over_provision_ppt: 80,
    };
    for policy in [
        VictimPolicy::Greedy,
        VictimPolicy::CostBenefit,
        VictimPolicy::Fifo,
    ] {
        for threshold in [0u64, 8] {
            let mut ftl = PageLevelFtl::new(
                geom,
                FtlConfig {
                    victim_policy: policy,
                    wear_leveling: WearLevelConfig {
                        static_threshold: threshold,
                        ..WearLevelConfig::DEFAULT
                    },
                    ..FtlConfig::default()
                },
            );
            let lat = LatencyModel::PAPER;
            let exported = ftl.geometry().exported_pages();
            let live = exported * 7 / 10;
            let mut total = DeviceTime(0);
            for lpn in 0..live {
                total += ftl.write(lpn, &lat).unwrap();
            }
            let mut x = 0x9E3779B97F4A7C15u64;
            for _ in 0..400_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                total += ftl.write((x >> 11) % live, &lat).unwrap();
            }
            for lpn in (0..live).step_by(3) {
                total += ftl.read(lpn, &lat).unwrap();
            }
            for lpn in (0..live).step_by(7) {
                ftl.trim(lpn).unwrap();
            }
            let ec = ftl.block_erase_counts();
            let s = ftl.stats();
            println!(
                "ftl {policy:?}/t{threshold}: time={} erases={} ec_sum={} ec_min={} ec_max={} mapped={} wear={:?}",
                total.0,
                s.block_erases,
                ec.iter().sum::<u64>(),
                ec.iter().min().unwrap(),
                ec.iter().max().unwrap(),
                ftl.mapped_pages(),
                s
            );
        }
    }

    // Ssd-level warm_up digest.
    let mut ssd = Ssd::new(geom, LatencyModel::PAPER);
    ssd.write(0, 13 * 1024 * 1024).unwrap();
    ssd.warm_up().unwrap();
    println!(
        "ssd warmup: util={:.9} wear={:?} free={}",
        ssd.utilization(),
        ssd.wear(),
        ssd.free_bytes()
    );
}

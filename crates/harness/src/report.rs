//! ASCII table/series rendering for experiment output.

/// Renders a table with a header row; columns sized to content.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a ratio as a signed percentage ("+12.3%" / "-4.0%").
pub fn signed_pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Formats a float with thousands grouping for counts.
pub fn grouped(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|--"));
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn signed_pct_formats_both_signs() {
        assert_eq!(signed_pct(0.123), "+12.3%");
        assert_eq!(signed_pct(-0.04), "-4.0%");
        assert_eq!(signed_pct(0.0), "+0.0%");
    }

    #[test]
    fn grouped_inserts_commas() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1000), "1,000");
        assert_eq!(grouped(1234567), "1,234,567");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}

//! Parallel experiment runner.
//!
//! The simulation itself is a deterministic single-threaded DES; the
//! parallelism lives here: the (trace × policy × cluster-size) matrix fans
//! out over scoped threads pulling cells off a shared queue, bounded by
//! the available cores.

use std::collections::HashMap;
use std::sync::Mutex;

use edm_cluster::{run_trace, Cluster, ClusterConfig, MigrationSchedule, RunReport, SimOptions};
use edm_core::make_policy;
use edm_workload::synth::synthesize;
use edm_workload::{harvard, Trace};

/// One cell of an experiment matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    pub trace: String,
    pub policy: String,
    pub osds: u32,
}

impl Cell {
    pub fn new(trace: &str, policy: &str, osds: u32) -> Self {
        Cell {
            trace: trace.into(),
            policy: policy.into(),
            osds,
        }
    }
}

/// Scaling and scheduling knobs of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Trace scale factor in (0, 1]; 1.0 replays the full Table 1 counts.
    pub scale: f64,
    pub schedule: MigrationSchedule,
    /// Response-window override, µs. `None` scales the paper's 3-minute
    /// window by `scale`.
    pub response_window_us: Option<u64>,
    /// Worker-thread cap for [`run_matrix`]. `None` falls back to the
    /// `EDM_JOBS` environment variable, then to the available cores.
    pub jobs: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: 0.05,
            schedule: MigrationSchedule::Midpoint,
            response_window_us: None,
            jobs: None,
        }
    }
}

/// Resolves the worker count for a matrix of `cells` cells: explicit
/// config wins, then the `EDM_JOBS` environment variable, then available
/// parallelism; always at least 1 and at most the number of cells.
fn resolve_jobs(cfg: &RunConfig, cells: usize) -> usize {
    let requested = cfg.jobs.or_else(|| {
        // edm-audit: allow(det.env_read, "operator override for sweep parallelism; the job count never affects per-cell results")
        std::env::var("EDM_JOBS")
            .ok()
            .and_then(|v| match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    eprintln!("runner: ignoring invalid EDM_JOBS={v:?} (want a positive integer)");
                    None
                }
            })
    });
    requested
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, cells.max(1))
}

/// Synthesizes the named trace at the given scale (Harvard preset or the
/// Fig. 3 `random` workload).
pub fn trace_for(name: &str, scale: f64) -> Trace {
    let spec = if name == "random" {
        harvard::random_spec()
    } else {
        harvard::spec(name)
    };
    synthesize(&spec.scaled(scale))
}

/// Runs one cell end to end: synthesize → build → warm up → replay.
///
/// The response-time reporting window scales with the trace so a scaled
/// run still yields a usable Fig. 7 series (3 minutes at full scale).
pub fn run_cell(cell: &Cell, cfg: &RunConfig) -> RunReport {
    let trace = trace_for(&cell.trace, cfg.scale);
    let mut config = ClusterConfig::paper(cell.osds);
    config.response_window_us = cfg
        .response_window_us
        .unwrap_or(((config.response_window_us as f64 * cfg.scale) as u64).max(50_000));
    // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
    let cluster = Cluster::build(config, &trace).expect("cluster build failed");
    let mut policy = make_policy(&cell.policy);
    run_trace(
        cluster,
        &trace,
        policy.as_mut(),
        SimOptions {
            schedule: cfg.schedule,
            failures: Vec::new(),
            checkpoint: None,
            ..SimOptions::default()
        },
    )
}

/// Runs a whole matrix in parallel; results keyed by cell. Worker count
/// comes from [`RunConfig::jobs`], the `EDM_JOBS` environment variable,
/// or the available cores, in that order.
pub fn run_matrix(cells: &[Cell], cfg: &RunConfig) -> HashMap<Cell, RunReport> {
    let results = Mutex::new(HashMap::with_capacity(cells.len()));
    let workers = resolve_jobs(cfg, cells.len());
    eprintln!("runner: {} cells across {} workers", cells.len(), workers);
    let queue = Mutex::new(cells.to_vec());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // edm-audit: allow(panic.expect, "a poisoned queue means a worker already panicked; propagate the abort")
                let Some(cell) = queue.lock().expect("queue poisoned").pop() else {
                    break;
                };
                let report = run_cell(&cell, cfg);
                results
                    .lock()
                    // edm-audit: allow(panic.expect, "a poisoned results lock means a worker already panicked; propagate the abort")
                    .expect("results poisoned")
                    .insert(cell, report);
            });
        }
    });
    // edm-audit: allow(panic.expect, "a poisoned results lock means a worker already panicked; propagate the abort")
    results.into_inner().expect("results poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.001,
            ..RunConfig::default()
        }
    }

    #[test]
    fn jobs_resolution_prefers_config() {
        let cfg = RunConfig {
            jobs: Some(3),
            ..RunConfig::default()
        };
        assert_eq!(resolve_jobs(&cfg, 10), 3);
        // Clamped to the number of cells.
        assert_eq!(resolve_jobs(&cfg, 2), 2);
        // Never zero, even for an empty matrix.
        assert!(resolve_jobs(&RunConfig::default(), 0) >= 1);
    }

    #[test]
    fn run_cell_produces_complete_report() {
        let cell = Cell::new("deasna", "Baseline", 8);
        let r = run_cell(&cell, &tiny());
        assert_eq!(r.policy, "Baseline");
        assert_eq!(r.osds, 8);
        assert!(r.completed_ops > 0);
    }

    #[test]
    fn run_matrix_covers_all_cells() {
        let cells = vec![
            Cell::new("deasna", "Baseline", 8),
            Cell::new("deasna", "EDM-HDF", 8),
        ];
        let out = run_matrix(&cells, &tiny());
        assert_eq!(out.len(), 2);
        for c in &cells {
            assert!(out.contains_key(c), "missing {c:?}");
        }
    }

    #[test]
    fn matrix_results_match_single_runs() {
        // Parallel execution must not perturb the deterministic DES: every
        // cell of a mixed trace × policy matrix must reproduce its solo
        // run exactly, however the worker threads interleave.
        let cells = vec![
            Cell::new("deasna", "EDM-CDF", 8),
            Cell::new("deasna", "Baseline", 8),
            Cell::new("home02", "EDM-HDF", 8),
            Cell::new("lair62", "CMT", 8),
        ];
        let matrix = run_matrix(&cells, &tiny());
        assert_eq!(matrix.len(), cells.len());
        for cell in &cells {
            let solo = run_cell(cell, &tiny());
            let from_matrix = &matrix[cell];
            assert_eq!(solo.duration_us, from_matrix.duration_us, "{cell:?}");
            assert_eq!(
                solo.aggregate_erases(),
                from_matrix.aggregate_erases(),
                "{cell:?}"
            );
            assert_eq!(solo.moved_objects, from_matrix.moved_objects, "{cell:?}");
            assert_eq!(solo.completed_ops, from_matrix.completed_ops, "{cell:?}");
        }
    }

    #[test]
    fn trace_for_handles_random() {
        let t = trace_for("random", 0.001);
        assert_eq!(t.name, "random");
        assert!(t.stats().write_cnt > 0);
    }
}

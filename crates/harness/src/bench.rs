//! Tracked-benchmark cells: the `BENCH_edm.json` schema and a
//! merge-preserving writer.
//!
//! More than one tool owns cells in the file (`edm-perf` owns the
//! simulator cells, `edm-fuzz` owns `fuzz_throughput`), so a writer must
//! not clobber cells it does not produce: it replaces its own cells in
//! place, keeps everything else in the file's original order, and appends
//! genuinely new cells at the end.

use edm_obs::json::{parse, JsonValue};

/// One benchmark cell. `ops_per_sec` is the cell's own unit (pages/s,
/// ops/s, bytes/s, files/s, scenarios/s — documented per cell).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    pub name: String,
    pub wall_ms: f64,
    pub ops_per_sec: f64,
    pub erases: u64,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Reconstructs the cells already in `text` (ignores anything that does
/// not parse — a corrupt file is simply rewritten from scratch).
fn existing_cells(text: &str) -> Vec<BenchCell> {
    let Ok(JsonValue::Arr(items)) = parse(text) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|it| {
            Some(BenchCell {
                name: it.get("name")?.as_str()?.to_string(),
                wall_ms: it.get("wall_ms").and_then(JsonValue::as_f64).unwrap_or(0.0),
                ops_per_sec: it
                    .get("ops_per_sec")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
                erases: it.get("erases").and_then(JsonValue::as_u64).unwrap_or(0),
            })
        })
        .collect()
}

/// Writes `owned` cells into `path`, preserving cells owned by other
/// writers: existing cells keep their file order (owned ones updated in
/// place), and owned cells not yet present are appended.
pub fn write_cells(path: &str, owned: &[BenchCell]) -> std::io::Result<()> {
    let mut merged: Vec<BenchCell> = Vec::new();
    let mut placed = vec![false; owned.len()];
    if let Ok(old) = std::fs::read_to_string(path) {
        for cell in existing_cells(&old) {
            match owned.iter().position(|c| c.name == cell.name) {
                Some(i) => {
                    if let (Some(p), Some(c)) = (placed.get_mut(i), owned.get(i)) {
                        if !*p {
                            *p = true;
                            merged.push(c.clone());
                        }
                    }
                }
                None => merged.push(cell),
            }
        }
    }
    for (i, c) in owned.iter().enumerate() {
        if !placed.get(i).copied().unwrap_or(true) {
            merged.push(c.clone());
        }
    }

    let mut s = String::from("[\n");
    for (i, r) in merged.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"erases\": {}}}{}\n",
            json_escape(&r.name),
            r.wall_ms,
            r.ops_per_sec,
            r.erases,
            if i + 1 < merged.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s.push('\n');
    std::fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, wall: f64) -> BenchCell {
        BenchCell {
            name: name.into(),
            wall_ms: wall,
            ops_per_sec: 10.0,
            erases: 3,
        }
    }

    fn tmp(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("edm-bench-{tag}-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn fresh_file_holds_exactly_the_owned_cells() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        write_cells(&path, &[cell("a", 1.0), cell("b", 2.0)]).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let cells = existing_cells(&text);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].name, "a");
        assert_eq!(cells[1].name, "b");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_cells_survive_and_keep_their_order() {
        let path = tmp("merge");
        let _ = std::fs::remove_file(&path);
        write_cells(&path, &[cell("perf_a", 1.0), cell("perf_b", 2.0)]).expect("write");
        // Another tool writes its own cell: the perf cells must survive.
        write_cells(&path, &[cell("fuzz_throughput", 9.0)]).expect("write");
        // The first tool rewrites with new numbers: the fuzz cell survives
        // and cell order is stable.
        write_cells(&path, &[cell("perf_a", 5.0), cell("perf_b", 6.0)]).expect("write");
        let cells = existing_cells(&std::fs::read_to_string(&path).expect("read"));
        let names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["perf_a", "perf_b", "fuzz_throughput"]);
        assert_eq!(cells[0].wall_ms, 5.0);
        assert_eq!(cells[2].wall_ms, 9.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_rewritten() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not json").expect("write");
        write_cells(&path, &[cell("a", 1.0)]).expect("write");
        let cells = existing_cells(&std::fs::read_to_string(&path).expect("read"));
        assert_eq!(cells.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escaped_names_round_trip() {
        let path = tmp("escape");
        let _ = std::fs::remove_file(&path);
        write_cells(&path, &[cell("we\"ird\\name", 1.0)]).expect("write");
        let cells = existing_cells(&std::fs::read_to_string(&path).expect("read"));
        assert_eq!(cells[0].name, "we\"ird\\name");
        let _ = std::fs::remove_file(&path);
    }
}

//! Figure 7 — mean response time of file operations served during data
//! migration, per 3-minute window, for home02, deasna and lair62 under
//! Baseline, EDM-HDF and EDM-CDF.
//!
//! Expected shape (§V.D): HDF spikes when migration starts (requests to
//! in-flight objects block) and then settles *below* the pre-migration
//! level; CDF barely perturbs the series because the objects it moves are
//! rarely accessed.

use edm_cluster::{ResponseWindow, RunReport};
use edm_workload::harvard::MOTIVATION_TRACES;

use crate::report::render_table;
use crate::runner::{run_matrix, Cell, RunConfig};

/// The policies Fig. 7 compares.
pub const FIG7_POLICIES: [&str; 3] = ["Baseline", "EDM-HDF", "EDM-CDF"];

/// One trace's response-time series per policy.
#[derive(Debug, Clone)]
pub struct TraceSeries {
    pub trace: String,
    /// (policy name, series, whole-run mean µs, moved objects).
    pub series: Vec<(String, Vec<ResponseWindow>, f64, u64)>,
}

pub fn run(cfg: &RunConfig, osds: u32) -> Vec<TraceSeries> {
    // Fig. 7 needs a time *series*: use a window one tenth of the scaled
    // default so the spike and recovery around the midpoint are visible.
    let cfg = &RunConfig {
        response_window_us: Some(
            cfg.response_window_us
                .unwrap_or(((180e6 * cfg.scale) as u64 / 10).max(20_000)),
        ),
        ..*cfg
    };
    let cells: Vec<Cell> = MOTIVATION_TRACES
        .iter()
        .flat_map(|t| FIG7_POLICIES.iter().map(move |p| Cell::new(t, p, osds)))
        .collect();
    let reports = run_matrix(&cells, cfg);
    MOTIVATION_TRACES
        .iter()
        .map(|t| TraceSeries {
            trace: t.to_string(),
            series: FIG7_POLICIES
                .iter()
                .map(|p| {
                    let r: &RunReport = &reports[&Cell::new(t, p, osds)];
                    (
                        p.to_string(),
                        r.response_windows.clone(),
                        r.mean_response_us,
                        r.moved_objects,
                    )
                })
                .collect(),
        })
        .collect()
}

pub fn render(results: &[TraceSeries]) -> String {
    let mut out = String::new();
    for ts in results {
        out.push_str(&format!(
            "Figure 7: mean response time during migration — {}\n",
            ts.trace
        ));
        // Align windows across policies (series can differ in length
        // because migration changes the run's duration).
        let max_windows = ts
            .series
            .iter()
            .map(|(_, w, _, _)| w.len())
            .max()
            .unwrap_or(0);
        let mut headers: Vec<String> = vec!["window".into()];
        headers.extend(ts.series.iter().map(|(p, _, _, _)| p.clone()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = (0..max_windows)
            .map(|w| {
                let mut row = vec![format!("t{w}")];
                for (_, windows, _, _) in &ts.series {
                    row.push(match windows.get(w) {
                        Some(win) if win.completed_ops > 0 => {
                            format!("{:.0}us", win.mean_response_us)
                        }
                        _ => "-".into(),
                    });
                }
                row
            })
            .collect();
        out.push_str(&render_table(&header_refs, &rows));
        for (p, _, mean, moved) in &ts.series {
            out.push_str(&format!(
                "  {p}: whole-run mean {mean:.0}us, moved objects {moved}\n"
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::MigrationSchedule;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            schedule: MigrationSchedule::Midpoint,
            response_window_us: None,
            jobs: None,
        }
    }

    #[test]
    fn produces_series_for_each_trace_and_policy() {
        let results = run(&tiny(), 8);
        assert_eq!(results.len(), 3);
        for ts in &results {
            assert_eq!(ts.series.len(), 3);
            for (p, windows, mean, _) in &ts.series {
                assert!(!windows.is_empty(), "{p} empty series");
                assert!(*mean > 0.0);
            }
        }
    }

    #[test]
    fn render_lists_policies_and_windows() {
        let text = render(&run(&tiny(), 8));
        assert!(text.contains("home02"));
        assert!(text.contains("EDM-HDF"));
        assert!(text.contains("moved objects"));
    }
}

//! Ablations beyond the paper's figures (DESIGN.md §6): sensitivity of
//! the reproduction to σ (wear-model fit), λ (trigger threshold), and the
//! group count m (intra-group constraint).

use edm_cluster::{run_trace, Cluster, ClusterConfig, NoMigration, RunReport, SimOptions};
use edm_cluster::{MigrationSchedule, Migrator};
use edm_core::{EdmConfig, EdmHdf, WearModel};
use edm_ssd::ftl::VictimPolicy;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

use crate::experiments::fig3;
use crate::report::render_table;
use crate::runner::{trace_for, RunConfig};

/// σ sweep: how well Eq. 3 with each σ fits the measured uᵣ of a skewed
/// trace, reported as mean absolute error over the utilization grid.
pub fn sigma_sweep(cfg: &RunConfig, sigmas: &[f64]) -> Vec<(f64, f64)> {
    let trace = synthesize(&harvard::spec("home02").scaled(cfg.scale));
    let grid: Vec<f64> = (6..=17).map(|i| i as f64 * 0.05).collect();
    let measured: Vec<(f64, f64)> = grid
        .iter()
        .filter_map(|&u| fig3::measure_ur(&trace, u).map(|m| (u, m)))
        .collect();
    sigmas
        .iter()
        .map(|&sigma| {
            let model = WearModel {
                pages_per_block: 32,
                sigma,
            };
            let mae = measured
                .iter()
                .map(|&(u, m)| (model.f_of_u(u) - m).abs())
                .sum::<f64>()
                / measured.len().max(1) as f64;
            (sigma, mae)
        })
        .collect()
}

pub fn render_sigma(rows: &[(f64, f64)]) -> String {
    let best = rows
        .iter()
        // edm-audit: allow(panic.expect, "per-OSD means of finite latencies")
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|r| r.0)
        .unwrap_or(f64::NAN);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(s, mae)| vec![format!("{s:.2}"), format!("{mae:.4}")])
        .collect();
    format!(
        "Ablation: sigma sweep (Eq. 3 fit on home02); best sigma = {best:.2}\n{}",
        render_table(&["sigma", "mean |estimated - measured| u_r"], &table)
    )
}

/// λ sweep: trigger threshold vs moved objects and erase savings under
/// EDM-HDF with the trigger check enabled (not forced).
pub fn lambda_sweep(cfg: &RunConfig, osds: u32, lambdas: &[f64]) -> Vec<(f64, RunReport)> {
    let trace = trace_for("home02", cfg.scale);
    lambdas
        .iter()
        .map(|&lambda| {
            let cluster =
                // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
                Cluster::build(ClusterConfig::paper(osds), &trace).expect("cluster build");
            let mut policy = EdmHdf::new(EdmConfig {
                lambda,
                force: false,
                ..EdmConfig::default()
            });
            let report = run_trace(
                cluster,
                &trace,
                &mut policy,
                SimOptions {
                    schedule: MigrationSchedule::Midpoint,
                    failures: Vec::new(),
                    checkpoint: None,
                    ..SimOptions::default()
                },
            );
            (lambda, report)
        })
        .collect()
}

pub fn render_lambda(rows: &[(f64, RunReport)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(l, r)| {
            vec![
                format!("{l:.2}"),
                r.moved_objects.to_string(),
                r.aggregate_erases().to_string(),
                format!("{:.0}", r.throughput_ops_per_sec()),
            ]
        })
        .collect();
    format!(
        "Ablation: lambda sweep (EDM-HDF, trigger checked, home02)\n{}",
        render_table(&["lambda", "moved", "aggregate erases", "ops/s"], &table)
    )
}

/// Group-count sweep: the intra-group constraint narrows the destination
/// choice; more groups = smaller groups = tighter constraint.
pub fn group_sweep(cfg: &RunConfig, osds: u32, groups: &[u32]) -> Vec<(u32, RunReport)> {
    let trace = trace_for("home02", cfg.scale);
    groups
        .iter()
        .map(|&m| {
            let mut cluster_cfg = ClusterConfig::paper(osds);
            cluster_cfg.groups = m;
            cluster_cfg.objects_per_file = m.min(4);
            // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
            let cluster = Cluster::build(cluster_cfg, &trace).expect("cluster build");
            let mut policy = EdmHdf::default();
            let report = run_trace(
                cluster,
                &trace,
                &mut policy,
                SimOptions {
                    schedule: MigrationSchedule::Midpoint,
                    failures: Vec::new(),
                    checkpoint: None,
                    ..SimOptions::default()
                },
            );
            (m, report)
        })
        .collect()
}

pub fn render_groups(rows: &[(u32, RunReport)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(m, r)| {
            vec![
                m.to_string(),
                r.moved_objects.to_string(),
                format!("{:.3}", r.erase_rsd()),
                r.aggregate_erases().to_string(),
            ]
        })
        .collect();
    format!(
        "Ablation: group-count sweep (EDM-HDF, home02)\n{}",
        render_table(
            &["groups m", "moved", "final erase RSD", "aggregate erases"],
            &table
        )
    )
}

/// Check that `policy` as a trait object still reports its proper name
/// (used by the CLI to label ablation output).
pub fn policy_label(policy: &dyn Migrator) -> &str {
    policy.name()
}

/// Continuous-migration ablation (extension): the paper forces one
/// migration at the trace midpoint (§V.A); in deployment the wear monitor
/// re-evaluates the trigger every minute (§III.B.2). This compares three
/// operating modes of EDM-HDF on one trace:
/// never migrate, one forced midpoint round, and continuous trigger-gated
/// rounds at every (scaled) wear tick.
pub fn continuous_sweep(cfg: &RunConfig, osds: u32) -> Vec<(&'static str, RunReport)> {
    let trace = trace_for("home02", cfg.scale);
    let run_mode = |label: &'static str,
                    schedule: MigrationSchedule,
                    force: bool|
     -> (&'static str, RunReport) {
        let mut cluster_cfg = ClusterConfig::paper(osds);
        // Scale the 1-minute wear tick with the trace so continuous mode
        // gets multiple evaluation rounds within the scaled replay.
        cluster_cfg.wear_tick_us =
            ((cluster_cfg.wear_tick_us as f64 * cfg.scale) as u64).max(100_000);
        // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
        let cluster = Cluster::build(cluster_cfg, &trace).expect("cluster build");
        let mut policy = EdmHdf::new(EdmConfig {
            force,
            ..EdmConfig::default()
        });
        let report = run_trace(
            cluster,
            &trace,
            &mut policy,
            SimOptions {
                schedule,
                failures: Vec::new(),
                checkpoint: None,
                ..SimOptions::default()
            },
        );
        (label, report)
    };
    vec![
        run_mode("never", MigrationSchedule::Never, false),
        run_mode("forced midpoint", MigrationSchedule::Midpoint, true),
        run_mode(
            "continuous (trigger-gated)",
            MigrationSchedule::EveryTick,
            false,
        ),
    ]
}

/// GC victim-policy ablation (extension): the wear model (Eq. 1) is
/// derived for *greedy* reclamation; this runs the whole cluster under
/// each victim policy and reports what the choice costs in erases and
/// throughput.
pub fn gc_policy_sweep(cfg: &RunConfig, osds: u32) -> Vec<(&'static str, RunReport)> {
    let trace = trace_for("home02", cfg.scale);
    [
        ("greedy (paper)", VictimPolicy::Greedy),
        ("cost-benefit", VictimPolicy::CostBenefit),
        ("fifo", VictimPolicy::Fifo),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let mut cluster_cfg = ClusterConfig::paper(osds);
        cluster_cfg.ftl.victim_policy = policy;
        // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
        let cluster = Cluster::build(cluster_cfg, &trace).expect("cluster build");
        let mut noop = NoMigration;
        let report = run_trace(
            cluster,
            &trace,
            &mut noop,
            SimOptions {
                schedule: MigrationSchedule::Never,
                failures: Vec::new(),
                checkpoint: None,
                ..SimOptions::default()
            },
        );
        (label, report)
    })
    .collect()
}

pub fn render_gc_policy(rows: &[(&'static str, RunReport)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, r)| {
            let gc_moves: u64 = r.per_osd.iter().map(|o| o.gc_page_moves).sum();
            vec![
                label.to_string(),
                r.aggregate_erases().to_string(),
                gc_moves.to_string(),
                format!("{:.0}", r.throughput_ops_per_sec()),
            ]
        })
        .collect();
    format!(
        "Ablation: GC victim policy (Baseline replay, home02)
{}",
        render_table(
            &[
                "victim policy",
                "aggregate erases",
                "gc page moves",
                "ops/s"
            ],
            &table
        )
    )
}

/// Temperature-decay ablation (DESIGN.md §6): on a workload whose hot set
/// drifts over time (4 temporal phases), compare EDM-HDF with the paper's
/// decayed temperature (interval = one scaled minute) against a
/// no-decay variant (one interval spanning the whole run, so temperature
/// degenerates to a cumulative access count). Continuous trigger-gated
/// migration, where stale rankings have repeated chances to mislead.
pub fn decay_sweep(cfg: &RunConfig, osds: u32) -> Vec<(&'static str, RunReport)> {
    let mut spec = harvard::spec("home02").scaled(cfg.scale);
    spec.skew.phases = 4;
    let trace = synthesize(&spec);
    let tick_us = ((60e6 * cfg.scale) as u64).max(100_000);
    let run_mode = |label: &'static str, interval_us: u64| -> (&'static str, RunReport) {
        let mut cluster_cfg = ClusterConfig::paper(osds);
        cluster_cfg.wear_tick_us = tick_us;
        // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
        let cluster = Cluster::build(cluster_cfg, &trace).expect("cluster build");
        let mut policy = EdmHdf::new(EdmConfig {
            force: false,
            temperature_interval_us: interval_us,
            ..EdmConfig::default()
        });
        let report = run_trace(
            cluster,
            &trace,
            &mut policy,
            SimOptions {
                schedule: MigrationSchedule::EveryTick,
                failures: Vec::new(),
                checkpoint: None,
                ..SimOptions::default()
            },
        );
        (label, report)
    };
    vec![
        run_mode("decay (scaled minute)", tick_us),
        run_mode("no decay (one interval)", u64::MAX / 4),
    ]
}

pub fn render_decay(rows: &[(&'static str, RunReport)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, r)| {
            vec![
                label.to_string(),
                r.moved_objects.to_string(),
                format!("{:.3}", r.erase_rsd()),
                format!("{:.0}", r.throughput_ops_per_sec()),
            ]
        })
        .collect();
    format!(
        "Ablation: temperature decay (EDM-HDF, phase-shifting home02)
{}",
        render_table(&["mode", "moved", "final erase RSD", "ops/s"], &table)
    )
}

pub fn render_continuous(rows: &[(&'static str, RunReport)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, r)| {
            vec![
                label.to_string(),
                r.migrations_triggered.to_string(),
                r.moved_objects.to_string(),
                r.aggregate_erases().to_string(),
                format!("{:.0}", r.throughput_ops_per_sec()),
                format!("{:.3}", r.erase_rsd()),
            ]
        })
        .collect();
    format!(
        "Ablation: migration schedule (EDM-HDF, home02)
{}",
        render_table(
            &["mode", "rounds", "moved", "erases", "ops/s", "erase RSD"],
            &table
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            ..Default::default()
        }
    }

    #[test]
    fn sigma_sweep_prefers_positive_sigma_on_skewed_trace() {
        let rows = sigma_sweep(&tiny(), &[0.0, 0.28]);
        assert_eq!(rows.len(), 2);
        let (mae0, mae28) = (rows[0].1, rows[1].1);
        assert!(
            mae28 < mae0,
            "σ=0.28 should fit home02 better than σ=0: {mae28} vs {mae0}"
        );
    }

    #[test]
    fn lambda_sweep_monotone_moves() {
        let rows = lambda_sweep(&tiny(), 8, &[0.05, 10.0]);
        // An absurdly high λ never triggers ⇒ no moves.
        assert_eq!(rows[1].1.moved_objects, 0);
        assert!(rows[0].1.moved_objects >= rows[1].1.moved_objects);
    }

    #[test]
    fn group_sweep_runs_each_m() {
        let rows = group_sweep(&tiny(), 8, &[2, 4]);
        assert_eq!(rows.len(), 2);
        for (_, r) in &rows {
            assert!(r.completed_ops > 0);
        }
    }

    #[test]
    fn gc_policy_sweep_orders_sanely() {
        let rows = gc_policy_sweep(&tiny(), 8);
        assert_eq!(rows.len(), 3);
        let erases = |label: &str| {
            rows.iter()
                .find(|(l, _)| l.starts_with(label))
                .expect("present")
                .1
                .aggregate_erases()
        };
        // Greedy is the floor; FIFO can only do worse or equal.
        assert!(erases("greedy") <= erases("fifo"));
    }

    #[test]
    fn decay_sweep_runs_both_modes() {
        let rows = decay_sweep(&tiny(), 8);
        assert_eq!(rows.len(), 2);
        for (label, r) in &rows {
            assert!(r.completed_ops > 0, "{label} did not run");
        }
        // The decayed variant must track the drifting hot set at least as
        // well as the stale cumulative ranking.
        assert!(rows[0].1.erase_rsd() <= rows[1].1.erase_rsd() + 0.1);
    }

    #[test]
    fn continuous_mode_migrates_repeatedly() {
        let rows = continuous_sweep(&tiny(), 8);
        assert_eq!(rows.len(), 3);
        let by = |label: &str| {
            &rows
                .iter()
                .find(|(l, _)| l.starts_with(label))
                .expect("mode present")
                .1
        };
        assert_eq!(by("never").migrations_triggered, 0);
        assert_eq!(by("forced").migrations_triggered, 1);
        // Trigger-gated continuous mode fires at least once on a skewed
        // trace and balances wear at least as well as one forced round.
        assert!(by("continuous").migrations_triggered >= 1);
        assert!(by("continuous").erase_rsd() <= by("never").erase_rsd());
    }

    #[test]
    fn renders_are_nonempty() {
        let s = sigma_sweep(&tiny(), &[0.0, 0.28]);
        assert!(render_sigma(&s).contains("sigma"));
        let l = lambda_sweep(&tiny(), 8, &[0.1]);
        assert!(render_lambda(&l).contains("lambda"));
        let g = group_sweep(&tiny(), 8, &[4]);
        assert!(render_groups(&g).contains("groups"));
        let c = continuous_sweep(&tiny(), 8);
        assert!(render_continuous(&c).contains("schedule"));
    }
}

//! Failure experiment (extension): kill one OSD mid-replay and compare
//! degraded service with and without RAID-5 reconstruction, plus the
//! §III.D fault-independence check (same-group double failure loses
//! nothing; cross-group double failure loses stripes).

use edm_cluster::{
    run_trace, Cluster, ClusterConfig, FailureSpec, MigrationSchedule, NoMigration, OsdId,
    RunReport, SimOptions,
};

use crate::report::{render_table, signed_pct};
use crate::runner::{trace_for, RunConfig};

/// One scenario of the failure study.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub label: String,
    pub report: RunReport,
}

fn run_one(cfg: &RunConfig, osds: u32, trace_name: &str, failures: Vec<FailureSpec>) -> RunReport {
    let trace = trace_for(trace_name, cfg.scale);
    // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
    let cluster = Cluster::build(ClusterConfig::paper(osds), &trace).expect("build");
    let mut policy = NoMigration;
    run_trace(
        cluster,
        &trace,
        &mut policy,
        SimOptions {
            schedule: MigrationSchedule::Never,
            failures,
            checkpoint: None,
            ..SimOptions::default()
        },
    )
}

/// Runs the four scenarios: healthy, one failure (degraded only), one
/// failure with rebuild, same-group double failure, cross-group double
/// failure.
pub fn run(cfg: &RunConfig, osds: u32, trace_name: &str) -> Vec<Scenario> {
    assert!(osds > 4, "need at least two groups' worth of OSDs");
    let at = 1_000; // fail early so most of the run is degraded
    let mk = |osd: u32, rebuild: bool| FailureSpec {
        at_us: at,
        osd: OsdId(osd),
        rebuild,
    };
    vec![
        Scenario {
            label: "healthy".into(),
            report: run_one(cfg, osds, trace_name, vec![]),
        },
        Scenario {
            label: "1 failure, degraded".into(),
            report: run_one(cfg, osds, trace_name, vec![mk(1, false)]),
        },
        Scenario {
            label: "1 failure, rebuild".into(),
            report: run_one(cfg, osds, trace_name, vec![mk(1, true)]),
        },
        Scenario {
            label: "2 failures, same group".into(),
            // Group of OSD j is j mod 4: 1 and 5 share group 1.
            report: run_one(cfg, osds, trace_name, vec![mk(1, false), mk(5, false)]),
        },
        Scenario {
            label: "2 failures, cross group".into(),
            report: run_one(cfg, osds, trace_name, vec![mk(1, false), mk(2, false)]),
        },
    ]
}

pub fn render(scenarios: &[Scenario]) -> String {
    let healthy_tp = scenarios
        .first()
        .map(|s| s.report.throughput_ops_per_sec())
        .unwrap_or(0.0);
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            let r = &s.report;
            vec![
                s.label.clone(),
                format!("{:.0}", r.throughput_ops_per_sec()),
                signed_pct(r.throughput_ops_per_sec() / healthy_tp - 1.0),
                r.degraded_ops.to_string(),
                r.lost_ops.to_string(),
                r.rebuilt_objects.to_string(),
            ]
        })
        .collect();
    format!(
        "Failure study (extension; RAID-5 of SIII.A under fault)\n{}",
        render_table(
            &[
                "scenario",
                "ops/s",
                "vs healthy",
                "degraded ops",
                "lost ops",
                "rebuilt",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            schedule: MigrationSchedule::Never,
            response_window_us: None,
            jobs: None,
        }
    }

    #[test]
    fn scenarios_have_expected_shape() {
        let s = run(&tiny(), 8, "home02");
        assert_eq!(s.len(), 5);
        let by = |label: &str| {
            &s.iter()
                .find(|x| x.label.starts_with(label))
                .expect("scenario present")
                .report
        };
        assert_eq!(by("healthy").degraded_ops, 0);
        assert!(by("1 failure, degraded").degraded_ops > 0);
        assert!(by("1 failure, rebuild").rebuilt_objects > 0);
        assert_eq!(by("2 failures, same group").lost_ops, 0);
        assert!(by("2 failures, cross group").lost_ops > 0);
    }

    #[test]
    fn degraded_run_is_slower_than_healthy() {
        let s = run(&tiny(), 8, "home02");
        let healthy = s[0].report.throughput_ops_per_sec();
        let degraded = s[1].report.throughput_ops_per_sec();
        assert!(degraded <= healthy, "{degraded} vs {healthy}");
    }

    #[test]
    fn render_lists_all_scenarios() {
        let text = render(&run(&tiny(), 8, "home02"));
        for label in ["healthy", "rebuild", "same group", "cross group"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}

//! One module per paper artifact. Each experiment exposes a `run`
//! function returning structured data plus a `render` into the ASCII
//! rows/series the paper's table or figure reports, so the CLI, the
//! integration tests, and the Criterion benches all share one code path.

pub mod ablate;
pub mod failure;
pub mod fig1;
pub mod fig3;
pub mod fig56;
pub mod fig7;
pub mod fig8;
pub mod model_diff;
pub mod reliability;
pub mod scale;
pub mod table1;
pub mod wearout;

/// The canonical experiment ids accepted by `edm-exp`.
pub const EXPERIMENT_IDS: [&str; 18] = [
    "table1",
    "fig1",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "reliability",
    "scale",
    "failure",
    "wearout",
    "ablate-sigma",
    "ablate-lambda",
    "ablate-groups",
    "ablate-continuous",
    "ablate-decay",
    "ablate-gc",
    "model-diff",
];

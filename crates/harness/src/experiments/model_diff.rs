//! Differential experiment (extension): simulator vs the closed-form
//! mean-field model of `edm-model`, over the fuzz regression corpus.
//!
//! Each corpus scenario replays on the event-driven simulator, then the
//! same per-OSD aggregates (host write pages, end-of-run utilization) are
//! pushed through the analytic model. Three divergence figures gate the
//! comparison:
//!
//! * **KS** — Kolmogorov–Smirnov statistic between the simulated and the
//!   predicted per-OSD erase *shares*: does the model put the wear on the
//!   right devices?
//! * **max rel** — worst per-OSD relative erase-count error: is the
//!   magnitude right, device by device?
//! * **GC rate** — relative error of cluster erases per host page
//!   written: is the garbage-collection overhead right in aggregate?
//!
//! Tolerances live in `scripts/model_tolerances.json`, committed next to
//! the corpus they were calibrated against, so any engine change that
//! moves the physics past the model's error band fails `check.sh model`.
//! DESIGN.md §15 documents where the two sides are *expected* to diverge
//! (transient fill-up, trim-induced utilization dips).

use std::path::{Path, PathBuf};
use std::time::Instant;

use edm_cluster::RunReport;
use edm_model::{ks_statistic, max_rel_error, rel_error, ClusterPrediction, OsdLoad};
use edm_model::{GcPolicy, MeanFieldModel};
use edm_obs::json::{parse, JsonValue};

use crate::report::render_table;
use crate::scenario::Scenario;

/// Erase-count floor for relative errors. Corpus scenarios are small
/// (tens of erases per OSD), so on a device with single-digit erases a
/// couple of erases of transient noise would read as a huge relative
/// error; differences are measured against at least this many erases.
const REL_ERROR_FLOOR: f64 = 16.0;

/// Committed divergence tolerances (`scripts/model_tolerances.json`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Max allowed KS statistic on the per-OSD erase shares.
    pub ks: f64,
    /// Max allowed per-OSD relative erase-count error.
    pub max_rel_error: f64,
    /// Max allowed relative error of the cluster GC rate.
    pub gc_rate_rel_error: f64,
}

impl Tolerances {
    /// Loads the committed tolerance file. Every key is required — a
    /// missing key means the file and the gate disagree about what is
    /// being checked, which must fail loudly.
    pub fn load(path: &Path) -> Result<Tolerances, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let doc = parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{}: missing numeric field {key:?}", path.display()))
        };
        Ok(Tolerances {
            ks: field("ks")?,
            max_rel_error: field("max_rel_error")?,
            gc_rate_rel_error: field("gc_rate_rel_error")?,
        })
    }
}

/// One scenario's simulator-vs-model comparison.
#[derive(Debug, Clone)]
pub struct ScenarioDiff {
    pub name: String,
    pub osds: usize,
    pub sim_erases: u64,
    pub model_erases: f64,
    pub ks: f64,
    pub max_rel: f64,
    pub gc_rate_sim: f64,
    pub gc_rate_model: f64,
    pub gc_rate_err: f64,
}

impl ScenarioDiff {
    pub fn within(&self, tol: &Tolerances) -> bool {
        self.ks <= tol.ks
            && self.max_rel <= tol.max_rel_error
            && self.gc_rate_err <= tol.gc_rate_rel_error
    }
}

/// Compares one finished run against the analytic prediction built from
/// its own per-OSD aggregates. Public so the integration tests can diff
/// a single scenario without walking the corpus.
pub fn diff_report(name: &str, report: &RunReport) -> ScenarioDiff {
    // The scenario engine builds paper-geometry clusters: 32 pages per
    // block, greedy GC (ClusterConfig::paper). σ = 0.28 is the paper's
    // skew fit for exactly these traces.
    let model = MeanFieldModel::with_gc(32, edm_model::MODEL_SIGMA, GcPolicy::Greedy);
    let loads: Vec<OsdLoad> = report
        .per_osd
        .iter()
        .map(|o| OsdLoad {
            erases: 0.0,
            write_rate: o.write_pages as f64,
            utilization: o.utilization,
        })
        .collect();
    let prediction = ClusterPrediction::predict(&model, &loads);

    let observed: Vec<f64> = report
        .per_osd
        .iter()
        .map(|o| o.erase_count as f64)
        .collect();
    let host_pages = report.aggregate_write_pages() as f64;
    let gc_rate_sim = if host_pages > 0.0 {
        report.aggregate_erases() as f64 / host_pages
    } else {
        0.0
    };
    ScenarioDiff {
        name: name.to_string(),
        osds: report.per_osd.len(),
        sim_erases: report.aggregate_erases(),
        model_erases: prediction.erases.iter().sum(),
        ks: ks_statistic(&observed, &prediction.erases),
        max_rel: max_rel_error(&observed, &prediction.erases, REL_ERROR_FLOOR),
        gc_rate_sim,
        gc_rate_model: prediction.gc_rate,
        gc_rate_err: rel_error(gc_rate_sim, prediction.gc_rate, 1e-6),
    }
}

/// The full corpus comparison.
#[derive(Debug)]
pub struct ModelDiffResult {
    pub diffs: Vec<ScenarioDiff>,
    pub tolerances: Tolerances,
    pub wall_s: f64,
}

impl ModelDiffResult {
    pub fn passed(&self) -> bool {
        !self.diffs.is_empty() && self.diffs.iter().all(|d| d.within(&self.tolerances))
    }
}

/// Runs every `.scn` in `corpus_dir` (sorted by file name, so the report
/// and the bench cell are deterministic) and diffs each against the
/// model.
pub fn run(corpus_dir: &Path, tolerances: Tolerances) -> Result<ModelDiffResult, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir)
        .map_err(|e| format!("reading {}: {e}", corpus_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .scn scenarios in {}", corpus_dir.display()));
    }

    #[allow(clippy::disallowed_methods)]
    let started = Instant::now(); // edm-audit: allow(det.wallclock, "wall-clock timing IS this experiment's measurement; it never feeds back into the simulation")
    let mut diffs = Vec::new();
    for path in &paths {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let scenario = Scenario::parse(&text).map_err(|e| format!("{name}: {e}"))?;
        let report = scenario.run().map_err(|e| format!("{name}: {e}"))?;
        diffs.push(diff_report(&name, &report));
    }
    Ok(ModelDiffResult {
        diffs,
        tolerances,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Microbenchmark of the closed-form evaluation itself (`model_closed_form`
/// bench cell): full 64-OSD cluster predictions per second. This is the
/// number that justifies the ModelAssessor fast path — it should sit
/// orders of magnitude above any plausible planning frequency.
pub fn closed_form_bench(reps: u32) -> (f64, f64) {
    let model = MeanFieldModel::with_gc(32, edm_model::MODEL_SIGMA, GcPolicy::Greedy);
    let loads: Vec<OsdLoad> = (0..64)
        .map(|i| OsdLoad {
            erases: (i * 37 % 101) as f64,
            write_rate: 1_000.0 + (i * 53 % 97) as f64 * 100.0,
            utilization: 0.3 + (i % 13) as f64 * 0.05,
        })
        .collect();
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now(); // edm-audit: allow(det.wallclock, "wall-clock timing IS this experiment's measurement; it never feeds back into the simulation")
    let mut sink = 0.0f64;
    for _ in 0..reps {
        let p = ClusterPrediction::predict(&model, &loads);
        sink += p.rsd + p.gc_rate;
    }
    let wall_s = started.elapsed().as_secs_f64();
    assert!(sink.is_finite());
    (wall_s, reps as f64 / wall_s.max(1e-9))
}

pub fn render(result: &ModelDiffResult) -> String {
    let tol = &result.tolerances;
    let rows: Vec<Vec<String>> = result
        .diffs
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.osds.to_string(),
                d.sim_erases.to_string(),
                format!("{:.0}", d.model_erases),
                format!("{:.4}", d.ks),
                format!("{:.3}", d.max_rel),
                format!("{:.4}", d.gc_rate_sim),
                format!("{:.4}", d.gc_rate_model),
                format!("{:.3}", d.gc_rate_err),
                if d.within(tol) { "ok" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    format!(
        "Differential: simulator vs mean-field model (fuzz corpus)\n\
         tolerances: ks <= {}, max rel <= {}, gc rate rel <= {}\n{}\n{}",
        tol.ks,
        tol.max_rel_error,
        tol.gc_rate_rel_error,
        render_table(
            &[
                "scenario",
                "osds",
                "sim erases",
                "model",
                "KS",
                "max rel",
                "gc/pg sim",
                "gc/pg model",
                "gc err",
                "gate",
            ],
            &rows,
        ),
        if result.passed() {
            "model-diff: PASS"
        } else {
            "model-diff: FAIL (divergence exceeds committed tolerances)"
        }
    )
}

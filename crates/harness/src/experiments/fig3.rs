//! Figure 3 — measured and estimated values of uᵣ and its relation with u.
//!
//! For each workload (home02, deasna, lair62, and the synthetic `random`)
//! a single SSD is sized so the trace's footprint lands at each target
//! utilization; the write stream is replayed and the measured victim
//! valid-page ratio uᵣ is compared against the estimates of Eq. 2 (no
//! correction) and Eq. 3 (σ = 0.28, "EDM"). The paper's findings, which
//! this experiment reproduces: Eq. 2 matches `random` but overestimates
//! uᵣ for the skewed real-world traces; Eq. 3 fits those well at least up
//! to u ≈ 85 %.

use edm_ssd::{Geometry, LatencyModel, Ssd};
use edm_workload::synth::synthesize;
use edm_workload::{harvard, FileId, FileOp, Trace};

use crate::report::render_table;
use crate::runner::RunConfig;

/// Minimum GC victims before we trust a measured uᵣ sample.
const MIN_VICTIMS: u64 = 200;
/// Maximum write-stream replays while hunting for victims.
const MAX_LOOPS: u32 = 50;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    pub utilization: f64,
    pub measured_ur: f64,
    pub eq2_ur: f64,
    pub eq3_ur: f64,
}

/// The uᵣ(u) series of one workload.
#[derive(Debug, Clone)]
pub struct Series {
    pub workload: String,
    pub points: Vec<Point>,
}

/// The workloads Fig. 3 plots.
pub const FIG3_WORKLOADS: [&str; 4] = ["home02", "deasna", "lair62", "random"];

/// Lays the trace's files out contiguously on one SSD and returns the
/// per-file base offsets plus the total footprint.
fn flat_layout(trace: &Trace) -> (std::collections::BTreeMap<FileId, u64>, u64) {
    let mut offsets = std::collections::BTreeMap::new();
    let mut cursor = 0u64;
    for (&file, &size) in &trace.file_sizes {
        offsets.insert(file, cursor);
        // Page-align files so footprint maps exactly onto mapped pages.
        cursor += size.div_ceil(4096) * 4096;
    }
    (offsets, cursor)
}

/// Measures uᵣ for one trace at one target utilization.
pub fn measure_ur(trace: &Trace, utilization: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&utilization) && utilization > 0.0);
    let (offsets, footprint) = flat_layout(trace);
    if footprint == 0 {
        return None;
    }
    let capacity = (footprint as f64 / utilization) as u64;
    let mut ssd = Ssd::new(
        Geometry::for_exported_capacity(capacity),
        LatencyModel::INSTANT,
    );
    // Pre-create all files, then reach steady state.
    for (&file, &base) in &offsets {
        let size = trace.file_sizes[&file];
        // edm-audit: allow(panic.expect, "writes stay inside the exported capacity by construction")
        ssd.write(base, size).expect("populate");
    }
    // edm-audit: allow(panic.expect, "warm-up of a freshly built SSD cannot fail")
    ssd.warm_up().expect("warm-up");
    // Replay the write stream (reads cannot touch uᵣ) until the GC has
    // reclaimed enough victims for a stable average.
    for _ in 0..MAX_LOOPS {
        for r in &trace.records {
            if let FileOp::Write { offset, len } = r.op {
                let base = offsets[&r.file];
                // edm-audit: allow(panic.expect, "writes stay inside the exported capacity by construction")
                ssd.write(base + offset, len).expect("replay write");
            }
        }
        if ssd.wear().gc_victims >= MIN_VICTIMS {
            break;
        }
    }
    ssd.snapshot().measured_ur
}

/// Runs the sweep: `utilizations` defaults to 30–95 % in 5 % steps.
pub fn run(cfg: &RunConfig, utilizations: &[f64]) -> Vec<Series> {
    let eq2 = edm_core::WearModel::eq2(32);
    let eq3 = edm_core::WearModel::paper(32);
    FIG3_WORKLOADS
        .iter()
        .map(|name| {
            let spec = if *name == "random" {
                harvard::random_spec()
            } else {
                harvard::spec(name)
            };
            let trace = synthesize(&spec.scaled(cfg.scale));
            let points = utilizations
                .iter()
                .filter_map(|&u| {
                    measure_ur(&trace, u).map(|measured_ur| Point {
                        utilization: u,
                        measured_ur,
                        eq2_ur: eq2.f_of_u(u),
                        eq3_ur: eq3.f_of_u(u),
                    })
                })
                .collect();
            Series {
                workload: name.to_string(),
                points,
            }
        })
        .collect()
}

/// The default utilization grid.
pub fn default_grid() -> Vec<f64> {
    (6..=19).map(|i| i as f64 * 0.05).collect()
}

pub fn render(series: &[Series]) -> String {
    let mut out = String::from("Figure 3: measured and estimated u_r vs disk utilization u\n");
    for s in series {
        out.push_str(&format!("workload {}\n", s.workload));
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.utilization),
                    format!("{:.3}", p.measured_ur),
                    format!("{:.3}", p.eq2_ur),
                    format!("{:.3}", p.eq3_ur),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["u", "measured u_r", "Eq.(2) u_r", "Eq.(3)-EDM u_r"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_produces_points_for_all_workloads() {
        let series = run(&tiny(), &[0.5, 0.8]);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.points.len(), 2, "{}", s.workload);
            for p in &s.points {
                assert!((0.0..1.0).contains(&p.measured_ur), "{p:?}");
            }
        }
    }

    #[test]
    fn measured_ur_increases_with_utilization() {
        let trace = synthesize(&harvard::spec("deasna").scaled(0.002));
        let low = measure_ur(&trace, 0.5).unwrap();
        let high = measure_ur(&trace, 0.9).unwrap();
        assert!(
            high > low,
            "fuller disks must have fuller victims: {low} vs {high}"
        );
    }

    #[test]
    fn skewed_traces_fall_below_eq2() {
        // The paper's key observation: real workloads' measured uᵣ is well
        // below the Eq. 2 estimate because hot/cold data segregate.
        let trace = synthesize(&harvard::spec("home02").scaled(0.002));
        let u = 0.7;
        let measured = measure_ur(&trace, u).unwrap();
        let eq2 = edm_core::WearModel::eq2(32).f_of_u(u);
        assert!(
            measured < eq2,
            "measured {measured} should undershoot Eq.2 {eq2}"
        );
    }

    #[test]
    fn random_tracks_eq2_more_closely_than_skewed() {
        let u = 0.8;
        let random = synthesize(&harvard::random_spec().scaled(0.002));
        let skewed = synthesize(&harvard::spec("lair62").scaled(0.002));
        let eq2 = edm_core::WearModel::eq2(32).f_of_u(u);
        let r = measure_ur(&random, u).unwrap();
        let s = measure_ur(&skewed, u).unwrap();
        assert!(
            (r - eq2).abs() < (s - eq2).abs(),
            "random {r} should fit Eq.2 {eq2} better than lair62 {s}"
        );
    }

    #[test]
    fn render_has_all_four_workloads() {
        let text = render(&run(&tiny(), &[0.6]));
        for w in FIG3_WORKLOADS {
            assert!(text.contains(w));
        }
    }
}

//! Figure 1 — erase count (a) and write pages (b) of different SSDs under
//! the baseline system (the motivation experiment of §II).
//!
//! Replays home02, deasna and lair62 with no migration and reports the
//! per-OSD block erasure counts and written pages; the paper's point is
//! the wide wear variance, especially for home02 and lair62.

use edm_cluster::metrics::rsd;
use edm_cluster::MigrationSchedule;
use edm_workload::harvard::MOTIVATION_TRACES;

use crate::report::{grouped, render_table};
use crate::runner::{run_cell, Cell, RunConfig};

/// Per-trace outcome: per-OSD wear under Baseline.
#[derive(Debug, Clone)]
pub struct TraceWear {
    pub trace: String,
    pub erase_counts: Vec<u64>,
    pub write_pages: Vec<u64>,
}

impl TraceWear {
    /// Relative standard deviation of the per-OSD erase counts — the
    /// variance Fig. 1(a) visualizes.
    pub fn erase_rsd(&self) -> f64 {
        rsd(self.erase_counts.iter().map(|&e| e as f64))
    }

    pub fn write_rsd(&self) -> f64 {
        rsd(self.write_pages.iter().map(|&w| w as f64))
    }
}

/// Runs the motivation experiment on `osds` devices at the given scale.
pub fn run(cfg: &RunConfig, osds: u32) -> Vec<TraceWear> {
    let cfg = RunConfig {
        schedule: MigrationSchedule::Never,
        ..*cfg
    };
    MOTIVATION_TRACES
        .iter()
        .map(|trace| {
            let report = run_cell(&Cell::new(trace, "Baseline", osds), &cfg);
            TraceWear {
                trace: trace.to_string(),
                erase_counts: report.per_osd.iter().map(|o| o.erase_count).collect(),
                write_pages: report.per_osd.iter().map(|o| o.write_pages).collect(),
            }
        })
        .collect()
}

pub fn render(results: &[TraceWear]) -> String {
    let mut out = String::new();
    for panel in ["(a) erase count", "(b) write pages"] {
        out.push_str(&format!("Figure 1{panel} of different SSDs (Baseline)\n"));
        let osds = results.first().map(|r| r.erase_counts.len()).unwrap_or(0);
        let mut headers: Vec<String> = vec!["trace".into()];
        headers.extend((0..osds).map(|i| format!("osd{i}")));
        headers.push("RSD".into());
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let (values, spread) = if panel.starts_with("(a)") {
                    (&r.erase_counts, r.erase_rsd())
                } else {
                    (&r.write_pages, r.write_rsd())
                };
                let mut row = vec![r.trace.clone()];
                row.extend(values.iter().map(|&v| grouped(v)));
                row.push(format!("{spread:.3}"));
                row
            })
            .collect();
        out.push_str(&render_table(&header_refs, &rows));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            schedule: MigrationSchedule::Never,
            response_window_us: None,
            jobs: None,
        }
    }

    #[test]
    fn covers_the_three_motivation_traces() {
        let results = run(&tiny(), 8);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.erase_counts.len(), 8);
            assert_eq!(r.write_pages.len(), 8);
            assert!(r.write_pages.iter().sum::<u64>() > 0);
        }
    }

    #[test]
    fn wear_variance_exists_under_baseline() {
        // §II's claim: the per-SSD erase counts vary widely.
        let results = run(&tiny(), 8);
        for r in &results {
            assert!(
                r.erase_rsd() > 0.05,
                "{} unexpectedly balanced: RSD {}",
                r.trace,
                r.erase_rsd()
            );
        }
    }

    #[test]
    fn render_contains_panels_and_traces() {
        let results = run(&tiny(), 8);
        let text = render(&results);
        assert!(text.contains("(a) erase count"));
        assert!(text.contains("(b) write pages"));
        assert!(text.contains("home02"));
        assert!(text.contains("lair62"));
    }
}

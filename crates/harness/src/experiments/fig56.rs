//! Figures 5 and 6 — aggregate throughput and cluster-wide aggregate
//! erase count for all seven traces under the four systems (Baseline,
//! CMT, EDM-HDF, EDM-CDF) at 16 and 20 OSDs.
//!
//! The two figures come from the same runs, so one sweep feeds both.
//! Expected shape (§V.B–C): migration lifts throughput 15–40 % over
//! Baseline with HDF ≈ CMT ≳ CDF; HDF cuts aggregate erases in every
//! case (up to ~40 % vs CMT) while CMT often *increases* them.

use std::collections::HashMap;

use edm_cluster::RunReport;
use edm_core::POLICY_NAMES;
use edm_workload::harvard::TRACE_NAMES;

use crate::report::{grouped, render_table, signed_pct};
use crate::runner::{run_matrix, Cell, RunConfig};

/// All runs of the Fig. 5/6 matrix, keyed by cell.
pub struct Matrix {
    pub osds_list: Vec<u32>,
    pub traces: Vec<String>,
    pub reports: HashMap<Cell, RunReport>,
}

impl Matrix {
    pub fn report(&self, trace: &str, policy: &str, osds: u32) -> &RunReport {
        &self.reports[&Cell::new(trace, policy, osds)]
    }

    /// Throughput ratio of `policy` over Baseline for one cell.
    pub fn throughput_gain(&self, trace: &str, policy: &str, osds: u32) -> f64 {
        let base = self
            .report(trace, "Baseline", osds)
            .throughput_ops_per_sec();
        let p = self.report(trace, policy, osds).throughput_ops_per_sec();
        p / base - 1.0
    }

    /// Erase-count delta of `policy` vs Baseline (the numbers above the
    /// bars in Fig. 6).
    pub fn erase_delta(&self, trace: &str, policy: &str, osds: u32) -> f64 {
        let base = self.report(trace, "Baseline", osds).aggregate_erases() as f64;
        let p = self.report(trace, policy, osds).aggregate_erases() as f64;
        p / base - 1.0
    }
}

/// Runs the full (trace × policy × osds) sweep.
pub fn run(cfg: &RunConfig, osds_list: &[u32], traces: &[&str]) -> Matrix {
    let cells: Vec<Cell> = osds_list
        .iter()
        .flat_map(|&n| {
            traces
                .iter()
                .flat_map(move |t| POLICY_NAMES.iter().map(move |p| Cell::new(t, p, n)))
        })
        .collect();
    Matrix {
        osds_list: osds_list.to_vec(),
        traces: traces.iter().map(|t| t.to_string()).collect(),
        reports: run_matrix(&cells, cfg),
    }
}

/// The paper's full matrix: all seven traces, 16 and 20 OSDs.
pub fn run_paper(cfg: &RunConfig) -> Matrix {
    run(cfg, &[16, 20], &TRACE_NAMES)
}

/// Figure 5 rendering: aggregate throughput (file ops per second).
pub fn render_fig5(m: &Matrix) -> String {
    let mut out = String::new();
    for &osds in &m.osds_list {
        out.push_str(&format!(
            "Figure 5 ({osds}-OSDs): aggregate throughput [ops/s]\n"
        ));
        let rows: Vec<Vec<String>> = m
            .traces
            .iter()
            .map(|t| {
                let mut row = vec![t.clone()];
                for p in POLICY_NAMES {
                    let r = m.report(t, p, osds);
                    row.push(format!("{:.0}", r.throughput_ops_per_sec()));
                }
                for p in &POLICY_NAMES[1..] {
                    row.push(signed_pct(m.throughput_gain(t, p, osds)));
                }
                row
            })
            .collect();
        out.push_str(&render_table(
            &[
                "trace",
                "Baseline",
                "CMT",
                "EDM-HDF",
                "EDM-CDF",
                "CMT vs base",
                "HDF vs base",
                "CDF vs base",
            ],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Figure 6 rendering: aggregate erase count among all OSDs, with the
/// percentage deltas vs Baseline the paper prints above the bars.
pub fn render_fig6(m: &Matrix) -> String {
    let mut out = String::new();
    for &osds in &m.osds_list {
        out.push_str(&format!(
            "Figure 6 ({osds}-OSDs): aggregate erase count among all OSDs\n"
        ));
        let rows: Vec<Vec<String>> = m
            .traces
            .iter()
            .map(|t| {
                let mut row = vec![t.clone()];
                for p in POLICY_NAMES {
                    row.push(grouped(m.report(t, p, osds).aggregate_erases()));
                }
                for p in &POLICY_NAMES[1..] {
                    row.push(signed_pct(m.erase_delta(t, p, osds)));
                }
                row
            })
            .collect();
        out.push_str(&render_table(
            &[
                "trace",
                "Baseline",
                "CMT",
                "EDM-HDF",
                "EDM-CDF",
                "CMT vs base",
                "HDF vs base",
                "CDF vs base",
            ],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::MigrationSchedule;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            schedule: MigrationSchedule::Midpoint,
            response_window_us: None,
            jobs: None,
        }
    }

    #[test]
    fn matrix_is_complete() {
        let m = run(&tiny(), &[8], &["deasna"]);
        assert_eq!(m.reports.len(), 4);
        for p in POLICY_NAMES {
            assert!(m.report("deasna", p, 8).completed_ops > 0);
        }
    }

    #[test]
    fn renders_include_deltas() {
        let m = run(&tiny(), &[8], &["deasna"]);
        let f5 = render_fig5(&m);
        let f6 = render_fig6(&m);
        assert!(f5.contains("Figure 5 (8-OSDs)"));
        assert!(f6.contains("Figure 6 (8-OSDs)"));
        assert!(f5.contains('%'));
        assert!(f6.contains('%'));
    }
}

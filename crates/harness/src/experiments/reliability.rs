//! §III.D — the reliability argument, made measurable.
//!
//! Balancing wear raises the risk of *simultaneous* SSD worn-out. EDM's
//! answer: RAID-5 stripes span groups, migration stays within a group,
//! and groups get *different numbers of SSDs*, so per-SSD wear speeds
//! differ **across** groups while staying balanced **within** each group
//! — correlated failures stay inside one group, where they cannot take
//! out a stripe.
//!
//! This experiment replays a write-heavy trace under EDM-HDF on a cluster
//! whose OSD count is not a multiple of the group count (uneven groups)
//! and reports, per group: members, mean per-SSD erase count, and the
//! within-group RSD. The shape to observe: within-group RSD well below
//! the spread of the per-group means.

use edm_cluster::metrics::rsd;
use edm_cluster::{run_trace, Cluster, ClusterConfig, GroupId, SimOptions};
use edm_core::lifetime::{project, EnduranceSpec};
use edm_core::EdmHdf;

use crate::report::render_table;
use crate::runner::{trace_for, RunConfig};

/// Per-group wear summary.
#[derive(Debug, Clone)]
pub struct GroupWear {
    pub group: u32,
    pub members: usize,
    /// Mean erase count per member SSD (the group's wear speed).
    pub mean_erases: f64,
    /// RSD of erase counts within the group.
    pub within_rsd: f64,
}

/// Outcome of the reliability experiment.
#[derive(Debug, Clone)]
pub struct Reliability {
    pub osds: u32,
    pub groups: Vec<GroupWear>,
    /// Projected periods-to-wearout per OSD (one period = this run),
    /// assuming a 3 000 P/E-cycle device.
    pub periods_to_wearout: Vec<f64>,
}

impl Reliability {
    /// Spread (RSD) of the per-group mean wear speeds — the margin that
    /// staggers group worn-out times.
    pub fn between_group_rsd(&self) -> f64 {
        rsd(self.groups.iter().map(|g| g.mean_erases))
    }

    /// Largest within-group RSD.
    pub fn max_within_rsd(&self) -> f64 {
        self.groups.iter().map(|g| g.within_rsd).fold(0.0, f64::max)
    }

    /// Largest cohort of devices projected to wear out within 1 % of the
    /// longest lifetime — the §III.D simultaneous-worn-out hazard. RAID
    /// safety wants this cohort to fit inside one group.
    pub fn simultaneous_wearouts(&self) -> usize {
        let finite: Vec<f64> = self
            .periods_to_wearout
            .iter()
            .copied()
            .filter(|p| p.is_finite())
            .collect();
        let window = finite.iter().copied().fold(0.0_f64, f64::max) * 0.01;
        let mut order = finite;
        // edm-audit: allow(panic.expect, "erase counts come from wear stats and are always finite")
        order.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut best = usize::from(!order.is_empty());
        for i in 0..order.len() {
            let cohort = order[i..]
                .iter()
                .take_while(|&&t| t - order[i] <= window)
                .count();
            best = best.max(cohort);
        }
        best
    }
}

/// Runs EDM-HDF on `osds` devices (pick a count not divisible by 4, e.g.
/// 18, for uneven groups) and summarizes wear per group.
pub fn run(cfg: &RunConfig, osds: u32, trace_name: &str) -> Reliability {
    let trace = trace_for(trace_name, cfg.scale);
    let config = ClusterConfig::paper(osds);
    let placement = config.placement();
    // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
    let cluster = Cluster::build(config, &trace).expect("cluster build");
    let mut policy = EdmHdf::default();
    let report = run_trace(
        cluster,
        &trace,
        &mut policy,
        SimOptions {
            schedule: cfg.schedule,
            failures: Vec::new(),
            checkpoint: None,
            ..SimOptions::default()
        },
    );
    // Lifetime projection on a nominal 3 000 P/E-cycle, 4 096-block
    // device: the projection only needs erases-per-period and a budget.
    let spec = EnduranceSpec {
        pe_cycles: 3_000,
        blocks: 4_096,
    };
    let lifetimes = project(
        &spec,
        report.per_osd.iter().map(|o| o.erase_count),
        std::iter::repeat_n(0, report.per_osd.len()),
    );
    let periods_to_wearout: Vec<f64> = lifetimes.iter().map(|l| l.periods_to_wearout).collect();
    let groups = (0..placement.groups)
        .map(|g| {
            let members = placement.group_members(GroupId(g));
            let erases: Vec<f64> = members
                .iter()
                .map(|m| report.per_osd[m.0 as usize].erase_count as f64)
                .collect();
            GroupWear {
                group: g,
                members: members.len(),
                mean_erases: erases.iter().sum::<f64>() / erases.len().max(1) as f64,
                within_rsd: rsd(erases.iter().copied()),
            }
        })
        .collect();
    Reliability {
        osds,
        groups,
        periods_to_wearout,
    }
}

pub fn render(r: &Reliability) -> String {
    let rows: Vec<Vec<String>> = r
        .groups
        .iter()
        .map(|g| {
            vec![
                g.group.to_string(),
                g.members.to_string(),
                format!("{:.1}", g.mean_erases),
                format!("{:.3}", g.within_rsd),
            ]
        })
        .collect();
    format!(
        "Reliability (SIII.D): per-group wear speeds under EDM-HDF, {} OSDs\n{}\
         between-group wear-speed RSD: {:.3} (staggers group worn-out)\n\
         max within-group RSD:         {:.3} (EDM balances inside groups)\n",
        r.osds,
        render_table(
            &["group", "members", "mean erases/SSD", "within RSD"],
            &rows
        ),
        r.between_group_rsd(),
        r.max_within_rsd(),
    ) + &format!(
        "largest 1%-window simultaneous-wearout cohort: {} of {} devices\n",
        r.simultaneous_wearouts(),
        r.osds
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::MigrationSchedule;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.003,
            schedule: MigrationSchedule::Midpoint,
            response_window_us: None,
            jobs: None,
        }
    }

    #[test]
    fn uneven_osd_count_gives_uneven_groups() {
        let r = run(&tiny(), 10, "lair62");
        assert_eq!(r.groups.len(), 4);
        let sizes: Vec<usize> = r.groups.iter().map(|g| g.members).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        for g in &r.groups {
            assert!(g.mean_erases > 0.0, "group {} saw no wear", g.group);
        }
    }

    #[test]
    fn group_wear_speeds_differ() {
        // With uneven member counts, per-SSD wear speed differs between
        // groups — the §III.D mechanism.
        let r = run(&tiny(), 10, "lair62");
        assert!(
            r.between_group_rsd() > 0.0,
            "group wear speeds should differ: {:?}",
            r.groups
        );
    }

    #[test]
    fn render_mentions_both_spreads() {
        let text = render(&run(&tiny(), 10, "lair62"));
        assert!(text.contains("between-group"));
        assert!(text.contains("within-group"));
    }
}

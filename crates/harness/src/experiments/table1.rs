//! Table 1 — characteristics of the workloads.
//!
//! Synthesizes each of the seven Harvard presets and reports the measured
//! characteristics next to the paper's targets. Op counts must match
//! exactly; mean sizes within a small tolerance (the synthesizer samples
//! request sizes around the target mean).

use edm_workload::harvard;
use edm_workload::synth::synthesize;
use edm_workload::TraceStats;

use crate::report::{grouped, render_table};

/// One row: paper target vs. measured synthesis.
#[derive(Debug, Clone)]
pub struct Row {
    pub workload: String,
    pub target_files: u64,
    pub target_writes: u64,
    pub target_avg_write: u64,
    pub target_reads: u64,
    pub target_avg_read: u64,
    pub measured: TraceStats,
}

impl Row {
    /// Largest relative error across the five Table 1 columns.
    pub fn worst_relative_error(&self) -> f64 {
        let rel = |target: u64, got: u64| {
            if target == 0 {
                return 0.0;
            }
            (got as f64 - target as f64).abs() / target as f64
        };
        [
            rel(self.target_files, self.measured.file_cnt),
            rel(self.target_writes, self.measured.write_cnt),
            rel(self.target_avg_write, self.measured.avg_write_size),
            rel(self.target_reads, self.measured.read_cnt),
            rel(self.target_avg_read, self.measured.avg_read_size),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// Synthesizes all seven workloads at `scale` and measures them.
pub fn run(scale: f64) -> Vec<Row> {
    harvard::TRACE_NAMES
        .iter()
        .map(|name| {
            let spec = harvard::spec(name).scaled(scale);
            let trace = synthesize(&spec);
            Row {
                workload: name.to_string(),
                target_files: spec.file_cnt,
                target_writes: spec.write_cnt,
                target_avg_write: spec.avg_write_size,
                target_reads: spec.read_cnt,
                target_avg_read: spec.avg_read_size,
                measured: trace.stats(),
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                grouped(r.measured.file_cnt),
                grouped(r.measured.write_cnt),
                grouped(r.measured.avg_write_size),
                grouped(r.measured.read_cnt),
                grouped(r.measured.avg_read_size),
                format!("{:.2}%", r.worst_relative_error() * 100.0),
            ]
        })
        .collect();
    format!(
        "Table 1: characteristics of the workloads (synthesized)\n{}",
        render_table(
            &[
                "workload",
                "file cnt",
                "write cnt",
                "avg write (B)",
                "read cnt",
                "avg read (B)",
                "max err vs paper",
            ],
            &table_rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exact_sizes_close() {
        for row in run(0.01) {
            assert_eq!(row.measured.file_cnt, row.target_files, "{}", row.workload);
            assert_eq!(
                row.measured.write_cnt, row.target_writes,
                "{}",
                row.workload
            );
            assert_eq!(row.measured.read_cnt, row.target_reads, "{}", row.workload);
            assert!(
                row.worst_relative_error() < 0.05,
                "{}: err {}",
                row.workload,
                row.worst_relative_error()
            );
        }
    }

    #[test]
    fn render_mentions_every_workload() {
        let rows = run(0.005);
        let text = render(&rows);
        for name in edm_workload::harvard::TRACE_NAMES {
            assert!(text.contains(name));
        }
    }
}

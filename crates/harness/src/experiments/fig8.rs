//! Figure 8 — the total number of moved objects per trace for CMT,
//! EDM-CDF and EDM-HDF (remapping-table overhead, §V.E).
//!
//! Expected shape: at most ~1 % of all objects move; CMT moves the most
//! (it balances load *and* storage usage and is read/write agnostic),
//! then CDF, then HDF.

use std::collections::HashMap;

use edm_cluster::RunReport;
use edm_workload::harvard::TRACE_NAMES;

use crate::report::{grouped, render_table};
use crate::runner::{run_matrix, Cell, RunConfig};

/// The migrating policies Fig. 8 compares (Baseline moves nothing).
pub const FIG8_POLICIES: [&str; 3] = ["CMT", "EDM-CDF", "EDM-HDF"];

/// Moved-object counts per trace and policy.
pub struct MovedObjects {
    pub osds: u32,
    pub traces: Vec<String>,
    pub reports: HashMap<Cell, RunReport>,
}

impl MovedObjects {
    pub fn moved(&self, trace: &str, policy: &str) -> u64 {
        self.reports[&Cell::new(trace, policy, self.osds)].moved_objects
    }

    pub fn moved_fraction(&self, trace: &str, policy: &str) -> f64 {
        self.reports[&Cell::new(trace, policy, self.osds)].moved_fraction()
    }

    pub fn remap_entries(&self, trace: &str, policy: &str) -> u64 {
        self.reports[&Cell::new(trace, policy, self.osds)].remap_entries
    }
}

pub fn run(cfg: &RunConfig, osds: u32, traces: &[&str]) -> MovedObjects {
    let cells: Vec<Cell> = traces
        .iter()
        .flat_map(|t| FIG8_POLICIES.iter().map(move |p| Cell::new(t, p, osds)))
        .collect();
    MovedObjects {
        osds,
        traces: traces.iter().map(|t| t.to_string()).collect(),
        reports: run_matrix(&cells, cfg),
    }
}

/// The paper's setup: all seven traces on 16 OSDs.
pub fn run_paper(cfg: &RunConfig) -> MovedObjects {
    run(cfg, 16, &TRACE_NAMES)
}

pub fn render(m: &MovedObjects) -> String {
    let rows: Vec<Vec<String>> = m
        .traces
        .iter()
        .map(|t| {
            let mut row = vec![t.clone()];
            for p in FIG8_POLICIES {
                row.push(format!(
                    "{} ({:.2}%)",
                    grouped(m.moved(t, p)),
                    m.moved_fraction(t, p) * 100.0
                ));
            }
            for p in FIG8_POLICIES {
                row.push(grouped(m.remap_entries(t, p)));
            }
            row
        })
        .collect();
    format!(
        "Figure 8 ({}-OSDs): total moved objects (and % of all objects)\n{}",
        m.osds,
        render_table(
            &[
                "trace",
                "CMT moved",
                "CDF moved",
                "HDF moved",
                "CMT remap",
                "CDF remap",
                "HDF remap",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::MigrationSchedule;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: 0.002,
            schedule: MigrationSchedule::Midpoint,
            response_window_us: None,
            jobs: None,
        }
    }

    #[test]
    fn migrating_policies_move_objects() {
        let m = run(&tiny(), 8, &["home02"]);
        for p in FIG8_POLICIES {
            assert!(
                m.moved("home02", p) > 0,
                "{p} moved nothing on a skewed trace"
            );
        }
    }

    #[test]
    fn remap_entries_bounded_by_moved() {
        let m = run(&tiny(), 8, &["home02"]);
        for p in FIG8_POLICIES {
            assert!(m.remap_entries("home02", p) <= m.moved("home02", p));
        }
    }

    #[test]
    fn render_includes_percentages() {
        let m = run(&tiny(), 8, &["home02"]);
        let text = render(&m);
        assert!(text.contains("Figure 8"));
        assert!(text.contains('%'));
    }
}

//! Datacenter-scale experiment (extension): sequential vs group-sharded
//! execution of one large cluster.
//!
//! The paper's evaluation stops at 16–20 OSDs; Serifos-style cloud
//! deployments run thousands of SSDs. This experiment replays one
//! workload on a large cluster twice — once on the classic sequential
//! engine, once group-sharded across worker threads — times both, and
//! asserts the determinism digests are bit-identical (the sharded
//! engine's contract; see DESIGN.md §11).
//!
//! The inode-stride transform is what makes sharding applicable: with
//! `objects_per_file ≤ stride` and `groups % stride == 0`, every file's
//! objects stay inside one aligned block of `stride` groups, so the
//! cluster splits into `groups / stride` independent components.

use std::time::Instant;

use edm_cluster::{ClientAffinity, MigrationSchedule, RunReport, ShardDecision};

use crate::report::{render_table, report_digest};
use crate::scenario::Scenario;

/// Parameters of one scale comparison.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    pub trace: String,
    pub policy: String,
    /// Trace scale factor in (0, 1].
    pub scale: f64,
    pub osds: u32,
    pub groups: u32,
    pub objects_per_file: u32,
    /// Inode stride (see module docs); must satisfy
    /// `objects_per_file ≤ stride` and `groups % stride == 0`.
    pub stride: u64,
    /// Worker threads for the sharded run.
    pub shards: u32,
}

impl ScaleConfig {
    /// The headline configuration: 1024 OSDs in 32 groups, RAID-5 over
    /// 4 objects, stride 4 → 8 placement components. At `scale = 1.0`
    /// the home02 trace replays ≥ 10⁷ operations.
    pub fn datacenter(scale: f64, shards: u32) -> Self {
        ScaleConfig {
            trace: "home02".into(),
            policy: "EDM-HDF".into(),
            scale,
            osds: 1024,
            groups: 32,
            objects_per_file: 4,
            stride: 4,
            shards,
        }
    }

    /// A seconds-scale variant for CI smoke runs: 16 OSDs in 4 groups,
    /// RAID-5 over 2 objects, stride 2 → 2 components.
    pub fn smoke(scale: f64, shards: u32) -> Self {
        ScaleConfig {
            trace: "home02".into(),
            policy: "EDM-HDF".into(),
            scale,
            osds: 16,
            groups: 4,
            objects_per_file: 2,
            stride: 2,
            shards,
        }
    }

    /// The scenario this configuration runs, with the given shard count
    /// (0 = sequential). Everything except `shards` is identical between
    /// the two runs — component affinity in particular, so the replay
    /// order being compared is genuinely the same.
    pub fn scenario(&self, shards: u32) -> Scenario {
        Scenario {
            trace: self.trace.clone(),
            scale: self.scale,
            osds: self.osds,
            groups: self.groups,
            objects_per_file: self.objects_per_file,
            policy: self.policy.clone(),
            schedule: MigrationSchedule::EveryTick,
            stride: self.stride,
            shards,
            affinity: ClientAffinity::Component,
            ..Scenario::default()
        }
    }
}

/// One timed run of the comparison.
#[derive(Debug)]
pub struct ScaleRun {
    pub label: String,
    pub wall_s: f64,
    pub digest: u64,
    pub report: RunReport,
}

/// The full comparison: the engine's sharding decision, then the timed
/// sequential and sharded runs.
#[derive(Debug)]
pub struct ScaleResult {
    pub decision: ShardDecision,
    pub runs: Vec<ScaleRun>,
}

fn timed_run(scenario: &Scenario, label: &str) -> ScaleRun {
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now(); // edm-audit: allow(det.wallclock, "wall-clock timing IS this experiment's measurement; it never feeds back into the simulation")
                                  // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
    let report = scenario.run().expect("scale scenario failed");
    let wall_s = started.elapsed().as_secs_f64();
    ScaleRun {
        label: label.into(),
        wall_s,
        digest: report_digest(&report),
        report,
    }
}

/// Runs the comparison. Panics if the sharded digest diverges from the
/// sequential one — digest identity is the sharded engine's contract,
/// and an experiment that silently reported different physics would be
/// worse than a crash.
pub fn run(cfg: &ScaleConfig) -> ScaleResult {
    let decision = cfg
        .scenario(cfg.shards)
        .shard_decision()
        .expect("scale scenario failed"); // edm-audit: allow(panic.expect, "experiment setup with a pinned valid config; abort is the harness failure mode")
    let sequential = timed_run(&cfg.scenario(0), "sequential");
    let sharded = timed_run(
        &cfg.scenario(cfg.shards),
        &format!("sharded({})", cfg.shards),
    );
    assert_eq!(
        sequential.digest, sharded.digest,
        "sharded digest diverged from sequential"
    );
    ScaleResult {
        decision,
        runs: vec![sequential, sharded],
    }
}

pub fn render(result: &ScaleResult) -> String {
    let base = result.runs.first().map(|r| r.wall_s).unwrap_or(0.0);
    let rows: Vec<Vec<String>> = result
        .runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.2}", r.wall_s),
                format!("{:.0}", r.report.completed_ops as f64 / r.wall_s.max(1e-9)),
                format!("{:.2}x", base / r.wall_s.max(1e-9)),
                format!("{:#018x}", r.digest),
            ]
        })
        .collect();
    format!(
        "{}\n{}",
        result.decision,
        render_table(
            &["engine", "wall s", "replayed ops/s", "speedup", "digest"],
            &rows,
        )
    )
}

//! Long-horizon wear-out trajectory via checkpointed segments.
//!
//! The paper's Fig. 6 shows erase-count balance at the *end* of a run;
//! this experiment reconstructs the whole trajectory without any
//! in-process sampling hooks: the run cuts an `edm-snap` checkpoint at
//! every wear tick, and each checkpoint's manifest already carries the
//! per-OSD erase counters at that instant. Reading the manifests back
//! (cheap — no simulator is materialized) yields erase totals and RSD
//! over virtual time.
//!
//! It doubles as the end-to-end resume-determinism demonstration: after
//! the uninterrupted run, the middle checkpoint is resumed to completion
//! and the two reports' digests are compared — they must be identical.

use std::path::PathBuf;

use edm_cluster::{RunReport, SnapManifest};
use edm_obs::NoopRecorder;
use edm_snap::SnapshotFile;

use crate::report::{render_table, report_digest};
use crate::runner::RunConfig;
use crate::scenario::{resume_snapshot, Scenario};

/// Wear state at one checkpoint.
#[derive(Debug, Clone)]
pub struct WearoutPoint {
    pub now_us: u64,
    pub completed_ops: u64,
    pub per_osd_erases: Vec<u64>,
}

impl WearoutPoint {
    pub fn aggregate(&self) -> u64 {
        self.per_osd_erases.iter().sum()
    }

    /// Relative standard deviation of the per-OSD erase counts (the
    /// paper's wear-balance metric).
    pub fn erase_rsd(&self) -> f64 {
        let n = self.per_osd_erases.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.aggregate() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_osd_erases
            .iter()
            .map(|&e| (e as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[derive(Debug)]
pub struct WearoutResult {
    pub scenario: Scenario,
    pub points: Vec<WearoutPoint>,
    pub report: RunReport,
    /// Digest of the uninterrupted run's report.
    pub digest: u64,
    /// Digest of the report obtained by resuming the middle checkpoint.
    /// Equal to [`digest`](Self::digest) iff resume is deterministic.
    pub resumed_digest: u64,
}

/// Runs the checkpointed trajectory and the resume-determinism check.
pub fn run(cfg: &RunConfig, osds: u32, trace: &str) -> WearoutResult {
    let scenario = Scenario {
        trace: trace.into(),
        scale: cfg.scale,
        osds,
        schedule: cfg.schedule,
        ..Scenario::default()
    };
    let dir = wearout_dir();
    let _ = std::fs::remove_dir_all(&dir);
    // every_us = 0: cut a checkpoint at every wear tick.
    let report = scenario
        .run_with_obs_checkpointed(&mut NoopRecorder, Some((0, dir.clone())))
        // edm-audit: allow(panic.expect, "experiment harness: a failed run should abort the experiment loudly")
        .expect("wearout run failed");
    let digest = report_digest(&report);

    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        // edm-audit: allow(panic.expect, "experiment harness: scratch dir was just created by this process")
        .expect("checkpoint dir unreadable")
        // edm-audit: allow(panic.expect, "experiment harness: scratch dir was just created by this process")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    assert!(!snaps.is_empty(), "run produced no checkpoints");

    let points: Vec<WearoutPoint> = snaps
        .iter()
        .map(|p| {
            // edm-audit: allow(panic.expect, "experiment harness: reading back a checkpoint this run just wrote")
            let snap = SnapshotFile::read_from(p).expect("checkpoint unreadable");
            // edm-audit: allow(panic.expect, "experiment harness: reading back a checkpoint this run just wrote")
            let m = SnapManifest::from_snapshot(&snap).expect("checkpoint has no manifest");
            WearoutPoint {
                now_us: m.now_us,
                completed_ops: m.completed_ops,
                per_osd_erases: m.per_osd_erases,
            }
        })
        .collect();

    let (_, resumed) = resume_snapshot(&snaps[snaps.len() / 2], &mut NoopRecorder)
        // edm-audit: allow(panic.expect, "experiment harness: resume from a checkpoint this run just wrote")
        .expect("resume from mid checkpoint failed");
    let _ = std::fs::remove_dir_all(&dir);

    WearoutResult {
        scenario,
        points,
        report,
        digest,
        resumed_digest: report_digest(&resumed),
    }
}

fn wearout_dir() -> PathBuf {
    // edm-audit: allow(det.env_read, "scratch directory for experiment checkpoints; its location never reaches simulation state")
    std::env::temp_dir().join(format!("edm-wearout-{}", std::process::id()))
}

pub fn render(r: &WearoutResult) -> String {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            let max = p.per_osd_erases.iter().max().copied().unwrap_or(0);
            let min = p.per_osd_erases.iter().min().copied().unwrap_or(0);
            vec![
                format!("{:.2}", p.now_us as f64 / 1e6),
                p.completed_ops.to_string(),
                p.aggregate().to_string(),
                format!("{:.3}", p.erase_rsd()),
                format!("{}", max - min),
            ]
        })
        .collect();
    let mut out = format!(
        "wear-out trajectory: {} on {} ({} OSDs), {} checkpoints\n",
        r.scenario.policy,
        r.scenario.trace,
        r.scenario.osds,
        r.points.len()
    );
    out.push_str(&render_table(
        &["t (s)", "ops", "erases", "RSD", "max-min"],
        &rows,
    ));
    out.push_str(&format!(
        "final: {} erases, RSD {:.3} | digest {:#018x} | resumed {:#018x} ({})\n",
        r.report.aggregate_erases(),
        r.report.erase_rsd(),
        r.digest,
        r.resumed_digest,
        if r.digest == r.resumed_digest {
            "MATCH — resume is bit-identical"
        } else {
            "MISMATCH — resume diverged"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::MigrationSchedule;

    #[test]
    fn wearout_trajectory_and_resume_match() {
        let cfg = RunConfig {
            scale: 0.002,
            schedule: MigrationSchedule::EveryTick,
            ..RunConfig::default()
        };
        let r = run(&cfg, 8, "home02");
        assert!(r.points.len() >= 2, "want a trajectory, got {:?}", r.points);
        // Erase totals are monotone over checkpoints.
        for w in r.points.windows(2) {
            assert!(w[0].aggregate() <= w[1].aggregate());
            assert!(w[0].now_us < w[1].now_us);
        }
        assert_eq!(r.digest, r.resumed_digest, "resume diverged");
        let text = render(&r);
        assert!(text.contains("MATCH"));
    }
}

#![forbid(unsafe_code)]
//! # edm-harness — regenerating the paper's tables and figures
//!
//! One module per evaluation artifact of the paper (Table 1, Figures 1,
//! 3, 5, 6, 7, 8) plus ablations, a parallel sweep [`runner`], and ASCII
//! [`report`] rendering. The `edm-exp` binary dispatches by experiment id:
//!
//! ```text
//! cargo run --release -p edm-harness --bin edm-exp -- fig5 --scale 0.05
//! ```

pub mod bench;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scenario;

pub use report::report_digest;
pub use runner::{run_cell, run_matrix, trace_for, Cell, RunConfig};
pub use scenario::{resume_snapshot, Scenario, SnapMeta};

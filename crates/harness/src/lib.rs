#![forbid(unsafe_code)]
//! # edm-harness — regenerating the paper's tables and figures
//!
//! One module per evaluation artifact of the paper (Table 1, Figures 1,
//! 3, 5, 6, 7, 8) plus ablations, a parallel sweep [`runner`], and ASCII
//! report rendering. The `edm-exp` binary dispatches by experiment id:
//!
//! ```text
//! cargo run --release -p edm-harness --bin edm-exp -- fig5 --scale 0.05
//! ```
//!
//! Scenario parsing, trace/cluster construction, and the determinism
//! digest live in `edm-scenario` (shared with the `edm-serve` daemon);
//! the [`report`] and [`scenario`] modules re-export them here so
//! existing callers keep their paths.

pub mod bench;
pub mod experiments;
pub mod runner;

/// Re-export of [`edm_scenario::report`] under its historical path.
pub mod report {
    pub use edm_scenario::report::*;
}

/// Re-export of [`edm_scenario::scenario`] under its historical path.
pub mod scenario {
    pub use edm_scenario::scenario::*;
}

pub use report::report_digest;
pub use runner::{run_cell, run_matrix, trace_for, Cell, RunConfig};
pub use scenario::{resume_snapshot, Scenario, SnapMeta};

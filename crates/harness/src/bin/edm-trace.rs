//! `edm-trace` — workload tooling: synthesize the Table 1 presets to
//! trace files, analyze a trace's skew/locality profile, and import
//! Harvard-style NFS trace text.
//!
//! ```text
//! edm-trace gen <preset|random> <out.trace> [--scale F] [--seed N]
//! edm-trace stats <file.trace>
//! edm-trace import <harvard.txt> <out.trace> [--name NAME]
//! edm-trace list
//! ```

use edm_workload::analysis::profile;
use edm_workload::harvard;
use edm_workload::synth::synthesize;
use edm_workload::Trace;

fn usage() -> ! {
    eprintln!(
        "usage:\n  edm-trace gen <preset|random> <out.trace> [--scale F] [--seed N]\n  \
         edm-trace stats <file.trace>\n  \
         edm-trace import <harvard.txt> <out.trace> [--name NAME]\n  \
         edm-trace list"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    Trace::from_text(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn save(trace: &Trace, path: &str) {
    std::fs::write(path, trace.to_text()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {path}: {} records, {} files, {:.1} MB footprint",
        trace.records.len(),
        trace.file_sizes.len(),
        trace.footprint_bytes() as f64 / 1e6
    );
}

fn print_stats(trace: &Trace) {
    let s = trace.stats();
    println!("trace    {}", trace.name);
    println!("files    {}", s.file_cnt);
    println!(
        "writes   {} (avg {} B, total {:.1} MB)",
        s.write_cnt,
        s.avg_write_size,
        s.total_write_bytes as f64 / 1e6
    );
    println!(
        "reads    {} (avg {} B, total {:.1} MB)",
        s.read_cnt,
        s.avg_read_size,
        s.total_read_bytes as f64 / 1e6
    );
    println!("opens    {} / closes {}", s.open_cnt, s.close_cnt);
    println!("footprint {:.1} MB", trace.footprint_bytes() as f64 / 1e6);
    let p = profile(trace);
    println!("-- skew/locality profile --");
    println!("write gini              {:.3}", p.write_gini);
    println!("read gini               {:.3}", p.read_gini);
    println!("write top-decile share  {:.3}", p.write_top_decile_share);
    println!("read top-decile share   {:.3}", p.read_top_decile_share);
    println!("hot-set overlap         {:.3}", p.hot_set_overlap);
    println!("size-write correlation  {:.3}", p.size_write_correlation);
    println!("sequential fraction     {:.3}", p.sequential_fraction);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("list") => {
            println!("presets: {} random", harvard::TRACE_NAMES.join(" "));
        }
        Some("gen") => {
            if args.len() < 3 {
                usage();
            }
            let (preset, out) = (&args[1], &args[2]);
            let mut scale = 0.01;
            let mut seed: Option<u64> = None;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--scale" => {
                        scale = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--seed" => {
                        seed = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    _ => usage(),
                }
            }
            let mut spec = if preset == "random" {
                harvard::random_spec()
            } else {
                harvard::spec(preset)
            }
            .scaled(scale);
            if let Some(seed) = seed {
                spec.seed = seed;
            }
            save(&synthesize(&spec), out);
        }
        Some("stats") => {
            if args.len() != 2 {
                usage();
            }
            print_stats(&load(&args[1]));
        }
        Some("import") => {
            if args.len() < 3 {
                usage();
            }
            let mut name = "imported".to_string();
            if args.len() == 5 && args[3] == "--name" {
                name = args[4].clone();
            } else if args.len() != 3 {
                usage();
            }
            let text = std::fs::read_to_string(&args[1]).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", args[1]);
                std::process::exit(1);
            });
            let trace = harvard::parse_harvard_text(&name, &text).unwrap_or_else(|e| {
                eprintln!("cannot parse Harvard text: {e}");
                std::process::exit(1);
            });
            save(&trace, &args[2]);
        }
        _ => usage(),
    }
}

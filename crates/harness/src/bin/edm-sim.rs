//! `edm-sim` — run a declarative scenario file.
//!
//! ```text
//! edm-sim <scenario-file>
//! edm-sim --example          # print a commented example scenario
//! ```

use edm_harness::scenario::{render_report, Scenario};

const EXAMPLE: &str = "\
# Example edm-sim scenario: lair62 under EDM-HDF with one failure.
trace lair62          # Table 1 preset, or `random`
scale 0.02            # fraction of the full Table 1 op counts
osds 16
groups 4
objects_per_file 4
policy EDM-HDF        # Baseline | CMT | EDM-HDF | EDM-CDF
schedule midpoint     # never | midpoint | every-tick
lambda 0.10
force true            # skip the trigger check at plan time
fail 2000000 3 rebuild  # at 2s of virtual time, OSD 3 dies; rebuild it
";

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--example") => print!("{EXAMPLE}"),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let scenario = Scenario::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            eprintln!("running {scenario:?}");
            match scenario.run() {
                Ok(report) => print!("{}", render_report(&report)),
                Err(e) => {
                    eprintln!("scenario failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("usage: edm-sim <scenario-file> | edm-sim --example");
            std::process::exit(2);
        }
    }
}

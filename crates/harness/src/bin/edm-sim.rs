//! `edm-sim` — run a declarative scenario file.
//!
//! ```text
//! edm-sim <scenario-file> [--obs <out.jsonl>] [--obs-level off|metrics|events]
//!         [--checkpoint-every <virtual-secs> --checkpoint-dir <dir>]
//! edm-sim --resume <snapshot.snap> [--obs ...]
//! edm-sim --example          # print a commented example scenario
//! ```
//!
//! `--obs` writes the run's observability output to a file: a metrics
//! snapshot (one JSON object) at `--obs-level metrics`, or the full
//! event journal as JSONL (events first, then counter/gauge/histogram
//! trailer records) at `--obs-level events`. Passing `--obs` alone
//! implies `--obs-level events`. Recording is read-only — the printed
//! report is identical at every level.
//!
//! `--checkpoint-every N` cuts an `edm-snap` checkpoint into
//! `--checkpoint-dir` every N seconds of *virtual* time (at wear-tick
//! granularity; `0` means every tick). Each checkpoint embeds the
//! scenario, so `--resume <file>` needs no scenario argument and drives
//! the run to completion — the printed report and determinism digest are
//! bit-identical to the uninterrupted run's.

use std::path::{Path, PathBuf};

use edm_harness::report::report_digest;
use edm_harness::scenario::{render_report, resume_snapshot, Scenario};
use edm_obs::{MemoryRecorder, NoopRecorder, ObsLevel, Recorder};

const EXAMPLE: &str = "\
# Example edm-sim scenario: lair62 under EDM-HDF with one failure.
trace lair62          # Table 1 preset, or `random`
scale 0.02            # fraction of the full Table 1 op counts
osds 16
groups 4
objects_per_file 4
policy EDM-HDF        # Baseline | CMT | EDM-HDF | EDM-CDF
schedule midpoint     # never | midpoint | every-tick
lambda 0.10
force true            # skip the trigger check at plan time
fail 2000000 3 rebuild  # at 2s of virtual time, OSD 3 dies; rebuild it
";

const USAGE: &str = "usage: edm-sim <scenario-file> [--obs <file>] \
     [--obs-level off|metrics|events] [--shards <n>] \
     [--checkpoint-every <virtual-secs> --checkpoint-dir <dir>] \
     | edm-sim --resume <snapshot.snap> | edm-sim --example";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--example") {
        print!("{EXAMPLE}");
        return;
    }
    let mut path: Option<String> = None;
    let mut obs_path: Option<String> = None;
    let mut obs_level: Option<ObsLevel> = None;
    let mut ckpt_every_us: Option<u64> = None;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut shards: Option<u32> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--obs" => {
                let v = it.next().unwrap_or_else(|| fail("--obs needs a file path"));
                obs_path = Some(v);
            }
            "--checkpoint-every" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--checkpoint-every needs a virtual-seconds value"));
                let secs: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --checkpoint-every value {v:?}")));
                if !(secs >= 0.0 && secs.is_finite()) {
                    fail("--checkpoint-every must be a non-negative number of seconds");
                }
                ckpt_every_us = Some((secs * 1e6) as u64);
            }
            "--checkpoint-dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--checkpoint-dir needs a directory"));
                ckpt_dir = Some(PathBuf::from(v));
            }
            "--resume" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--resume needs a snapshot file"));
                resume = Some(PathBuf::from(v));
            }
            "--shards" => {
                let v = it.next().unwrap_or_else(|| fail("--shards needs a count"));
                shards = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --shards value {v:?}"))),
                );
            }
            "--obs-level" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--obs-level needs off|metrics|events"));
                obs_level = Some(
                    ObsLevel::parse(&v)
                        .unwrap_or_else(|| fail(&format!("unknown obs level {v:?}"))),
                );
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => fail(&format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    if resume.is_some() && (path.is_some() || ckpt_every_us.is_some() || ckpt_dir.is_some()) {
        fail("--resume reconstructs the scenario from the snapshot; it takes no scenario file or checkpoint flags");
    }
    if resume.is_some() && shards.is_some() {
        fail("--resume continues the checkpoint's sequential replay; --shards does not apply");
    }
    let checkpoint = match (ckpt_every_us, ckpt_dir) {
        (Some(every_us), Some(dir)) => Some((every_us, dir)),
        (None, None) => None,
        _ => fail("--checkpoint-every and --checkpoint-dir must be given together"),
    };
    if resume.is_none() && path.is_none() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    // `--obs FILE` alone implies the full journal; a non-off level needs
    // somewhere to go.
    let level = obs_level.unwrap_or(if obs_path.is_some() {
        ObsLevel::Events
    } else {
        ObsLevel::Off
    });
    if level > ObsLevel::Off && obs_path.is_none() {
        fail("--obs-level metrics|events requires --obs <file>");
    }

    let mut noop = NoopRecorder;
    let mut mem = MemoryRecorder::new(level);
    let obs: &mut dyn Recorder = if level == ObsLevel::Off {
        &mut noop
    } else {
        &mut mem
    };
    let report = if let Some(snap) = &resume {
        eprintln!("resuming {}", snap.display());
        let (scenario, report) = resume_snapshot(Path::new(snap), obs).unwrap_or_else(|e| fail(&e));
        eprintln!("resumed {scenario:?}");
        report
    } else {
        let path = path.expect("checked above");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let mut scenario = Scenario::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        if let Some(n) = shards {
            // Sharding requires component client affinity, so asking for
            // shards on the command line opts into it; `--shards 0`
            // forces the sequential path without touching the scenario.
            scenario.shards = n;
            if n > 0 {
                scenario.affinity = edm_cluster::ClientAffinity::Component;
            }
        }
        eprintln!("running {scenario:?}");
        if scenario.shards > 0 {
            let decision = scenario
                .shard_decision()
                .unwrap_or_else(|e| fail(&format!("scenario failed: {e}")));
            eprintln!("{decision}");
            if checkpoint.is_some() {
                eprintln!("shard-plan: checkpointing forces the sequential path");
            }
        }
        scenario
            .run_with_obs_checkpointed(obs, checkpoint)
            .unwrap_or_else(|e| fail(&format!("scenario failed: {e}")))
    };
    print!("{}", render_report(&report));
    println!("determinism digest {:#018x}", report_digest(&report));

    if let Some(out) = obs_path {
        let result = match level {
            ObsLevel::Metrics => std::fs::write(&out, mem.snapshot_json()),
            ObsLevel::Events => std::fs::File::create(&out).and_then(|f| {
                use std::io::Write as _;
                let mut w = std::io::BufWriter::new(f);
                mem.write_jsonl(&mut w)?;
                w.flush()
            }),
            ObsLevel::Off => Ok(()),
        };
        result.unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        eprintln!(
            "obs: wrote {} ({} journal events)",
            out,
            mem.journal().len()
        );
    }
}

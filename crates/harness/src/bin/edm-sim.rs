//! `edm-sim` — run a declarative scenario file.
//!
//! ```text
//! edm-sim <scenario-file> [--obs <out.jsonl>] [--obs-level off|metrics|events]
//! edm-sim --example          # print a commented example scenario
//! ```
//!
//! `--obs` writes the run's observability output to a file: a metrics
//! snapshot (one JSON object) at `--obs-level metrics`, or the full
//! event journal as JSONL (events first, then counter/gauge/histogram
//! trailer records) at `--obs-level events`. Passing `--obs` alone
//! implies `--obs-level events`. Recording is read-only — the printed
//! report is identical at every level.

use edm_harness::scenario::{render_report, Scenario};
use edm_obs::{MemoryRecorder, NoopRecorder, ObsLevel, Recorder};

const EXAMPLE: &str = "\
# Example edm-sim scenario: lair62 under EDM-HDF with one failure.
trace lair62          # Table 1 preset, or `random`
scale 0.02            # fraction of the full Table 1 op counts
osds 16
groups 4
objects_per_file 4
policy EDM-HDF        # Baseline | CMT | EDM-HDF | EDM-CDF
schedule midpoint     # never | midpoint | every-tick
lambda 0.10
force true            # skip the trigger check at plan time
fail 2000000 3 rebuild  # at 2s of virtual time, OSD 3 dies; rebuild it
";

const USAGE: &str =
    "usage: edm-sim <scenario-file> [--obs <file>] [--obs-level off|metrics|events] \
     | edm-sim --example";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--example") {
        print!("{EXAMPLE}");
        return;
    }
    let mut path: Option<String> = None;
    let mut obs_path: Option<String> = None;
    let mut obs_level: Option<ObsLevel> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--obs" => {
                let v = it.next().unwrap_or_else(|| fail("--obs needs a file path"));
                obs_path = Some(v);
            }
            "--obs-level" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--obs-level needs off|metrics|events"));
                obs_level = Some(
                    ObsLevel::parse(&v)
                        .unwrap_or_else(|| fail(&format!("unknown obs level {v:?}"))),
                );
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => fail(&format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    // `--obs FILE` alone implies the full journal; a non-off level needs
    // somewhere to go.
    let level = obs_level.unwrap_or(if obs_path.is_some() {
        ObsLevel::Events
    } else {
        ObsLevel::Off
    });
    if level > ObsLevel::Off && obs_path.is_none() {
        fail("--obs-level metrics|events requires --obs <file>");
    }

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let scenario = Scenario::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    eprintln!("running {scenario:?}");

    let mut noop = NoopRecorder;
    let mut mem = MemoryRecorder::new(level);
    let obs: &mut dyn Recorder = if level == ObsLevel::Off {
        &mut noop
    } else {
        &mut mem
    };
    let report = scenario
        .run_with_obs(obs)
        .unwrap_or_else(|e| fail(&format!("scenario failed: {e}")));
    print!("{}", render_report(&report));

    if let Some(out) = obs_path {
        let result = match level {
            ObsLevel::Metrics => std::fs::write(&out, mem.snapshot_json()),
            ObsLevel::Events => std::fs::File::create(&out).and_then(|f| {
                use std::io::Write as _;
                let mut w = std::io::BufWriter::new(f);
                mem.write_jsonl(&mut w)?;
                w.flush()
            }),
            ObsLevel::Off => Ok(()),
        };
        result.unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        eprintln!(
            "obs: wrote {} ({} journal events)",
            out,
            mem.journal().len()
        );
    }
}

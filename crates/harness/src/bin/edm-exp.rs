//! `edm-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! edm-exp <experiment> [--scale F] [--osds N[,N...]] [--full] [--jobs N]
//!
//! experiments: table1 fig1 fig3 fig5 fig6 fig7 fig8 wearout
//!              ablate-sigma ablate-lambda ablate-groups all
//! --scale F    trace scale factor in (0,1]; default 0.05
//! --full       shorthand for --scale 1.0 (the paper's full Table 1 counts)
//! --osds N     cluster sizes (default: paper's 16,20 where applicable)
//! --jobs N     worker threads for matrix sweeps (default: EDM_JOBS env,
//!              then available cores)
//! ```

use std::path::Path;

use edm_cluster::MigrationSchedule;
use edm_harness::bench::{write_cells, BenchCell};
use edm_harness::experiments::{
    ablate, failure, fig1, fig3, fig56, fig7, fig8, model_diff, reliability, scale, table1,
    wearout, EXPERIMENT_IDS,
};
use edm_harness::runner::RunConfig;

fn usage() -> ! {
    eprintln!(
        "usage: edm-exp <experiment> [--scale F] [--osds N[,N...]] [--full] [--jobs N]\n\
         experiments: {} all",
        EXPERIMENT_IDS.join(" ")
    );
    std::process::exit(2);
}

struct Args {
    experiment: String,
    cfg: RunConfig,
    osds: Vec<u32>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        usage();
    };
    let mut cfg = RunConfig {
        scale: 0.05,
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
        jobs: None,
    };
    let mut osds: Vec<u32> = vec![16, 20];
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.scale = v.parse().unwrap_or_else(|_| usage());
                if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
                    usage();
                }
            }
            "--full" => cfg.scale = 1.0,
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cfg.jobs = Some(n),
                    _ => usage(),
                }
            }
            "--osds" => {
                let v = args.next().unwrap_or_else(|| usage());
                osds = v
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if osds.is_empty() {
                    usage();
                }
            }
            _ => usage(),
        }
    }
    Args {
        experiment,
        cfg,
        osds,
    }
}

/// Runs the model-vs-simulator differential gate: renders the corpus
/// comparison, records the `model_*` bench cells, and reports whether
/// every scenario stayed within the committed tolerances.
fn run_model_diff() -> bool {
    let tolerances = match model_diff::Tolerances::load(Path::new("scripts/model_tolerances.json"))
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("model-diff: {e}");
            return false;
        }
    };
    let result = match model_diff::run(Path::new("fuzz/corpus"), tolerances) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("model-diff: {e}");
            return false;
        }
    };
    println!("{}", model_diff::render(&result));
    let (closed_wall_s, preds_per_sec) = model_diff::closed_form_bench(5_000);
    let cells = [
        // Corpus differential: scenarios diffed per second of wall time.
        BenchCell {
            name: "model_diff_corpus".into(),
            wall_ms: result.wall_s * 1e3,
            ops_per_sec: result.diffs.len() as f64 / result.wall_s.max(1e-9),
            erases: result.diffs.iter().map(|d| d.sim_erases).sum(),
        },
        // Closed-form evaluation alone: 64-OSD cluster predictions/s.
        BenchCell {
            name: "model_closed_form".into(),
            wall_ms: closed_wall_s * 1e3,
            ops_per_sec: preds_per_sec,
            erases: 0,
        },
    ];
    if let Err(e) = write_cells("BENCH_edm.json", &cells) {
        eprintln!("model-diff: writing BENCH_edm.json failed: {e}");
        return false;
    }
    result.passed()
}

fn run_one(id: &str, cfg: &RunConfig, osds: &[u32]) -> bool {
    match id {
        "table1" => println!("{}", table1::render(&table1::run(cfg.scale))),
        "fig1" => println!("{}", fig1::render(&fig1::run(cfg, osds[0].min(8)))),
        "fig3" => println!("{}", fig3::render(&fig3::run(cfg, &fig3::default_grid()))),
        "fig5" | "fig6" => {
            let m = fig56::run(cfg, osds, &edm_workload::harvard::TRACE_NAMES);
            if id == "fig5" {
                println!("{}", fig56::render_fig5(&m));
            } else {
                println!("{}", fig56::render_fig6(&m));
            }
        }
        "fig7" => println!("{}", fig7::render(&fig7::run(cfg, osds[0]))),
        "fig8" => {
            let traces: Vec<&str> = edm_workload::harvard::TRACE_NAMES.to_vec();
            println!("{}", fig8::render(&fig8::run(cfg, osds[0], &traces)))
        }
        "failure" => {
            println!("{}", failure::render(&failure::run(cfg, osds[0], "home02")));
        }
        "wearout" => {
            // EveryTick gives the checkpointed trajectory migration work
            // to capture; cap the cluster so `all` stays quick.
            let cfg = RunConfig {
                schedule: MigrationSchedule::EveryTick,
                ..*cfg
            };
            println!(
                "{}",
                wearout::render(&wearout::run(&cfg, osds[0].min(8), "home02"))
            );
        }
        "scale" => {
            // Datacenter shape when the caller asks for >= 1024 OSDs,
            // otherwise the seconds-scale smoke shape. Shard count
            // follows --jobs, falling back to the available cores.
            let shards = cfg
                .jobs
                .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
                .unwrap_or(2)
                .max(2) as u32;
            let sc = if osds.iter().any(|&n| n >= 1024) {
                scale::ScaleConfig::datacenter(cfg.scale, shards)
            } else {
                scale::ScaleConfig::smoke(cfg.scale, shards)
            };
            println!("{}", scale::render(&scale::run(&sc)));
        }
        "reliability" => {
            // An OSD count not divisible by the group count gives uneven
            // groups (the SIII.D design); 18 -> groups of 5,5,4,4.
            let n = osds.iter().copied().find(|n| n % 4 != 0).unwrap_or(18);
            println!(
                "{}",
                reliability::render(&reliability::run(cfg, n, "lair62"))
            );
        }
        "ablate-sigma" => {
            let sigmas: Vec<f64> = (0..=8).map(|i| i as f64 * 0.05).collect();
            println!(
                "{}",
                ablate::render_sigma(&ablate::sigma_sweep(cfg, &sigmas))
            );
        }
        "ablate-lambda" => {
            let lambdas = [0.02, 0.05, 0.10, 0.20, 0.40, 0.80];
            println!(
                "{}",
                ablate::render_lambda(&ablate::lambda_sweep(cfg, osds[0], &lambdas))
            );
        }
        "ablate-gc" => {
            println!(
                "{}",
                ablate::render_gc_policy(&ablate::gc_policy_sweep(cfg, osds[0]))
            );
        }
        "ablate-decay" => {
            println!(
                "{}",
                ablate::render_decay(&ablate::decay_sweep(cfg, osds[0]))
            );
        }
        "ablate-continuous" => {
            println!(
                "{}",
                ablate::render_continuous(&ablate::continuous_sweep(cfg, osds[0]))
            );
        }
        "ablate-groups" => {
            let groups = [2, 4, 8];
            println!(
                "{}",
                ablate::render_groups(&ablate::group_sweep(cfg, osds[0], &groups))
            );
        }
        "model-diff" => return run_model_diff(),
        other => {
            eprintln!("unknown experiment {other:?}");
            usage();
        }
    }
    true
}

fn main() {
    let args = parse_args();
    #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
    let started = std::time::Instant::now();
    let mut ok = true;
    if args.experiment == "all" {
        for id in EXPERIMENT_IDS {
            eprintln!("== {id} ==");
            ok &= run_one(id, &args.cfg, &args.osds);
        }
    } else {
        ok = run_one(&args.experiment, &args.cfg, &args.osds);
    }
    eprintln!(
        "(scale {:.3}, wall time {:.1}s)",
        args.cfg.scale,
        started.elapsed().as_secs_f64()
    );
    if !ok {
        std::process::exit(1);
    }
}

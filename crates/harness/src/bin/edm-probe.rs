//! `edm-probe` — diagnostic deep-dive into one run: windowed response
//! times around the migration point and the per-OSD wear/load profile.
//!
//! ```text
//! edm-probe <trace> <policy> [scale] [osds]
//! edm-probe --journal <file.jsonl>
//! edm-probe --verify <file.jsonl>
//! edm-probe --snapshot <file.snap>
//! ```
//!
//! The `--journal` mode summarizes an observability journal written by
//! `edm-sim --obs <file> --obs-level events`: the per-OSD erase
//! timeline, the migration-decision trace (trigger evaluations, chosen
//! plans, predicted effects), per-component sections for sharded runs,
//! and the latency histograms. Exits nonzero if any line fails to
//! parse.
//!
//! The `--verify` mode replays the journal through the `edm-spec`
//! abstract state machine: every event must be a legal EDM transition
//! (placement, remap bijection, migration lifecycle, trigger semantics,
//! plan consistency, GC/wear accounting). Prints the events checked,
//! the state-machine coverage, and — on the first illegal event — the
//! violating journal line. Exits nonzero on any violation.
//!
//! The `--snapshot` mode prints an `edm-snap` checkpoint's manifest —
//! sections and sizes, virtual clock, progress, policy, per-OSD erase
//! counts, and the embedded scenario — without materializing a
//! simulator, so it is safe to point at checkpoints from newer or older
//! simulator builds. Exits nonzero on a corrupt or truncated file.

use edm_cluster::{run_trace, Cluster, ClusterConfig, SimOptions, SnapManifest};
use edm_core::make_policy;
use edm_harness::SnapMeta;
use edm_obs::json::{self, JsonValue};
use edm_snap::SnapshotFile;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--journal") => {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: edm-probe --journal <file.jsonl>");
                std::process::exit(2);
            });
            journal_mode(&path);
        }
        Some("--verify") => {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: edm-probe --verify <file.jsonl>");
                std::process::exit(2);
            });
            verify_mode(&path);
        }
        Some("--snapshot") => {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: edm-probe --snapshot <file.snap>");
                std::process::exit(2);
            });
            snapshot_mode(&path);
        }
        first => run_mode(first.map(str::to_string), args),
    }
}

fn snapshot_mode(path: &str) {
    let snap = SnapshotFile::read_from(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let size: u64 = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("{path}: edm-snap v1, {size} bytes");
    println!("-- sections --");
    for name in snap.section_names() {
        let len = snap.reader(name).map(|r| r.remaining()).unwrap_or(0);
        println!("{name:<10} {len} bytes");
    }
    let manifest = SnapManifest::from_snapshot(&snap).unwrap_or_else(|e| {
        eprintln!("{path}: bad manifest: {e}");
        std::process::exit(1);
    });
    println!("-- manifest --");
    println!("virtual clock   {:.3}s", manifest.now_us as f64 / 1e6);
    println!(
        "progress        {} / {} ops ({:.1}%)",
        manifest.completed_ops,
        manifest.total_records,
        manifest.completed_ops as f64 / manifest.total_records.max(1) as f64 * 100.0
    );
    println!("policy          {}", manifest.policy);
    let total: u64 = manifest.per_osd_erases.iter().sum();
    println!(
        "erases          {} total across {} OSDs",
        total,
        manifest.per_osd_erases.len()
    );
    for (o, e) in manifest.per_osd_erases.iter().enumerate() {
        println!("  osd{o:<3} {e}");
    }
    match SnapMeta::decode(&manifest.extra) {
        Ok(meta) => {
            println!("trace fp        {:#018x}", meta.trace_fingerprint);
            println!("-- embedded scenario --");
            print!("{}", meta.scenario);
        }
        Err(_) if manifest.extra.is_empty() => println!("(no embedded scenario)"),
        Err(e) => {
            eprintln!("{path}: bad embedded scenario metadata: {e}");
            std::process::exit(1);
        }
    }
}

fn verify_mode(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let report = edm_spec::verify_journal(&text);
    println!(
        "{path}: {} events checked, {} trailers, {} component tags",
        report.events, report.trailers, report.components
    );
    println!(
        "-- state-machine coverage ({} of {} kinds) --",
        report.kinds_seen(),
        edm_spec::SpecReport::kinds_known()
    );
    for kind in edm_spec::EVENT_KINDS {
        let n = report.kind_counts.get(kind).copied().unwrap_or(0);
        let mark = if n > 0 { ' ' } else { '-' };
        println!("{mark} {kind:<18} {n}");
    }
    match &report.violation {
        None => println!("conformant: every event is a legal EDM transition"),
        Some(v) => {
            eprintln!("{path}:{}: violation: {}", v.line, v.message);
            std::process::exit(1);
        }
    }
}

fn get_u64(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn get_f64(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(f64::NAN)
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("?")
}

fn journal_mode(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut records = Vec::new();
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(v) => records.push(v),
            Err(e) => {
                eprintln!("{path}:{}: bad journal line: {e}", no + 1);
                std::process::exit(1);
            }
        }
    }
    let trailers = records
        .iter()
        .filter(|r| matches!(get_str(r, "kind"), "counter" | "gauge" | "hist"))
        .count();
    let events = records.len() - trailers;
    let mut comps: Vec<u64> = records
        .iter()
        .filter(|r| r.get("comp").is_some())
        .map(|r| get_u64(r, "comp"))
        .collect();
    comps.sort_unstable();
    comps.dedup();
    println!(
        "{path}: {} records ({events} events, {trailers} trailers, {} components)",
        records.len(),
        comps.len()
    );

    // Per-OSD erase timeline: block_erase events bucketed over the run.
    let erases: Vec<(u64, u64)> = records
        .iter()
        .filter(|r| get_str(r, "kind") == "block_erase")
        .map(|r| (get_u64(r, "t_us"), get_u64(r, "osd")))
        .collect();
    if !erases.is_empty() {
        let max_t = erases.iter().map(|&(t, _)| t).max().unwrap_or(0);
        let max_osd = erases.iter().map(|&(_, o)| o).max().unwrap_or(0) as usize;
        const COLS: usize = 12;
        let width = max_t / COLS as u64 + 1;
        let mut counts = vec![[0u64; COLS]; max_osd + 1];
        for &(t, o) in &erases {
            counts[o as usize][(t / width) as usize] += 1;
        }
        println!(
            "-- per-OSD erase timeline ({COLS} x {:.2}s buckets) --",
            width as f64 / 1e6
        );
        for (o, row) in counts.iter().enumerate() {
            let total: u64 = row.iter().sum();
            if total == 0 {
                continue;
            }
            let cells: Vec<String> = row.iter().map(|c| format!("{c:>5}")).collect();
            println!("osd{o:<3} |{}| total {total}", cells.join(" "));
        }
    }

    // Per-component sections for sharded runs: each worker's share of
    // the event stream and its erase timeline. Triggers and plans stay
    // in the global tables below — planning runs on the coordinator and
    // its events carry no component tag.
    if !comps.is_empty() {
        const COLS: usize = 12;
        let max_t = records
            .iter()
            .map(|r| get_u64(r, "t_us"))
            .max()
            .unwrap_or(0);
        let width = max_t / COLS as u64 + 1;
        println!(
            "-- per-component erase timelines ({} workers, {COLS} x {:.2}s buckets) --",
            comps.len(),
            width as f64 / 1e6
        );
        for &c in &comps {
            let mut row = [0u64; COLS];
            let mut comp_events = 0u64;
            let mut comp_erases = 0u64;
            let mut osds: Vec<u64> = Vec::new();
            for r in records
                .iter()
                .filter(|r| r.get("comp").is_some() && get_u64(r, "comp") == c)
            {
                comp_events += 1;
                if get_str(r, "kind") == "block_erase" {
                    comp_erases += 1;
                    row[(get_u64(r, "t_us") / width) as usize] += 1;
                }
                if let Some(o) = r.get("osd").and_then(JsonValue::as_u64) {
                    osds.push(o);
                }
            }
            osds.sort_unstable();
            osds.dedup();
            let cells: Vec<String> = row.iter().map(|n| format!("{n:>5}")).collect();
            println!(
                "comp{c:<3} |{}| {comp_erases} erases / {comp_events} events on {} OSDs",
                cells.join(" "),
                osds.len()
            );
        }
    }

    // Migration-decision trace: trigger verdicts, plans, predictions.
    let triggers: Vec<&JsonValue> = records
        .iter()
        .filter(|r| get_str(r, "kind") == "trigger_eval")
        .collect();
    if !triggers.is_empty() {
        println!("-- trigger evaluations --");
        println!(
            "{:>10}  {:<8} {:<16} {:>8} {:>8}  fired  src dst",
            "t(s)", "policy", "metric", "rsd", "lambda"
        );
        for t in &triggers {
            let srcs = t.get("sources").and_then(JsonValue::as_arr);
            let dsts = t.get("destinations").and_then(JsonValue::as_arr);
            println!(
                "{:>10.3}  {:<8} {:<16} {:>8.4} {:>8.4}  {:<5}  {:>3} {:>3}",
                get_u64(t, "t_us") as f64 / 1e6,
                get_str(t, "policy"),
                get_str(t, "metric"),
                get_f64(t, "rsd"),
                get_f64(t, "lambda"),
                t.get("triggered").and_then(JsonValue::as_bool) == Some(true),
                srcs.map_or(0, <[JsonValue]>::len),
                dsts.map_or(0, <[JsonValue]>::len),
            );
        }
    }
    for r in &records {
        match get_str(r, "kind") {
            "plan_chosen" => println!(
                "plan at {:.3}s: {} moves {} objects / {} bytes",
                get_u64(r, "t_us") as f64 / 1e6,
                get_str(r, "policy"),
                get_u64(r, "moves"),
                get_u64(r, "moved_bytes"),
            ),
            "plan_assessment" => println!(
                "  predicted RSD {:.4} -> {:.4} for {} bytes / {} write pages shifted",
                get_f64(r, "rsd_before"),
                get_f64(r, "rsd_after"),
                get_u64(r, "moved_bytes"),
                get_u64(r, "moved_write_pages"),
            ),
            _ => {}
        }
    }

    // Counter and histogram trailer records.
    let counters: Vec<&JsonValue> = records
        .iter()
        .filter(|r| get_str(r, "kind") == "counter")
        .collect();
    if !counters.is_empty() {
        println!("-- counters --");
        for c in counters {
            println!("{:<28} {}", get_str(c, "name"), get_u64(c, "value"));
        }
    }
    let hists: Vec<&JsonValue> = records
        .iter()
        .filter(|r| get_str(r, "kind") == "hist")
        .collect();
    if !hists.is_empty() {
        println!("-- latency histograms (us) --");
        for h in hists {
            println!(
                "{:<20} n={:<9} p50={} p95={} p99={} max={}",
                get_str(h, "name"),
                get_u64(h, "count"),
                get_u64(h, "p50"),
                get_u64(h, "p95"),
                get_u64(h, "p99"),
                get_u64(h, "max"),
            );
        }
    }
}

fn run_mode(first: Option<String>, mut args: impl Iterator<Item = String>) {
    let trace_name = first.unwrap_or_else(|| "home02".into());
    let policy_name = args.next().unwrap_or_else(|| "EDM-HDF".into());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(0.01);
    let osds: u32 = args.next().map(|s| s.parse().expect("osds")).unwrap_or(16);

    let trace = synthesize(&harvard::spec(&trace_name).scaled(scale));
    let mut config = ClusterConfig::paper(osds);
    // Scale the 3-minute reporting window with the trace scale so the
    // series has a useful number of points at any scale.
    config.response_window_us = ((180e6 * scale) as u64).max(50_000);
    let cluster = Cluster::build(config, &trace).expect("build");
    let mut policy = make_policy(&policy_name);
    let report = run_trace(cluster, &trace, policy.as_mut(), SimOptions::default());

    println!(
        "{} on {} (scale {scale}, {osds} OSDs): {:.0} ops/s, mean {:.0}us, moved {}, {} erases",
        report.policy,
        report.trace,
        report.throughput_ops_per_sec(),
        report.mean_response_us,
        report.moved_objects,
        report.aggregate_erases()
    );
    let (p50, p95, p99) = report.response_percentiles_us;
    println!("response percentiles: p50={p50}us p95={p95}us p99={p99}us");
    println!("-- response windows ({}us each) --", 180_000_000 / 40);
    for w in &report.response_windows {
        if w.completed_ops == 0 {
            continue;
        }
        println!(
            "t={:>6.2}s ops={:>7} mean={:>8.0}us",
            w.start_us as f64 / 1e6,
            w.completed_ops,
            w.mean_response_us
        );
    }
    println!("-- per-OSD --");
    for o in &report.per_osd {
        println!(
            "osd{:<2} erases={:>6} writes={:>8} gc_moves={:>8} util={:.3} busy={:.2}s ({:.0}%) peakq={}",
            o.osd,
            o.erase_count,
            o.write_pages,
            o.gc_page_moves,
            o.utilization,
            o.busy_us as f64 / 1e6,
            o.busy_us as f64 / report.duration_us.max(1) as f64 * 100.0, o.peak_queue_depth
        );
    }
}

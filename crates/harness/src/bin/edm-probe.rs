//! `edm-probe` — diagnostic deep-dive into one run: windowed response
//! times around the migration point and the per-OSD wear/load profile.
//!
//! ```text
//! edm-probe <trace> <policy> [scale] [osds]
//! ```

use edm_cluster::{run_trace, Cluster, ClusterConfig, SimOptions};
use edm_core::make_policy;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_name = args.next().unwrap_or_else(|| "home02".into());
    let policy_name = args.next().unwrap_or_else(|| "EDM-HDF".into());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(0.01);
    let osds: u32 = args.next().map(|s| s.parse().expect("osds")).unwrap_or(16);

    let trace = synthesize(&harvard::spec(&trace_name).scaled(scale));
    let mut config = ClusterConfig::paper(osds);
    // Scale the 3-minute reporting window with the trace scale so the
    // series has a useful number of points at any scale.
    config.response_window_us = ((180e6 * scale) as u64).max(50_000);
    let cluster = Cluster::build(config, &trace).expect("build");
    let mut policy = make_policy(&policy_name);
    let report = run_trace(cluster, &trace, policy.as_mut(), SimOptions::default());

    println!(
        "{} on {} (scale {scale}, {osds} OSDs): {:.0} ops/s, mean {:.0}us, moved {}, {} erases",
        report.policy,
        report.trace,
        report.throughput_ops_per_sec(),
        report.mean_response_us,
        report.moved_objects,
        report.aggregate_erases()
    );
    let (p50, p95, p99) = report.response_percentiles_us;
    println!("response percentiles: p50={p50}us p95={p95}us p99={p99}us");
    println!("-- response windows ({}us each) --", 180_000_000 / 40);
    for w in &report.response_windows {
        if w.completed_ops == 0 {
            continue;
        }
        println!(
            "t={:>6.2}s ops={:>7} mean={:>8.0}us",
            w.start_us as f64 / 1e6,
            w.completed_ops,
            w.mean_response_us
        );
    }
    println!("-- per-OSD --");
    for o in &report.per_osd {
        println!(
            "osd{:<2} erases={:>6} writes={:>8} gc_moves={:>8} util={:.3} busy={:.2}s ({:.0}%) peakq={}",
            o.osd,
            o.erase_count,
            o.write_pages,
            o.gc_page_moves,
            o.utilization,
            o.busy_us as f64 / 1e6,
            o.busy_us as f64 / report.duration_us.max(1) as f64 * 100.0, o.peak_queue_depth
        );
    }
}

//! edm-perf: tracked performance harness.
//!
//! Runs pinned workloads with wall-clock timing and appends the results
//! to `BENCH_edm.json`, so simulator throughput is tracked the same way
//! the paper's figures are:
//!
//! * `ftl_micro_*` — a skewed-overwrite microbenchmark through the SSD's
//!   byte interface (≥1M page writes at full size), run twice: once as
//!   page-sized (4 KiB) device calls, once as extent-sized span calls —
//!   the same batching the cluster OSD performs per object I/O. The two
//!   variants perform identical logical work (the span path is
//!   bit-identical by construction — the harness asserts the erase counts
//!   and wear stats match), so their ratio isolates the per-call overhead
//!   the span batching removes.
//! * `fig5_*` — one end-to-end cluster cell per trace class (harvard
//!   presets + the Fig. 3 random workload), timing the full
//!   synthesize → build → warm-up → replay pipeline.
//!
//! `--smoke` shrinks every workload to a few seconds' worth for CI-style
//! sanity runs (`scripts/check.sh`); the JSON schema is identical.

use std::time::Instant;

use edm_cluster::MigrationSchedule;
use edm_harness::runner::{run_cell, Cell, RunConfig};
use edm_ssd::{Geometry, LatencyModel, Ssd, WearStats};

struct BenchResult {
    name: String,
    wall_ms: f64,
    ops_per_sec: f64,
    erases: u64,
}

/// The microbenchmark's fixed geometry: 128 blocks × 32 pages, 8 % OP —
/// small enough that the mapping tables stay cache-resident, so the
/// measurement isolates per-call FTL overhead rather than DRAM misses.
fn micro_geometry() -> Geometry {
    Geometry {
        page_size: 4096,
        pages_per_block: 32,
        blocks: 128,
        over_provision_ppt: 80,
    }
}

/// Skewed extent-aligned overwrites: 90 % of extents land in the hot
/// tenth of the live range. Extent alignment keeps the page-by-page and
/// span variants on the exact same logical access sequence.
fn ftl_micro(page_writes: u64, span_pages: u64, use_span: bool) -> (f64, u64, WearStats) {
    let g = micro_geometry();
    let mut ssd = Ssd::new(g, LatencyModel::PAPER);
    let ps = g.page_size;
    let live_extents = (g.exported_pages() * 11 / 20) / span_pages;
    let hot_extents = (live_extents / 10).max(1);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let started = Instant::now();
    // Fill the live range once, then hammer it with skewed overwrites.
    let mut written = 0u64;
    for e in 0..live_extents {
        write_extent(&mut ssd, e * span_pages * ps, span_pages, ps, use_span);
        written += span_pages;
    }
    while written < page_writes {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = x >> 11;
        let extent = if r % 10 < 9 {
            r % hot_extents
        } else {
            r % live_extents
        };
        write_extent(&mut ssd, extent * span_pages * ps, span_pages, ps, use_span);
        written += span_pages;
    }
    let wall = started.elapsed().as_secs_f64();
    ssd.check_invariants().expect("SSD invariants violated");
    (wall, written, ssd.wear().clone())
}

fn write_extent(ssd: &mut Ssd, offset: u64, pages: u64, page_size: u64, use_span: bool) {
    if use_span {
        ssd.write(offset, pages * page_size)
            .expect("span write failed");
    } else {
        for p in 0..pages {
            ssd.write(offset + p * page_size, page_size)
                .expect("page write failed");
        }
    }
}

fn run_micro(page_writes: u64, span_pages: u64, reps: u32, results: &mut Vec<BenchResult>) {
    // Best-of-N wall time: the workload is deterministic, so the fastest
    // repetition is the least-perturbed measurement of the same work.
    let best = |use_span: bool| {
        let mut best: Option<(f64, u64, WearStats)> = None;
        for _ in 0..reps {
            let run = ftl_micro(page_writes, span_pages, use_span);
            if best.as_ref().is_none_or(|b| run.0 < b.0) {
                best = Some(run);
            }
        }
        best.expect("at least one repetition")
    };
    let (page_wall, page_written, page_stats) = best(false);
    let (span_wall, span_written, span_stats) = best(true);
    assert_eq!(page_written, span_written);
    assert_eq!(
        page_stats, span_stats,
        "span and per-page variants diverged — determinism broken"
    );
    let page_ops = page_written as f64 / page_wall;
    let span_ops = span_written as f64 / span_wall;
    results.push(BenchResult {
        name: "ftl_micro_per_page".into(),
        wall_ms: page_wall * 1e3,
        ops_per_sec: page_ops,
        erases: page_stats.block_erases,
    });
    results.push(BenchResult {
        name: "ftl_micro_span".into(),
        wall_ms: span_wall * 1e3,
        ops_per_sec: span_ops,
        erases: span_stats.block_erases,
    });
    println!(
        "ftl_micro: {page_written} page writes, per-page {:.0} pages/s, span {:.0} pages/s \
         ({:.2}x), {} erases",
        page_ops,
        span_ops,
        span_ops / page_ops,
        page_stats.block_erases
    );
}

fn run_fig5_cells(scale: f64, results: &mut Vec<BenchResult>) {
    let cfg = RunConfig {
        scale,
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
    };
    for (trace, policy) in [
        ("home02", "EDM-HDF"),
        ("deasna", "EDM-CDF"),
        ("lair62", "CMT"),
        ("random", "Baseline"),
    ] {
        let cell = Cell::new(trace, policy, 8);
        let started = Instant::now();
        let report = run_cell(&cell, &cfg);
        let wall = started.elapsed().as_secs_f64();
        let ops = report.completed_ops as f64 / wall;
        println!(
            "fig5_{trace}_{policy}: {:.1} ms wall, {:.0} ops/s, {} erases",
            wall * 1e3,
            ops,
            report.aggregate_erases()
        );
        results.push(BenchResult {
            name: format!("fig5_{trace}_{policy}"),
            wall_ms: wall * 1e3,
            ops_per_sec: ops,
            erases: report.aggregate_erases(),
        });
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json(path: &str, results: &[BenchResult]) -> std::io::Result<()> {
    let mut s = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"erases\": {}}}{}\n",
            json_escape(&r.name),
            r.wall_ms,
            r.ops_per_sec,
            r.erases,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s.push('\n');
    std::fs::write(path, s)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut results = Vec::new();
    if smoke {
        // A few seconds total: enough to catch harness rot, not enough to
        // be a meaningful measurement.
        run_micro(100_000, 32, 1, &mut results);
        run_fig5_cells(0.001, &mut results);
    } else {
        run_micro(1_500_000, 32, 3, &mut results);
        run_fig5_cells(0.005, &mut results);
    }
    write_json("BENCH_edm.json", &results).expect("writing BENCH_edm.json failed");
    println!("wrote BENCH_edm.json ({} entries)", results.len());
}

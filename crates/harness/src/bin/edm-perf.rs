//! edm-perf: tracked performance harness.
//!
//! Runs pinned workloads with wall-clock timing and appends the results
//! to `BENCH_edm.json`, so simulator throughput is tracked the same way
//! the paper's figures are:
//!
//! * `ftl_micro_*` — a skewed-overwrite microbenchmark through the SSD's
//!   byte interface (≥1M page writes at full size), run twice: once as
//!   page-sized (4 KiB) device calls, once as extent-sized span calls —
//!   the same batching the cluster OSD performs per object I/O. The two
//!   variants perform identical logical work (the span path is
//!   bit-identical by construction — the harness asserts the erase counts
//!   and wear stats match), so their ratio isolates the per-call overhead
//!   the span batching removes.
//! * `fig5_*` — one end-to-end cluster cell per trace class (harvard
//!   presets + the Fig. 3 random workload), timing the full
//!   synthesize → build → warm-up → replay pipeline.
//! * `snapshot_save` / `snapshot_restore` — encode/decode throughput of a
//!   real mid-run checkpoint (the `edm-snap` single-file format), with
//!   the round trip asserted byte-identical.
//!
//! `--smoke` shrinks every workload to a few seconds' worth for CI-style
//! sanity runs (`scripts/check.sh`); the JSON schema is identical.

use std::time::Instant;

use edm_cluster::{MigrationSchedule, SnapManifest};
use edm_harness::bench::{write_cells, BenchCell};
use edm_harness::runner::{run_cell, Cell, RunConfig};
use edm_harness::Scenario;
use edm_obs::NoopRecorder;
use edm_snap::SnapshotFile;
use edm_ssd::{Geometry, LatencyModel, Ssd, WearStats};

/// The microbenchmark's fixed geometry: 128 blocks × 32 pages, 8 % OP —
/// small enough that the mapping tables stay cache-resident, so the
/// measurement isolates per-call FTL overhead rather than DRAM misses.
fn micro_geometry() -> Geometry {
    Geometry {
        page_size: 4096,
        pages_per_block: 32,
        blocks: 128,
        over_provision_ppt: 80,
    }
}

/// Skewed extent-aligned overwrites: 90 % of extents land in the hot
/// tenth of the live range. Extent alignment keeps the page-by-page and
/// span variants on the exact same logical access sequence.
/// How the microbenchmark drives the SSD.
#[derive(Clone, Copy, PartialEq)]
enum MicroMode {
    /// Page-sized (4 KiB) device calls.
    PerPage,
    /// Extent-sized span calls (the cluster OSD's batching).
    Span,
    /// Span calls through the observability entry point with a no-op
    /// recorder — isolates the cost of the `&mut dyn Recorder` plumbing.
    SpanObsNoop,
}

fn ftl_micro(page_writes: u64, span_pages: u64, mode: MicroMode) -> (f64, u64, WearStats) {
    let g = micro_geometry();
    let mut ssd = Ssd::new(g, LatencyModel::PAPER);
    let ps = g.page_size;
    let live_extents = (g.exported_pages() * 11 / 20) / span_pages;
    let hot_extents = (live_extents / 10).max(1);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
    let started = Instant::now();
    // Fill the live range once, then hammer it with skewed overwrites.
    let mut written = 0u64;
    for e in 0..live_extents {
        write_extent(&mut ssd, e * span_pages * ps, span_pages, ps, mode);
        written += span_pages;
    }
    while written < page_writes {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = x >> 11;
        let extent = if r % 10 < 9 {
            r % hot_extents
        } else {
            r % live_extents
        };
        write_extent(&mut ssd, extent * span_pages * ps, span_pages, ps, mode);
        written += span_pages;
    }
    let wall = started.elapsed().as_secs_f64();
    ssd.check_invariants().expect("SSD invariants violated");
    (wall, written, ssd.wear().clone())
}

fn write_extent(ssd: &mut Ssd, offset: u64, pages: u64, page_size: u64, mode: MicroMode) {
    match mode {
        MicroMode::Span => {
            ssd.write(offset, pages * page_size)
                .expect("span write failed");
        }
        MicroMode::SpanObsNoop => {
            ssd.write_obs(offset, pages * page_size, &mut NoopRecorder)
                .expect("span write failed");
        }
        MicroMode::PerPage => {
            for p in 0..pages {
                ssd.write(offset + p * page_size, page_size)
                    .expect("page write failed");
            }
        }
    }
}

fn run_micro(
    page_writes: u64,
    span_pages: u64,
    reps: u32,
    obs_floor: f64,
    results: &mut Vec<BenchCell>,
) {
    // Best-of-N wall time: the workload is deterministic, so the fastest
    // repetition is the least-perturbed measurement of the same work. The
    // modes are interleaved within each repetition so machine-load drift
    // over the measurement window perturbs all three alike.
    const MODES: [MicroMode; 3] = [MicroMode::PerPage, MicroMode::Span, MicroMode::SpanObsNoop];
    let mut bests: [Option<(f64, u64, WearStats)>; 3] = [None, None, None];
    for _ in 0..reps {
        for (slot, &mode) in MODES.iter().enumerate() {
            let run = ftl_micro(page_writes, span_pages, mode);
            if bests[slot].as_ref().is_none_or(|b| run.0 < b.0) {
                bests[slot] = Some(run);
            }
        }
    }
    let mut bests = bests
        .into_iter()
        .map(|b| b.expect("at least one repetition"));
    let (page_wall, page_written, page_stats) = bests.next().unwrap();
    let (span_wall, span_written, span_stats) = bests.next().unwrap();
    let (obs_wall, obs_written, obs_stats) = bests.next().unwrap();
    assert_eq!(page_written, span_written);
    assert_eq!(obs_written, span_written);
    assert_eq!(
        page_stats, span_stats,
        "span and per-page variants diverged — determinism broken"
    );
    assert_eq!(
        obs_stats, span_stats,
        "obs and plain span variants diverged — recording is not read-only"
    );
    let page_ops = page_written as f64 / page_wall;
    let span_ops = span_written as f64 / span_wall;
    let obs_ops = obs_written as f64 / obs_wall;
    assert!(
        obs_ops >= span_ops * obs_floor,
        "no-op recorder overhead too high: {obs_ops:.0} pages/s with obs vs \
         {span_ops:.0} without (floor {obs_floor})"
    );
    results.push(BenchCell {
        name: "ftl_micro_per_page".into(),
        wall_ms: page_wall * 1e3,
        ops_per_sec: page_ops,
        erases: page_stats.block_erases,
    });
    results.push(BenchCell {
        name: "ftl_micro_span".into(),
        wall_ms: span_wall * 1e3,
        ops_per_sec: span_ops,
        erases: span_stats.block_erases,
    });
    results.push(BenchCell {
        name: "obs_overhead_noop".into(),
        wall_ms: obs_wall * 1e3,
        ops_per_sec: obs_ops,
        erases: obs_stats.block_erases,
    });
    println!(
        "ftl_micro: {page_written} page writes, per-page {:.0} pages/s, span {:.0} pages/s \
         ({:.2}x), {} erases",
        page_ops,
        span_ops,
        span_ops / page_ops,
        page_stats.block_erases
    );
    println!(
        "obs_overhead_noop: {:.0} pages/s ({:.3}x of span)",
        obs_ops,
        obs_ops / span_ops
    );
}

fn run_fig5_cells(scale: f64, results: &mut Vec<BenchCell>) {
    let cfg = RunConfig {
        scale,
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
        jobs: None,
    };
    for (trace, policy) in [
        ("home02", "EDM-HDF"),
        ("deasna", "EDM-CDF"),
        ("lair62", "CMT"),
        ("random", "Baseline"),
    ] {
        let cell = Cell::new(trace, policy, 8);
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        let report = run_cell(&cell, &cfg);
        let wall = started.elapsed().as_secs_f64();
        let ops = report.completed_ops as f64 / wall;
        println!(
            "fig5_{trace}_{policy}: {:.1} ms wall, {:.0} ops/s, {} erases",
            wall * 1e3,
            ops,
            report.aggregate_erases()
        );
        results.push(BenchCell {
            name: format!("fig5_{trace}_{policy}"),
            wall_ms: wall * 1e3,
            ops_per_sec: ops,
            erases: report.aggregate_erases(),
        });
    }
}

/// Times the snapshot format itself: `snapshot_save` re-encodes a real
/// mid-run checkpoint to disk (asserting the round trip is byte-identical
/// — the encoder is canonical), `snapshot_restore` parses and
/// CRC-verifies it back into sections. Best-of-N on a deterministic
/// input, throughput in snapshot bytes/s.
fn run_snapshot_cells(scale: f64, reps: u32, results: &mut Vec<BenchCell>) {
    let dir = std::env::temp_dir().join(format!("edm-perf-snap-{}", std::process::id()));
    let scenario = Scenario::parse(&format!(
        "trace deasna\nscale {scale}\nosds 8\npolicy EDM-HDF\nschedule every-tick\n"
    ))
    .expect("snapshot-cell scenario");
    scenario
        .run_with_obs_checkpointed(&mut NoopRecorder, Some((0, dir.clone())))
        .expect("snapshot-cell run failed");
    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .expect("checkpoint dir unreadable")
        .map(|e| e.expect("dir entry").path())
        .collect();
    snaps.sort();
    let path = snaps.last().expect("run produced no checkpoints").clone();
    let bytes = std::fs::read(&path).expect("checkpoint unreadable");
    let erases: u64 = SnapManifest::from_snapshot(
        &SnapshotFile::from_bytes(&bytes).expect("checkpoint does not parse"),
    )
    .expect("checkpoint has no manifest")
    .per_osd_erases
    .iter()
    .sum();

    let rewrite = dir.join("rewrite.snap");
    let mut save_wall = f64::INFINITY;
    for _ in 0..reps {
        let snap = SnapshotFile::from_bytes(&bytes).expect("checkpoint does not parse");
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        snap.write_to(&rewrite).expect("rewrite failed");
        save_wall = save_wall.min(started.elapsed().as_secs_f64());
        assert_eq!(
            std::fs::read(&rewrite).expect("rewrite unreadable"),
            bytes,
            "snapshot round trip is not byte-identical"
        );
    }
    // Restore is far below the OS timer's useful resolution for small
    // checkpoints, and a single timed call once reported a nonsense
    // tens-of-GB/s rate. Each repetition therefore loops the parse until
    // a wall-clock floor is reached and divides by the iteration count;
    // best-of-N over those honest per-call means.
    let restore_wall = best_of_floored(reps, 0.02, || {
        // Parsing alone only splits the byte stream; opening a reader per
        // section is what runs the CRC over every body, which is the work
        // a real restore pays before trusting the data.
        let reparsed = SnapshotFile::from_bytes(&bytes).expect("checkpoint does not parse");
        let names: Vec<String> = reparsed.section_names().map(String::from).collect();
        for name in &names {
            reparsed.reader(name).expect("section CRC mismatch");
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
    for (name, wall) in [
        ("snapshot_save", save_wall),
        ("snapshot_restore", restore_wall),
    ] {
        let bps = bytes.len() as f64 / wall;
        println!(
            "{name}: {:.3} ms for {} bytes ({:.1} MB/s)",
            wall * 1e3,
            bytes.len(),
            bps / 1e6
        );
        results.push(BenchCell {
            name: name.into(),
            wall_ms: wall * 1e3,
            ops_per_sec: bps,
            erases,
        });
    }
}

/// Best-of-`reps` mean wall time per call of `op`, where each repetition
/// loops `op` until `floor_s` seconds have elapsed. The floor keeps
/// sub-microsecond operations honest: a single call sits below the
/// timer's useful resolution and reports garbage rates.
fn best_of_floored(reps: u32, floor_s: f64, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut iters = 0u64;
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        loop {
            op();
            iters += 1;
            let elapsed = started.elapsed().as_secs_f64();
            if elapsed >= floor_s {
                best = best.min(elapsed / iters as f64);
                break;
            }
        }
    }
    best
}

/// Calendar-vs-heap event queue microbenchmark, shaped like the
/// simulator's hot loop: a steady population of pending events where each
/// pop schedules a successor a short, skewed distance into the future
/// (request/completion chains), so the calendar's rolling window stays
/// loaded the way a replay loads it. Both queues process the identical
/// sequence; the fold of popped entries is asserted equal, re-verifying
/// order equivalence while timing. `ops_per_sec` is pop+push pairs/s.
fn run_equeue_cells(events: u64, reps: u32, results: &mut Vec<BenchCell>) {
    use edm_cluster::equeue::{CalendarQueue, EventQueue, HeapQueue};

    fn drive<Q: EventQueue<u64>>(q: &mut Q, events: u64) -> u64 {
        let mut seq = 0u64;
        for i in 0..4096u64 {
            q.push(i % 97, seq, i);
            seq += 1;
        }
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut acc = 0u64;
        for _ in 0..events {
            let (at, _, v) = q.pop().expect("population is steady");
            acc = acc.wrapping_add(v.wrapping_mul(31).wrapping_add(at));
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 90 % short hops (completion chains), 10 % long (wear ticks).
            let delta = if (x >> 33) % 10 < 9 {
                (x >> 40) % 64 + 1
            } else {
                (x >> 40) % 4096 + 1
            };
            q.push(at + delta, seq, v);
            seq += 1;
        }
        acc
    }

    let mut heap_wall = f64::INFINITY;
    let mut cal_wall = f64::INFINITY;
    let mut heap_acc = 0u64;
    let mut cal_acc = 0u64;
    for _ in 0..reps {
        let mut q = HeapQueue::new();
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        heap_acc = drive(&mut q, events);
        heap_wall = heap_wall.min(started.elapsed().as_secs_f64());

        let mut q = CalendarQueue::new();
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        cal_acc = drive(&mut q, events);
        cal_wall = cal_wall.min(started.elapsed().as_secs_f64());
    }
    assert_eq!(
        heap_acc, cal_acc,
        "calendar and heap queues popped different sequences"
    );
    for (name, wall) in [
        ("event_queue_heap", heap_wall),
        ("event_queue_calendar", cal_wall),
    ] {
        println!(
            "{name}: {} events in {:.1} ms ({:.0} events/s)",
            events,
            wall * 1e3,
            events as f64 / wall
        );
        results.push(BenchCell {
            name: name.into(),
            wall_ms: wall * 1e3,
            ops_per_sec: events as f64 / wall,
            erases: 0,
        });
    }
    println!(
        "event_queue: calendar is {:.2}x of heap",
        heap_wall / cal_wall
    );
}

/// The datacenter-scale cells: one large cluster replayed sequentially
/// and group-sharded, digest-asserted identical (see the `scale`
/// experiment). `ops_per_sec` is replayed trace ops/s. Smoke runs use
/// the 16-OSD smoke shape under the same cell names; the tracked
/// numbers come from full runs of the 1024-OSD shape.
fn run_scale_cells(smoke: bool, results: &mut Vec<BenchCell>) {
    use edm_harness::experiments::scale;
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2) as u32;
    let cfg = if smoke {
        scale::ScaleConfig::smoke(0.002, shards)
    } else {
        scale::ScaleConfig::datacenter(0.02, shards)
    };
    let result = scale::run(&cfg);
    println!("{}", scale::render(&result));
    for (suffix, run) in ["", "_sharded"].iter().zip(&result.runs) {
        results.push(BenchCell {
            name: format!("scale_1024osd{suffix}"),
            wall_ms: run.wall_s * 1e3,
            ops_per_sec: run.report.completed_ops as f64 / run.wall_s,
            erases: run.report.aggregate_erases(),
        });
    }
}

/// Times a full workspace scan by the static analyzer. The auditor runs
/// on every `cargo test` and in `scripts/check.sh`, so its wall time is
/// part of the edit-compile-check loop and worth tracking like any
/// other hot path. `ops_per_sec` is files scanned per second.
fn run_audit_cell(reps: u32, results: &mut Vec<BenchCell>) {
    let cwd = std::env::current_dir().expect("cwd");
    let root = edm_audit::find_workspace_root(&cwd).expect("workspace root above cwd");
    let mut wall = f64::INFINITY;
    let mut scanned = 0usize;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        let outcome = edm_audit::audit_workspace(&root).expect("workspace scan failed");
        wall = wall.min(started.elapsed().as_secs_f64());
        assert!(
            outcome.is_clean(),
            "edm-audit found unsuppressed findings:\n{}",
            outcome.render_text()
        );
        scanned = outcome.files_scanned;
    }
    let fps = scanned as f64 / wall;
    println!(
        "audit_workspace: {:.3} ms for {scanned} files ({fps:.0} files/s)",
        wall * 1e3
    );
    results.push(BenchCell {
        name: "audit_workspace".into(),
        wall_ms: wall * 1e3,
        ops_per_sec: fps,
        erases: 0,
    });
}

/// Times only the auditor's semantic layer — symbol-graph construction
/// plus the interprocedural passes (det.taint fixpoint, lock-order
/// simulation, unit inference) — over the pre-loaded workspace sources.
/// Splitting this from `audit_workspace` keeps the cost of the new
/// analyses visible separately from lexing/parsing/rule I/O.
/// `ops_per_sec` is files analyzed per second.
fn run_audit_semantic_cell(reps: u32, results: &mut Vec<BenchCell>) {
    let cwd = std::env::current_dir().expect("cwd");
    let root = edm_audit::find_workspace_root(&cwd).expect("workspace root above cwd");
    // Loading (lex + parse) happens once, outside the timed region.
    let files = edm_audit::load_workspace_sources(&root).expect("workspace sources");
    let mut wall = f64::INFINITY;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        let findings = edm_audit::semantic_findings(&files);
        wall = wall.min(started.elapsed().as_secs_f64());
        // Raw findings here are pre-suppression; the workspace budget
        // allows a handful, but an explosion means a rule regressed.
        assert!(
            findings.len() < 50,
            "semantic pass exploded to {} raw findings",
            findings.len()
        );
    }
    let fps = files.len() as f64 / wall;
    println!(
        "audit_semantic: {:.3} ms for {} files ({fps:.0} files/s)",
        wall * 1e3,
        files.len()
    );
    results.push(BenchCell {
        name: "audit_semantic".into(),
        wall_ms: wall * 1e3,
        ops_per_sec: fps,
        erases: 0,
    });
}

/// Times the edm-serve ingest path: the daemon's `LiveWorld` fed the
/// dumped op stream of the fuzz-corpus live scenario, line by line,
/// through the same `apply_line` entry point the HTTP daemon drives —
/// parse, placement lookup, device I/O, wear ticks, and any migrations
/// they trigger, all in-process with a no-op recorder. `ops_per_sec` is
/// ingested op lines per second: the ceiling on what one daemon session
/// can absorb before the HTTP layer even matters.
fn run_serve_ingest_cell(scale: f64, reps: u32, results: &mut Vec<BenchCell>) {
    use edm_serve::{dump_ops, ApplyOutcome, LiveWorld};

    let scenario = || {
        Scenario::parse(&format!(
            "trace random\nscale {scale}\nschedule every-tick\nlambda 0.05\n"
        ))
        .expect("serve-cell scenario")
    };
    let ops = dump_ops(&scenario());
    let lines: Vec<&str> = ops.lines().collect();
    let mut wall = f64::INFINITY;
    let mut baseline = None;
    let mut erases = 0u64;
    for _ in 0..reps {
        let mut world = LiveWorld::new(scenario()).expect("live world rejected the scenario");
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        for line in &lines {
            match world.apply_line(line, &mut NoopRecorder) {
                ApplyOutcome::Applied { .. } => {}
                other => panic!("corpus op line rejected: {other:?}"),
            }
        }
        wall = wall.min(started.elapsed().as_secs_f64());
        let stats = world.stats();
        assert_eq!(stats.applied_ops, lines.len() as u64);
        assert!(stats.ticks > 0, "ingest never crossed a wear tick");
        assert!(stats.moved_objects > 0, "ingest never migrated");
        // Same stream, same world: repetitions must be bit-identical.
        match &baseline {
            None => baseline = Some(stats),
            Some(first) => assert_eq!(
                *first, stats,
                "serve ingest diverged across repetitions — determinism broken"
            ),
        }
        erases = (0..world.cluster().config.osds)
            .map(|o| {
                world
                    .cluster()
                    .osd(edm_cluster::OsdId(o))
                    .ssd()
                    .wear()
                    .block_erases
            })
            .sum();
    }
    let ops_s = lines.len() as f64 / wall;
    println!(
        "serve_ingest: {} op lines in {:.1} ms ({ops_s:.0} ops/s), {erases} erases",
        lines.len(),
        wall * 1e3
    );
    results.push(BenchCell {
        name: "serve_ingest".into(),
        wall_ms: wall * 1e3,
        ops_per_sec: ops_s,
        erases,
    });
}

/// Times the `edm-spec` conformance replay over the obs smoke journal
/// (the same shape `check.sh spec` verifies). `ops_per_sec` is journal
/// events verified per second — the per-event cost of the gate step.
fn run_spec_cell(reps: u32, results: &mut Vec<BenchCell>) {
    let s = Scenario::parse(
        "trace home02\nscale 0.004\nosds 8\ngroups 4\npolicy EDM-HDF\n\
         schedule midpoint\nforce true\n",
    )
    .expect("spec smoke scenario");
    let mut rec = edm_obs::MemoryRecorder::new(edm_obs::ObsLevel::Events);
    s.run_with_obs(&mut rec).expect("spec smoke run failed");
    let mut journal = Vec::new();
    rec.write_jsonl(&mut journal)
        .expect("journal render failed");
    let journal = String::from_utf8(journal).expect("journal is UTF-8");

    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
        let started = Instant::now();
        let report = edm_spec::verify_journal(&journal);
        wall = wall.min(started.elapsed().as_secs_f64());
        assert!(
            report.ok(),
            "smoke journal must conform: {:?}",
            report.violation
        );
        events = report.events;
    }
    let eps = events as f64 / wall;
    println!(
        "spec_check: {:.3} ms for {events} events ({eps:.0} events/s)",
        wall * 1e3
    );
    results.push(BenchCell {
        name: "spec_check".into(),
        wall_ms: wall * 1e3,
        ops_per_sec: eps,
        erases: 0,
    });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut results = Vec::new();
    if smoke {
        // A few seconds total: enough to catch harness rot, not enough to
        // be a meaningful measurement — hence the extra repetitions (each
        // ~2 ms) and the loose overhead floor.
        run_micro(100_000, 32, 5, 0.85, &mut results);
        run_fig5_cells(0.001, &mut results);
        run_equeue_cells(200_000, 3, &mut results);
        run_scale_cells(true, &mut results);
        run_snapshot_cells(0.001, 3, &mut results);
        run_serve_ingest_cell(0.002, 3, &mut results);
        run_audit_cell(3, &mut results);
        run_audit_semantic_cell(3, &mut results);
        run_spec_cell(3, &mut results);
    } else {
        // The 0.95 floor is a regression guard, not the measurement: the
        // recorded `obs_overhead_noop` cell is the actual overhead number
        // (at parity on quiet machines), while the floor only has to stay
        // clear of shared-container scheduling noise (~5 % tail even with
        // interleaved best-of-7).
        run_micro(1_500_000, 32, 7, 0.95, &mut results);
        run_fig5_cells(0.005, &mut results);
        run_equeue_cells(2_000_000, 5, &mut results);
        run_scale_cells(false, &mut results);
        run_snapshot_cells(0.005, 7, &mut results);
        run_serve_ingest_cell(0.01, 5, &mut results);
        run_audit_cell(7, &mut results);
        run_audit_semantic_cell(7, &mut results);
        run_spec_cell(7, &mut results);
    }
    // Merge-preserving: cells owned by other tools (edm-fuzz's
    // fuzz_throughput) survive a perf rewrite.
    write_cells("BENCH_edm.json", &results).expect("writing BENCH_edm.json failed");
    println!("wrote BENCH_edm.json ({} entries)", results.len());
}

#![forbid(unsafe_code)]
//! # edm-scenario — declarative, reproducible simulation runs
//!
//! The layer every front end shares: the line-oriented scenario text
//! format ([`Scenario`]), deterministic trace synthesis and cluster
//! construction from it, batch runs with optional wear-tick
//! checkpoints, snapshot-embedded metadata ([`SnapMeta`]) for
//! self-contained resume, and the determinism [`report_digest`] that
//! turns "two runs are bit-identical" into one comparable number.
//!
//! Historically part of `edm-harness`; split out so long-running hosts
//! (the `edm-serve` daemon) can build worlds from the same scenario
//! files without pulling in the experiment harness — and so the harness
//! can depend on those hosts for benchmarking without a dependency
//! cycle.

pub mod report;
pub mod scenario;

pub use report::{grouped, render_table, report_digest, signed_pct};
pub use scenario::{render_report, resume_snapshot, Scenario, SnapMeta};

//! Scenario files: declarative, reproducible simulation runs.
//!
//! A scenario is a small line-oriented text file (no external parser
//! dependencies) describing one run — workload, cluster, policy,
//! migration schedule, failures:
//!
//! ```text
//! # lair62 under EDM-HDF with a mid-run failure
//! trace lair62
//! scale 0.05
//! osds 16
//! policy EDM-HDF
//! schedule midpoint
//! lambda 0.10
//! force true
//! fail 2000000 3 rebuild
//! ```
//!
//! Unknown keys are rejected (typos should fail loudly, not silently run
//! a different experiment).

use std::path::{Path, PathBuf};

use edm_cluster::NoMigration;
use edm_cluster::{
    resume_trace_obs, run_trace_obs_keep, CheckpointConfig, ClientAffinity, Cluster, ClusterConfig,
    FailureSpec, MigrationSchedule, Migrator, OsdId, RunReport, SimOptions, SnapManifest,
};
use edm_core::{Assessor, Cmt, CmtConfig, EdmCdf, EdmConfig, EdmHdf};
use edm_snap::{SnapError, SnapReader, SnapWriter, SnapshotFile};
use edm_workload::harvard;
use edm_workload::synth::synthesize;
use edm_workload::{FileId, Trace};

/// A parsed scenario, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub trace: String,
    pub scale: f64,
    pub osds: u32,
    pub groups: u32,
    pub objects_per_file: u32,
    pub policy: String,
    pub schedule: MigrationSchedule,
    pub lambda: f64,
    pub force: bool,
    pub client_concurrency: Option<u32>,
    pub failures: Vec<FailureSpec>,
    /// Worker threads for group-sharded execution (0 = sequential).
    pub shards: u32,
    /// How trace users map onto closed-loop clients.
    pub affinity: ClientAffinity,
    /// Inode stride: every file id in the synthesized trace is multiplied
    /// by this factor, and every user is split into one virtual user per
    /// placement component (tenant locality — no user's requests span
    /// components). With `objects_per_file ≤ stride` and
    /// `groups % stride == 0` the cluster's placement then splits into
    /// `groups / stride` disjoint components, which is what makes
    /// group-sharded execution applicable to the hash-placed workloads
    /// (stride 1, the default, leaves the trace untouched).
    pub stride: u64,
    /// Plan-vetting engine for the EDM policies: the reference projection
    /// loop (default) or the `edm-model` closed-form fast path.
    pub assessor: Assessor,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            trace: "home02".into(),
            scale: 0.01,
            osds: 16,
            groups: 4,
            objects_per_file: 4,
            policy: "EDM-HDF".into(),
            schedule: MigrationSchedule::Midpoint,
            lambda: 0.10,
            force: true,
            client_concurrency: None,
            failures: Vec::new(),
            shards: 0,
            affinity: ClientAffinity::User,
            stride: 1,
            assessor: Assessor::Projection,
        }
    }
}

impl Scenario {
    /// Parses the scenario text format. Every line is `key value...`,
    /// `#` starts a comment.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut s = Scenario::default();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            // edm-audit: allow(panic.expect, "split_whitespace on a line checked non-empty always yields a token")
            let key = it.next().expect("non-empty line");
            let mut next = |what: &str| -> Result<&str, String> {
                it.next()
                    .ok_or_else(|| format!("line {}: missing value for {what}", no + 1))
            };
            match key {
                "trace" => s.trace = next("trace")?.to_string(),
                "scale" => {
                    s.scale = next("scale")?
                        .parse()
                        .map_err(|e| format!("line {}: bad scale: {e}", no + 1))?;
                    if !(s.scale > 0.0 && s.scale <= 1.0) {
                        return Err(format!("line {}: scale must be in (0, 1]", no + 1));
                    }
                }
                "osds" => {
                    s.osds = next("osds")?
                        .parse()
                        .map_err(|e| format!("line {}: bad osds: {e}", no + 1))?
                }
                "groups" => {
                    s.groups = next("groups")?
                        .parse()
                        .map_err(|e| format!("line {}: bad groups: {e}", no + 1))?
                }
                "objects_per_file" => {
                    s.objects_per_file = next("objects_per_file")?
                        .parse()
                        .map_err(|e| format!("line {}: bad objects_per_file: {e}", no + 1))?
                }
                "policy" => s.policy = next("policy")?.to_string(),
                "schedule" => {
                    s.schedule = match next("schedule")? {
                        "never" => MigrationSchedule::Never,
                        "midpoint" => MigrationSchedule::Midpoint,
                        "every-tick" => MigrationSchedule::EveryTick,
                        other => {
                            return Err(format!(
                                "line {}: unknown schedule {other:?} \
                                 (never | midpoint | every-tick)",
                                no + 1
                            ))
                        }
                    }
                }
                "lambda" => {
                    s.lambda = next("lambda")?
                        .parse()
                        .map_err(|e| format!("line {}: bad lambda: {e}", no + 1))?
                }
                "force" => {
                    s.force = next("force")?
                        .parse()
                        .map_err(|e| format!("line {}: bad force: {e}", no + 1))?
                }
                "client_concurrency" => {
                    s.client_concurrency = Some(
                        next("client_concurrency")?
                            .parse()
                            .map_err(|e| format!("line {}: bad client_concurrency: {e}", no + 1))?,
                    )
                }
                "shards" => {
                    s.shards = next("shards")?
                        .parse()
                        .map_err(|e| format!("line {}: bad shards: {e}", no + 1))?
                }
                "affinity" => {
                    s.affinity = match next("affinity")? {
                        "user" => ClientAffinity::User,
                        "component" => ClientAffinity::Component,
                        other => {
                            return Err(format!(
                                "line {}: unknown affinity {other:?} (user | component)",
                                no + 1
                            ))
                        }
                    }
                }
                "assessor" => {
                    let label = next("assessor")?;
                    s.assessor = Assessor::from_label(label).ok_or_else(|| {
                        format!(
                            "line {}: unknown assessor {label:?} (projection | model)",
                            no + 1
                        )
                    })?
                }
                "stride" => {
                    s.stride = next("stride")?
                        .parse()
                        .map_err(|e| format!("line {}: bad stride: {e}", no + 1))?;
                    if s.stride == 0 {
                        return Err(format!("line {}: stride must be at least 1", no + 1));
                    }
                }
                "fail" => {
                    let at_us = next("fail time")?
                        .parse()
                        .map_err(|e| format!("line {}: bad fail time: {e}", no + 1))?;
                    let osd = next("fail osd")?
                        .parse()
                        .map_err(|e| format!("line {}: bad fail osd: {e}", no + 1))?;
                    let rebuild = match it.next() {
                        None => false,
                        Some("rebuild") => true,
                        Some(other) => {
                            return Err(format!("line {}: unknown fail option {other:?}", no + 1))
                        }
                    };
                    s.failures.push(FailureSpec {
                        at_us,
                        osd: OsdId(osd),
                        rebuild,
                    });
                }
                other => return Err(format!("line {}: unknown key {other:?}", no + 1)),
            }
        }
        Ok(s)
    }

    /// Instantiates the named policy with this scenario's λ/force
    /// settings. Public so live hosts can build the same policy a batch
    /// run would.
    pub fn build_policy(&self) -> Result<Box<dyn Migrator>, String> {
        let edm = EdmConfig {
            lambda: self.lambda,
            force: self.force,
            assessor: self.assessor,
            ..EdmConfig::default()
        };
        Ok(match self.policy.as_str() {
            "Baseline" => Box::new(NoMigration),
            "CMT" => Box::new(Cmt::new(CmtConfig {
                lambda: self.lambda,
                force: self.force,
                ..CmtConfig::default()
            })),
            "EDM-HDF" => Box::new(EdmHdf::new(edm)),
            "EDM-CDF" => Box::new(EdmCdf::new(edm)),
            other => return Err(format!("unknown policy {other:?}")),
        })
    }

    /// Renders the scenario back to its text format, canonically.
    ///
    /// `parse(to_text(s)) == s` for every parseable scenario — this is
    /// what gets embedded in snapshots so a resumed run reconstructs the
    /// exact same workload and cluster without any side files.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("trace {}\n", self.trace));
        out.push_str(&format!("scale {}\n", self.scale));
        out.push_str(&format!("osds {}\n", self.osds));
        out.push_str(&format!("groups {}\n", self.groups));
        out.push_str(&format!("objects_per_file {}\n", self.objects_per_file));
        out.push_str(&format!("policy {}\n", self.policy));
        out.push_str(&format!(
            "schedule {}\n",
            match self.schedule {
                MigrationSchedule::Never => "never",
                MigrationSchedule::Midpoint => "midpoint",
                MigrationSchedule::EveryTick => "every-tick",
            }
        ));
        out.push_str(&format!("lambda {}\n", self.lambda));
        out.push_str(&format!("force {}\n", self.force));
        if let Some(cc) = self.client_concurrency {
            out.push_str(&format!("client_concurrency {cc}\n"));
        }
        // New keys are emitted only when off-default, so scenario text
        // embedded in old checkpoints keeps round-tripping unchanged.
        if self.shards != 0 {
            out.push_str(&format!("shards {}\n", self.shards));
        }
        if self.affinity != ClientAffinity::User {
            out.push_str("affinity component\n");
        }
        if self.stride != 1 {
            out.push_str(&format!("stride {}\n", self.stride));
        }
        if self.assessor != Assessor::Projection {
            out.push_str(&format!("assessor {}\n", self.assessor.label()));
        }
        for f in &self.failures {
            out.push_str(&format!("fail {} {}", f.at_us, f.osd.0));
            if f.rebuild {
                out.push_str(" rebuild");
            }
            out.push('\n');
        }
        out
    }

    /// Synthesizes the scenario's trace (deterministic: spec carries the
    /// seed, so every call yields a byte-identical trace), then applies
    /// the inode-stride transform.
    pub fn synth_trace(&self) -> Trace {
        let spec = if self.trace == "random" {
            harvard::random_spec()
        } else {
            harvard::spec(&self.trace)
        };
        let mut trace = synthesize(&spec.scaled(self.scale));
        if self.stride > 1 {
            trace.file_sizes = trace
                .file_sizes
                .iter()
                .map(|(&f, &size)| (FileId(f.0 * self.stride), size))
                .collect();
            // With groups divisible by the stride, original file f lands
            // in component f mod (groups/stride); splitting each user per
            // component keeps every (virtual) user inside one component.
            let ncomp = if (self.groups as u64).is_multiple_of(self.stride) {
                self.groups as u64 / self.stride
            } else {
                1
            };
            for r in &mut trace.records {
                if ncomp > 1 {
                    let comp = (r.file.0 % ncomp) as u32;
                    r.user = r.user * ncomp as u32 + comp;
                }
                r.file = FileId(r.file.0 * self.stride);
            }
        }
        trace
    }

    /// Builds the cluster for `trace` with the paper's sizing rules,
    /// scaled to this scenario. Public for the same reason as
    /// [`build_policy`](Self::build_policy).
    pub fn build_cluster(&self, trace: &Trace) -> Result<Cluster, String> {
        let mut config = ClusterConfig::paper(self.osds);
        config.groups = self.groups;
        config.objects_per_file = self.objects_per_file;
        if let Some(cc) = self.client_concurrency {
            config.client_concurrency = cc;
        }
        config.response_window_us =
            ((config.response_window_us as f64 * self.scale) as u64).max(50_000);
        config.wear_tick_us = ((config.wear_tick_us as f64 * self.scale) as u64).max(100_000);
        Cluster::build(config, trace)
    }

    /// Evaluates the group-sharding gates for this scenario without
    /// running it: synthesizes the trace, builds the cluster, and asks
    /// the engine what it would do. `edm-sim` prints the result as a
    /// greppable `shard-plan:` line; checkpointing (a CLI-level flag,
    /// not part of the scenario) additionally forces the sequential
    /// path and is reported separately by the caller.
    pub fn shard_decision(&self) -> Result<edm_cluster::ShardDecision, String> {
        let trace = self.synth_trace();
        let cluster = self.build_cluster(&trace)?;
        let policy = self.build_policy()?;
        Ok(edm_cluster::shard_decision(
            &cluster,
            &trace,
            policy.as_ref(),
            &SimOptions {
                schedule: self.schedule,
                failures: self.failures.clone(),
                shards: self.shards,
                affinity: self.affinity,
                ..SimOptions::default()
            },
        ))
    }

    /// The replay-shaping options of a batch run of this scenario
    /// (no checkpointing, no sharding). Live hosts pass these to the
    /// engine so their runs line up with the batch runs bit-for-bit.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            schedule: self.schedule,
            failures: self.failures.clone(),
            affinity: self.affinity,
            ..SimOptions::default()
        }
    }

    /// Runs the scenario end to end.
    pub fn run(&self) -> Result<RunReport, String> {
        self.run_with_obs(&mut edm_obs::NoopRecorder)
    }

    /// [`run`](Self::run) with an observability sink. Recording is
    /// read-only: the report is identical at every obs level.
    pub fn run_with_obs(&self, obs: &mut dyn edm_obs::Recorder) -> Result<RunReport, String> {
        self.run_with_obs_checkpointed(obs, None)
    }

    /// [`run_with_obs`](Self::run_with_obs), additionally handing back
    /// the final [`Cluster`] so callers — the fuzzer's differential
    /// oracles — can inspect end-of-run device and catalog state.
    pub fn run_with_obs_keep(
        &self,
        obs: &mut dyn edm_obs::Recorder,
    ) -> Result<(RunReport, Cluster), String> {
        self.run_with_obs_checkpointed_keep(obs, None)
    }

    /// [`run_with_obs`](Self::run_with_obs), optionally cutting periodic
    /// checkpoints (`every_us` of virtual time, written under `dir`).
    /// Each checkpoint embeds the scenario text and the trace fingerprint
    /// so [`resume_snapshot`] can rebuild the run from the file alone.
    pub fn run_with_obs_checkpointed(
        &self,
        obs: &mut dyn edm_obs::Recorder,
        checkpoint: Option<(u64, PathBuf)>,
    ) -> Result<RunReport, String> {
        self.run_with_obs_checkpointed_keep(obs, checkpoint)
            .map(|(report, _)| report)
    }

    /// [`run_with_obs_checkpointed`](Self::run_with_obs_checkpointed),
    /// additionally handing back the final [`Cluster`].
    pub fn run_with_obs_checkpointed_keep(
        &self,
        obs: &mut dyn edm_obs::Recorder,
        checkpoint: Option<(u64, PathBuf)>,
    ) -> Result<(RunReport, Cluster), String> {
        let trace = self.synth_trace();
        let cluster = self.build_cluster(&trace)?;
        let mut policy = self.build_policy()?;
        let checkpoint = checkpoint.map(|(every_us, dir)| CheckpointConfig {
            every_us,
            dir,
            meta: SnapMeta {
                scenario: self.to_text(),
                trace_fingerprint: trace.fingerprint(),
            }
            .encode(),
        });
        Ok(run_trace_obs_keep(
            cluster,
            &trace,
            policy.as_mut(),
            SimOptions {
                schedule: self.schedule,
                failures: self.failures.clone(),
                checkpoint,
                shards: self.shards,
                affinity: self.affinity,
            },
            obs,
        ))
    }
}

/// Harness metadata embedded in every checkpoint (`manifest.extra`): the
/// canonical scenario text plus the fingerprint of the synthesized trace,
/// so resume can re-synthesize the workload and prove it got the same one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapMeta {
    pub scenario: String,
    pub trace_fingerprint: u64,
}

impl SnapMeta {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_str(&self.scenario);
        w.put_u64(self.trace_fingerprint);
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<SnapMeta, SnapError> {
        let mut r = SnapReader::new(bytes);
        let scenario = r.take_string();
        let trace_fingerprint = r.take_u64();
        r.finish("snap-meta")?;
        Ok(SnapMeta {
            scenario,
            trace_fingerprint,
        })
    }
}

/// Resumes a checkpoint written by
/// [`Scenario::run_with_obs_checkpointed`]: reads the snapshot, rebuilds
/// the scenario and trace from the embedded metadata, verifies the trace
/// fingerprint, and drives the run to completion. Returns the scenario
/// alongside the report so callers can label their output.
pub fn resume_snapshot(
    path: &Path,
    obs: &mut dyn edm_obs::Recorder,
) -> Result<(Scenario, RunReport), String> {
    let snap = SnapshotFile::read_from(path)
        .map_err(|e| format!("{}: cannot read snapshot: {e}", path.display()))?;
    let manifest = SnapManifest::from_snapshot(&snap)
        .map_err(|e| format!("{}: bad manifest: {e}", path.display()))?;
    let meta = SnapMeta::decode(&manifest.extra)
        .map_err(|e| format!("{}: bad scenario metadata: {e}", path.display()))?;
    let scenario = Scenario::parse(&meta.scenario)
        .map_err(|e| format!("{}: embedded scenario: {e}", path.display()))?;
    let trace = scenario.synth_trace();
    if trace.fingerprint() != meta.trace_fingerprint {
        return Err(format!(
            "{}: re-synthesized trace fingerprint {:#018x} does not match \
             the checkpoint's {:#018x} — workload generator changed?",
            path.display(),
            trace.fingerprint(),
            meta.trace_fingerprint
        ));
    }
    let mut policy = scenario.build_policy()?;
    // The original run's replay-shaping options must be reproduced for
    // the rebuilt scripts to line up with the checkpointed cursors —
    // affinity in particular changes the user→client assignment. Sharding
    // is always off here: checkpointing already forces the sequential
    // path, and a resumed run continues it.
    let options = SimOptions {
        schedule: scenario.schedule,
        failures: scenario.failures.clone(),
        affinity: scenario.affinity,
        ..SimOptions::default()
    };
    let report = resume_trace_obs(&snap, &trace, policy.as_mut(), options, obs)
        .map_err(|e| format!("{}: resume failed: {e}", path.display()))?;
    Ok((scenario, report))
}

/// Renders a run summary for the CLI.
pub fn render_report(r: &RunReport) -> String {
    let (p50, p95, p99) = r.response_percentiles_us;
    let mut out = format!(
        "policy {} on {} ({} OSDs)\n\
         completed ops      {}\n\
         throughput         {:.0} ops/s\n\
         mean response      {:.0} us (p50 {} / p95 {} / p99 {})\n\
         aggregate erases   {}\n\
         erase RSD          {:.3}\n\
         moved objects      {} ({:.2}%) over {} rounds\n\
         remap entries      {}\n",
        r.policy,
        r.trace,
        r.osds,
        r.completed_ops,
        r.throughput_ops_per_sec(),
        r.mean_response_us,
        p50,
        p95,
        p99,
        r.aggregate_erases(),
        r.erase_rsd(),
        r.moved_objects,
        r.moved_fraction() * 100.0,
        r.migrations_triggered,
        r.remap_entries,
    );
    if !r.failed_osds.is_empty() {
        out.push_str(&format!(
            "failed OSDs        {:?}\ndegraded ops       {}\nlost ops           {}\nrebuilt objects    {}\n",
            r.failed_osds, r.degraded_ops, r.lost_ops, r.rebuilt_objects
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_scenario() {
        let s = Scenario::parse(
            "# comment\n\
             trace lair62\n\
             scale 0.004\n\
             osds 8\n\
             policy EDM-CDF\n\
             schedule every-tick\n\
             lambda 0.2\n\
             force false\n\
             client_concurrency 16\n\
             fail 5000 3 rebuild\n\
             fail 9000 4\n",
        )
        .unwrap();
        assert_eq!(s.trace, "lair62");
        assert_eq!(s.osds, 8);
        assert_eq!(s.policy, "EDM-CDF");
        assert_eq!(s.schedule, MigrationSchedule::EveryTick);
        assert!((s.lambda - 0.2).abs() < 1e-12);
        assert!(!s.force);
        assert_eq!(s.client_concurrency, Some(16));
        assert_eq!(s.failures.len(), 2);
        assert!(s.failures[0].rebuild);
        assert!(!s.failures[1].rebuild);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Scenario::parse("frobnicate 3").is_err());
        assert!(Scenario::parse("scale 2.0").is_err());
        assert!(Scenario::parse("schedule sometimes").is_err());
        assert!(Scenario::parse("fail 100").is_err());
        assert!(Scenario::parse("fail 100 2 explode").is_err());
        assert!(Scenario::parse("trace").is_err());
    }

    #[test]
    fn empty_scenario_is_the_default() {
        assert_eq!(Scenario::parse("").unwrap(), Scenario::default());
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let s = Scenario::parse(
            "trace deasna\nscale 0.002\nosds 8\npolicy EDM-HDF\nfail 2000 1 rebuild\n",
        )
        .unwrap();
        let r = s.run().unwrap();
        assert!(r.completed_ops > 0);
        assert_eq!(r.failed_osds, vec![1]);
        let text = render_report(&r);
        assert!(text.contains("EDM-HDF"));
        assert!(text.contains("failed OSDs"));
    }

    #[test]
    fn unknown_policy_is_reported() {
        let s = Scenario::parse("policy FancyPolicy\nscale 0.001\n").unwrap();
        assert!(s.run().unwrap_err().contains("unknown policy"));
    }

    #[test]
    fn parse_sharding_keys() {
        let s = Scenario::parse("shards 4\naffinity component\nstride 8\n").unwrap();
        assert_eq!(s.shards, 4);
        assert_eq!(s.affinity, ClientAffinity::Component);
        assert_eq!(s.stride, 8);
        let s = Scenario::parse("affinity user\n").unwrap();
        assert_eq!(s.affinity, ClientAffinity::User);
        assert!(Scenario::parse("stride 0").is_err());
        assert!(Scenario::parse("affinity sideways").is_err());
        assert!(Scenario::parse("shards many").is_err());
    }

    #[test]
    fn sharding_keys_round_trip() {
        let s = Scenario {
            shards: 2,
            affinity: ClientAffinity::Component,
            stride: 4,
            ..Scenario::default()
        };
        assert_eq!(Scenario::parse(&s.to_text()).unwrap(), s);
        // Defaults stay off the wire, so text embedded in old
        // checkpoints is reproduced byte-for-byte.
        let d = Scenario::default();
        let text = d.to_text();
        assert!(!text.contains("shards"));
        assert!(!text.contains("affinity"));
        assert!(!text.contains("stride"));
        assert_eq!(Scenario::parse(&text).unwrap(), d);
    }

    #[test]
    fn assessor_key_parses_and_round_trips() {
        let s = Scenario::parse("assessor model\n").unwrap();
        assert_eq!(s.assessor, Assessor::Model);
        assert_eq!(Scenario::parse(&s.to_text()).unwrap(), s);
        let s = Scenario::parse("assessor projection\n").unwrap();
        assert_eq!(s.assessor, Assessor::Projection);
        assert!(Scenario::parse("assessor simulator\n").is_err());
        // The default stays off the wire for old-checkpoint stability.
        assert!(!Scenario::default().to_text().contains("assessor"));
    }

    /// The closed-form assessor is a pure plan-vetting swap: on a run
    /// where the reference and model engines agree on every published
    /// plan, the cluster report is identical.
    #[test]
    fn model_assessor_matches_projection_end_to_end() {
        let base = "trace home02\nscale 0.002\nosds 8\ngroups 4\npolicy EDM-HDF\n";
        let reference = Scenario::parse(base).unwrap().run().unwrap();
        let fast = Scenario::parse(&format!("{base}assessor model\n"))
            .unwrap()
            .run()
            .unwrap();
        for (a, b) in reference.per_osd.iter().zip(fast.per_osd.iter()) {
            assert_eq!(a.erase_count, b.erase_count);
            assert_eq!(a.write_pages, b.write_pages);
            assert_eq!(a.gc_page_moves, b.gc_page_moves);
        }
        assert_eq!(reference.completed_ops, fast.completed_ops);
    }
}

//! ASCII table/series rendering for experiment output, plus the
//! determinism digest used to compare runs bit-for-bit.

use edm_cluster::RunReport;
use edm_snap::SnapWriter;

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes every field of a [`RunReport`] — floats by bit pattern — into a
/// single value. Two runs are bit-identical iff their digests match, so
/// this is the "resume equals uninterrupted" acceptance check in one
/// number (printed by `edm-sim`, asserted by `scripts/check.sh`).
pub fn report_digest(r: &RunReport) -> u64 {
    let mut w = SnapWriter::new();
    w.put_str(&r.trace);
    w.put_str(&r.policy);
    w.put_u32(r.osds);
    w.put_u64(r.completed_ops);
    w.put_u64(r.duration_us);
    w.put_f64(r.mean_response_us);
    w.put_u64(r.response_percentiles_us.0);
    w.put_u64(r.response_percentiles_us.1);
    w.put_u64(r.response_percentiles_us.2);
    w.put_u64(r.response_windows.len() as u64);
    for win in &r.response_windows {
        w.put_u64(win.start_us);
        w.put_u64(win.completed_ops);
        w.put_f64(win.mean_response_us);
    }
    w.put_u64(r.per_osd.len() as u64);
    for o in &r.per_osd {
        w.put_u32(o.osd);
        w.put_u64(o.erase_count);
        w.put_u64(o.write_pages);
        w.put_u64(o.gc_page_moves);
        w.put_f64(o.utilization);
        w.put_u64(o.busy_us);
        w.put_u64(o.peak_queue_depth);
    }
    w.put_u64(r.moved_objects);
    w.put_u64(r.remap_entries);
    w.put_u64(r.total_objects);
    w.put_u64(r.migrations_triggered);
    w.put_u64(r.failed_osds.len() as u64);
    for f in &r.failed_osds {
        w.put_u32(*f);
    }
    w.put_u64(r.degraded_ops);
    w.put_u64(r.lost_ops);
    w.put_u64(r.rebuilt_objects);
    fnv1a(&w.into_bytes())
}

/// Renders a table with a header row; columns sized to content.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a ratio as a signed percentage ("+12.3%" / "-4.0%").
pub fn signed_pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Formats a float with thousands grouping for counts.
pub fn grouped(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|--"));
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn signed_pct_formats_both_signs() {
        assert_eq!(signed_pct(0.123), "+12.3%");
        assert_eq!(signed_pct(-0.04), "-4.0%");
        assert_eq!(signed_pct(0.0), "+0.0%");
    }

    #[test]
    fn grouped_inserts_commas() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1000), "1,000");
        assert_eq!(grouped(1234567), "1,234,567");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn report_digest_is_stable_and_field_sensitive() {
        let r = crate::Scenario::parse("trace deasna\nscale 0.001\nosds 8\n")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report_digest(&r), report_digest(&r.clone()));
        let mut tweaked = r.clone();
        tweaked.completed_ops += 1;
        assert_ne!(report_digest(&r), report_digest(&tweaked));
        let mut tweaked = r.clone();
        tweaked.mean_response_us += 1e-9;
        assert_ne!(report_digest(&r), report_digest(&tweaked));
        let mut tweaked = r.clone();
        tweaked.per_osd[0].erase_count ^= 1;
        assert_ne!(report_digest(&r), report_digest(&tweaked));
    }
}

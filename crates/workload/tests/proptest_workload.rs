//! Property-based tests of the workload substrate: the synthesizer hits
//! its targets for arbitrary specs, the trace text format round-trips,
//! client assignment partitions, and the transforms preserve structure.

use edm_workload::replay::assign_clients;
use edm_workload::synth::synthesize;
use edm_workload::trace::Trace;
use edm_workload::transform::{dilate, merge, truncate};
use edm_workload::{FileSizeModel, SkewProfile, WorkloadSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..60,     // file_cnt
        0u64..400,    // write_cnt
        0u64..400,    // read_cnt
        1u64..40_000, // avg_write_size
        1u64..40_000, // avg_read_size
        0.0f64..1.5,  // write_theta
        0.0f64..1.5,  // read_theta
        0.0f64..=1.0, // hot_overlap
        0.0f64..=1.0, // size_coupling
        1u32..5,      // phases
        1u32..20,     // users
        any::<u64>(), // seed
    )
        .prop_filter_map("need at least one op", |t| {
            let (files, w, r, aw, ar, wt, rt, ho, sc, ph, users, seed) = t;
            if w + r == 0 {
                return None;
            }
            Some(WorkloadSpec {
                name: "prop".into(),
                file_cnt: files,
                write_cnt: w,
                avg_write_size: aw,
                read_cnt: r,
                avg_read_size: ar,
                skew: SkewProfile {
                    write_theta: wt,
                    read_theta: rt,
                    hot_overlap: ho,
                    size_coupling: sc,
                    phases: ph,
                },
                file_sizes: FileSizeModel::DEFAULT,
                users,
                seed,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Synthesis hits the exact op counts, validates, and is a pure
    /// function of the spec, for any admissible spec.
    #[test]
    fn synthesis_hits_targets_for_any_spec(spec in spec_strategy()) {
        let t = synthesize(&spec);
        let s = t.stats();
        prop_assert_eq!(s.write_cnt, spec.write_cnt);
        prop_assert_eq!(s.read_cnt, spec.read_cnt);
        prop_assert_eq!(s.file_cnt, spec.file_cnt);
        prop_assert_eq!(s.open_cnt, s.close_cnt);
        t.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(synthesize(&spec), t, "synthesis must be deterministic");
    }

    /// The trace text format round-trips losslessly for any synthesized
    /// trace.
    #[test]
    fn text_format_roundtrips(spec in spec_strategy()) {
        let t = synthesize(&spec);
        let parsed = Trace::from_text(&t.to_text()).map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed, t);
    }

    /// Client assignment partitions the records for any client count.
    #[test]
    fn assignment_partitions(spec in spec_strategy(), clients in 1u32..12) {
        let t = synthesize(&spec);
        let scripts = assign_clients(&t, clients);
        let total: usize = scripts.iter().map(|s| s.record_indices.len()).sum();
        prop_assert_eq!(total, t.records.len());
        let mut seen = vec![false; t.records.len()];
        for s in &scripts {
            for &i in &s.record_indices {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    /// merge conserves records and footprint; dilate preserves counts and
    /// validity; truncate yields a valid prefix.
    #[test]
    fn transforms_preserve_structure(
        a in spec_strategy(),
        b in spec_strategy(),
        factor in 0.1f64..10.0,
        keep in 0usize..200,
    ) {
        let (ta, tb) = (synthesize(&a), synthesize(&b));
        let m = merge("mix", &[&ta, &tb]);
        prop_assert_eq!(m.records.len(), ta.records.len() + tb.records.len());
        prop_assert_eq!(
            m.footprint_bytes(),
            ta.footprint_bytes() + tb.footprint_bytes()
        );
        m.validate().map_err(TestCaseError::fail)?;

        let d = dilate(&m, factor);
        prop_assert_eq!(d.records.len(), m.records.len());
        d.validate().map_err(TestCaseError::fail)?;

        let cut = truncate(&m, keep);
        prop_assert_eq!(cut.records.len(), keep.min(m.records.len()));
        cut.validate().map_err(TestCaseError::fail)?;
    }
}

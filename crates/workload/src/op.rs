//! Trace operations.
//!
//! The paper extracts "the write, read, open and close operations from the
//! NFS trace file" (§V.A); these four operation kinds are what a trace
//! record carries.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Identifier of a file in a trace (maps to an inode number in the
/// cluster; the paper places objects by `inode mod n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// One file operation, as extracted from an NFS trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileOp {
    Open,
    Close,
    /// Read `len` bytes at byte `offset`.
    Read {
        offset: u64,
        len: u64,
    },
    /// Write `len` bytes at byte `offset`.
    Write {
        offset: u64,
        len: u64,
    },
}

impl FileOp {
    pub fn is_read(&self) -> bool {
        matches!(self, FileOp::Read { .. })
    }

    pub fn is_write(&self) -> bool {
        matches!(self, FileOp::Write { .. })
    }

    /// Payload bytes moved by this op (0 for open/close).
    pub fn len(&self) -> u64 {
        match self {
            FileOp::Read { len, .. } | FileOp::Write { len, .. } => *len,
            _ => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short mnemonic used by the text trace format.
    pub fn kind_str(&self) -> &'static str {
        match self {
            FileOp::Open => "open",
            FileOp::Close => "close",
            FileOp::Read { .. } => "read",
            FileOp::Write { .. } => "write",
        }
    }
}

/// One record of a trace: a timestamped operation by one user on one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time in microseconds from trace start. Records in a trace
    /// are sorted by this field.
    pub time_us: u64,
    /// Originating user; the replayer assigns users' records to clients
    /// ("all trace records of multiple users are evenly assigned to each
    /// client", §V.A).
    pub user: u32,
    pub file: FileId,
    pub op: FileOp,
}

impl Snapshot for FileId {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut SnapReader) -> Self {
        FileId(r.take_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(FileOp::Read { offset: 0, len: 1 }.is_read());
        assert!(!FileOp::Read { offset: 0, len: 1 }.is_write());
        assert!(FileOp::Write { offset: 0, len: 1 }.is_write());
        assert!(!FileOp::Open.is_read());
        assert!(!FileOp::Close.is_write());
    }

    #[test]
    fn op_len_only_for_data_ops() {
        assert_eq!(FileOp::Open.len(), 0);
        assert_eq!(FileOp::Close.len(), 0);
        assert!(FileOp::Open.is_empty());
        assert_eq!(FileOp::Read { offset: 4, len: 17 }.len(), 17);
        assert_eq!(
            FileOp::Write {
                offset: 0,
                len: 8192
            }
            .len(),
            8192
        );
    }

    #[test]
    fn kind_strings_are_distinct() {
        let kinds = [
            FileOp::Open.kind_str(),
            FileOp::Close.kind_str(),
            FileOp::Read { offset: 0, len: 0 }.kind_str(),
            FileOp::Write { offset: 0, len: 0 }.kind_str(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), 4);
    }
}

#![forbid(unsafe_code)]
//! # edm-workload — trace substrate for the EDM reproduction
//!
//! The paper (Ou et al., IPDPS 2014) evaluates EDM by replaying seven NFS
//! traces from Harvard storage servers (Table 1) plus a synthetic `random`
//! workload (Fig. 3). This crate provides:
//!
//! * [`op`] / [`trace`] — NFS-style trace records (open/close/read/write)
//!   with a line-oriented text format;
//! * [`zipf`] — exact Zipf sampling for skewed popularity;
//! * [`spec`] — workload specifications: the Table 1 aggregates plus skew
//!   knobs;
//! * [`synth`] — a deterministic synthesizer that hits the Table 1 counts
//!   exactly and reproduces the locality the Harvard traces exhibit;
//! * [`harvard`] — the seven named presets, the `random` workload, and a
//!   parser for real Harvard-style trace text;
//! * [`replay`] — per-user assignment of records to load-generating
//!   clients (§V.A).
//!
//! ```
//! use edm_workload::harvard;
//! use edm_workload::synth::synthesize;
//!
//! // A 0.1 %-scale home02 for a quick experiment:
//! let spec = harvard::spec("home02").scaled(0.001);
//! let trace = synthesize(&spec);
//! assert_eq!(trace.stats().write_cnt, spec.write_cnt);
//! ```

pub mod analysis;
pub mod harvard;
pub mod op;
pub mod replay;
pub mod spec;
pub mod synth;
pub mod trace;
pub mod transform;
pub mod zipf;

pub use analysis::{profile, WorkloadProfile};
pub use op::{FileId, FileOp, TraceRecord};
pub use spec::{FileSizeModel, SkewProfile, WorkloadSpec};
pub use trace::{Trace, TraceStats};
pub use zipf::Zipf;

//! Trace synthesizer.
//!
//! We do not have the raw Harvard NFS traces the paper replays, so this
//! module generates synthetic traces that (a) hit the aggregate numbers of
//! Table 1 exactly for op counts and within a small tolerance for mean
//! sizes, and (b) reproduce the properties EDM exploits: Zipf-skewed file
//! popularity with distinct (partially overlapping) read-hot and write-hot
//! sets, session-based temporal locality, sequential runs inside sessions
//! (spatial locality), and a heavily skewed file-size distribution.
//! See DESIGN.md §2 for the substitution rationale.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::op::{FileId, FileOp, TraceRecord};
use crate::spec::WorkloadSpec;
use crate::trace::Trace;
use crate::zipf::Zipf;

/// Mean simulated gap between consecutive trace records, µs.
const MEAN_GAP_US: u64 = 1_000;

/// Generates the trace described by `spec`. Deterministic: the same spec
/// (including its seed) always yields the identical trace.
pub fn synthesize(spec: &WorkloadSpec) -> Trace {
    // edm-audit: allow(panic.expect, "constructor contract: callers pass validated workload specs")
    spec.validate().expect("invalid workload spec");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut trace = Trace::new(spec.name.clone());

    // Requests are sized uniformly in [avg/2, 3·avg/2]; files must be able
    // to hold the largest possible request.
    let max_req = (spec.avg_write_size.max(spec.avg_read_size)) * 3 / 2 + 1;
    let min_size = spec.file_sizes.min_bytes.max(max_req);
    let max_size = spec.file_sizes.max_bytes.max(min_size);

    // Log-uniform file sizes: heavily skewed, few large files hold most
    // bytes.
    for f in 0..spec.file_cnt {
        let size = log_uniform(&mut rng, min_size, max_size);
        trace.file_sizes.insert(FileId(f), size);
    }

    // Popularity: rank r of the write ordering maps to file write_perm[r].
    // The read ordering shares a `hot_overlap` fraction of assignments and
    // re-shuffles the rest, giving partially distinct read-hot and
    // write-hot sets (the asymmetry HDF exploits, §I).
    let n = spec.file_cnt as usize;
    let mut write_perm: Vec<u64> = (0..spec.file_cnt).collect();
    write_perm.shuffle(&mut rng);
    let mut read_perm = write_perm.clone();
    let reshuffled = ((1.0 - spec.skew.hot_overlap) * n as f64).round() as usize;
    if reshuffled > 1 {
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(&mut rng);
        let chosen = &positions[..reshuffled];
        let mut vals: Vec<u64> = chosen.iter().map(|&p| read_perm[p]).collect();
        vals.shuffle(&mut rng);
        for (&p, &v) in chosen.iter().zip(&vals) {
            read_perm[p] = v;
        }
    }

    let write_zipf = Zipf::new(n, spec.skew.write_theta);
    let read_zipf = Zipf::new(n, spec.skew.read_theta);

    // Sessions on larger files run longer (more blocks to touch), which
    // couples a server's storage utilization to its I/O intensity — the
    // correlation §II of the paper observes ("servers with larger disk
    // usage ratio tend to have more write requests sent to them", §V.C).
    let geo_mean_size = (trace
        .file_sizes
        .values()
        .map(|&s| (s.max(1) as f64).ln())
        .sum::<f64>()
        / n as f64)
        .exp();
    let coupling = spec.skew.size_coupling;
    let size_factor = move |size: u64| -> f64 {
        if coupling == 0.0 {
            return 1.0;
        }
        (size as f64 / geo_mean_size).powf(coupling).clamp(0.5, 4.0)
    };

    let mut remaining_w = spec.write_cnt;
    let mut remaining_r = spec.read_cnt;
    let mut clock_us: u64 = 0;
    // Sequential cursor per file so sessions continue where the last one
    // on the same file stopped (spatial locality).
    let mut cursors: Vec<u64> = vec![0; n];

    // Temporal phases: the hot set drifts by rotating the popularity
    // permutations every `total_ops / phases` emitted data ops — the
    // temporal locality Definition 1's decay is built to follow.
    let total_ops = spec.write_cnt + spec.read_cnt;
    let phase_len = total_ops.div_ceil(spec.skew.phases as u64).max(1);
    let phase_rotation = n / spec.skew.phases.max(1) as usize;

    while remaining_w + remaining_r > 0 {
        let emitted = total_ops - remaining_w - remaining_r;
        let phase = (emitted / phase_len) as usize;
        let rotate = |rank: usize| (rank + phase * phase_rotation) % n;
        let total = (remaining_w + remaining_r) as f64;
        let is_write = rng.gen::<f64>() < remaining_w as f64 / total;
        let (zipf, perm, avg, remaining): (&Zipf, &Vec<u64>, u64, &mut u64) = if is_write {
            (
                &write_zipf,
                &write_perm,
                spec.avg_write_size,
                &mut remaining_w,
            )
        } else {
            (&read_zipf, &read_perm, spec.avg_read_size, &mut remaining_r)
        };
        let file_idx = perm[rotate(zipf.sample(&mut rng))] as usize;
        let file = FileId(file_idx as u64);
        let size = trace.file_sizes[&file];
        let user = rng.gen_range(0..spec.users);
        let base_len = rng.gen_range(1..=(2.0 * WorkloadSpec::MEAN_SESSION_OPS) as u64 - 1);
        let session_len = ((base_len as f64 * size_factor(size)).round() as u64)
            .max(1)
            .min(*remaining);

        clock_us += exp_gap(&mut rng, MEAN_GAP_US);
        trace.records.push(TraceRecord {
            time_us: clock_us,
            user,
            file,
            op: FileOp::Open,
        });
        // Each session starts at a fresh position in the file and runs
        // sequentially from there (NFS clients read/write runs at
        // arbitrary offsets); the inter-session jumps interleave data
        // from many sessions in the same flash blocks, which is what
        // fragments GC victims on real SSDs.
        cursors[file_idx] = if size > 1 { rng.gen_range(0..size) } else { 0 };
        for _ in 0..session_len {
            let len = rng.gen_range(avg / 2..=avg * 3 / 2).clamp(1, size);
            let mut offset = cursors[file_idx];
            if offset + len > size {
                offset = 0;
            }
            cursors[file_idx] = offset + len;
            clock_us += exp_gap(&mut rng, MEAN_GAP_US);
            let op = if is_write {
                FileOp::Write { offset, len }
            } else {
                FileOp::Read { offset, len }
            };
            trace.records.push(TraceRecord {
                time_us: clock_us,
                user,
                file,
                op,
            });
        }
        *remaining -= session_len;
        clock_us += exp_gap(&mut rng, MEAN_GAP_US);
        trace.records.push(TraceRecord {
            time_us: clock_us,
            user,
            file,
            op: FileOp::Close,
        });
    }

    debug_assert!(trace.validate().is_ok());
    trace
}

/// Log-uniformly distributed integer in `[min, max]`.
fn log_uniform(rng: &mut StdRng, min: u64, max: u64) -> u64 {
    if min == max {
        return min;
    }
    let (lo, hi) = ((min as f64).ln(), (max as f64).ln());
    let v = (rng.gen::<f64>() * (hi - lo) + lo).exp();
    (v as u64).clamp(min, max)
}

/// Exponentially distributed gap with the given mean, at least 1 µs.
fn exp_gap(rng: &mut StdRng, mean_us: u64) -> u64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((-u.ln()) * mean_us as f64).max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileSizeModel, SkewProfile};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "synthetic".into(),
            file_cnt: 200,
            write_cnt: 5_000,
            avg_write_size: 8_048,
            read_cnt: 12_000,
            avg_read_size: 8_191,
            skew: SkewProfile::MODERATE,
            file_sizes: FileSizeModel::DEFAULT,
            users: 16,
            seed: 42,
        }
    }

    #[test]
    fn counts_match_spec_exactly() {
        let t = synthesize(&spec());
        let s = t.stats();
        assert_eq!(s.file_cnt, 200);
        assert_eq!(s.write_cnt, 5_000);
        assert_eq!(s.read_cnt, 12_000);
        assert!(s.open_cnt > 0);
        assert_eq!(s.open_cnt, s.close_cnt);
    }

    #[test]
    fn mean_sizes_match_within_tolerance() {
        let t = synthesize(&spec());
        let s = t.stats();
        let werr = (s.avg_write_size as f64 - 8_048.0).abs() / 8_048.0;
        let rerr = (s.avg_read_size as f64 - 8_191.0).abs() / 8_191.0;
        assert!(werr < 0.02, "write size error {werr}");
        assert!(rerr < 0.02, "read size error {rerr}");
    }

    #[test]
    fn trace_is_wellformed() {
        synthesize(&spec()).validate().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(synthesize(&spec()), synthesize(&spec()));
        let mut other = spec();
        other.seed += 1;
        assert_ne!(synthesize(&spec()), synthesize(&other));
    }

    #[test]
    fn writes_are_zipf_skewed() {
        let t = synthesize(&spec());
        let mut per_file = std::collections::HashMap::new();
        for r in &t.records {
            if r.op.is_write() {
                *per_file.entry(r.file).or_insert(0u64) += 1;
            }
        }
        let mut counts: Vec<u64> = per_file.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10 % of written files should carry well over 10 % of writes.
        let top = counts.iter().take(counts.len() / 10).sum::<u64>();
        let all: u64 = counts.iter().sum();
        assert!(
            top as f64 / all as f64 > 0.3,
            "top decile carried only {top}/{all} writes"
        );
    }

    #[test]
    fn uniform_skew_is_not_skewed() {
        let mut s = spec();
        s.skew = SkewProfile::UNIFORM;
        let t = synthesize(&s);
        let mut per_file = std::collections::HashMap::new();
        for r in &t.records {
            if r.op.is_write() {
                *per_file.entry(r.file).or_insert(0u64) += 1;
            }
        }
        let mut counts: Vec<u64> = per_file.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.iter().take(counts.len() / 10).sum::<u64>();
        let all: u64 = counts.iter().sum();
        let share = top as f64 / all as f64;
        assert!(share < 0.25, "uniform workload showed skew: {share}");
    }

    #[test]
    fn hot_overlap_controls_rw_correlation() {
        // For a given overlap, measure |top-20 write-hot ∩ top-20 read-hot|.
        let intersection = |overlap: f64| -> usize {
            let mut s = spec();
            s.skew.hot_overlap = overlap;
            s.skew.write_theta = 1.2;
            s.skew.read_theta = 1.2;
            let t = synthesize(&s);
            let top20 = |want_write: bool| -> std::collections::HashSet<FileId> {
                let mut m = std::collections::HashMap::new();
                for r in &t.records {
                    if r.op.is_write() == want_write
                        && !matches!(r.op, FileOp::Open | FileOp::Close)
                    {
                        *m.entry(r.file).or_insert(0u64) += 1;
                    }
                }
                let mut v: Vec<(FileId, u64)> = m.into_iter().collect();
                v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
                v.into_iter().take(20).map(|(f, _)| f).collect()
            };
            top20(true).intersection(&top20(false)).count()
        };
        assert!(
            intersection(1.0) > intersection(0.0),
            "full overlap must correlate hot sets more than zero overlap"
        );
    }

    #[test]
    fn phases_rotate_the_hot_set() {
        let hot_file = |phases: u32, half: u8| -> FileId {
            let mut sp = spec();
            sp.skew.phases = phases;
            sp.skew.write_theta = 1.3;
            // Size coupling stretches sessions of large files, which can
            // blur which file collects the most write records; this test
            // is about phase rotation, so isolate it.
            sp.skew.size_coupling = 0.0;
            let t = synthesize(&sp);
            // Count writes per file in the chosen half of the record
            // stream.
            let mid = t.records.len() / 2;
            let slice = if half == 0 {
                &t.records[..mid]
            } else {
                &t.records[mid..]
            };
            let mut m = std::collections::HashMap::new();
            for r in slice {
                if r.op.is_write() {
                    *m.entry(r.file).or_insert(0u64) += 1;
                }
            }
            m.into_iter()
                .max_by_key(|&(_, c)| c)
                .expect("writes exist")
                .0
        };
        // Stationary popularity: the same file tops both halves.
        assert_eq!(hot_file(1, 0), hot_file(1, 1));
        // Two phases: the hot set rotates between halves.
        assert_ne!(hot_file(2, 0), hot_file(2, 1));
    }

    #[test]
    fn phased_spec_still_hits_counts() {
        let mut sp = spec();
        sp.skew.phases = 4;
        let t = synthesize(&sp);
        assert_eq!(t.stats().write_cnt, sp.write_cnt);
        assert_eq!(t.stats().read_cnt, sp.read_cnt);
        t.validate().unwrap();
    }

    #[test]
    fn timestamps_strictly_ordered_and_positive() {
        let t = synthesize(&spec());
        assert!(t.records[0].time_us > 0);
        for w in t.records.windows(2) {
            assert!(w[0].time_us <= w[1].time_us);
        }
    }

    #[test]
    fn tiny_spec_still_works() {
        let s = WorkloadSpec {
            name: "tiny".into(),
            file_cnt: 1,
            write_cnt: 1,
            avg_write_size: 4096,
            read_cnt: 0,
            avg_read_size: 0,
            skew: SkewProfile::UNIFORM,
            file_sizes: FileSizeModel::DEFAULT,
            users: 1,
            seed: 0,
        };
        let t = synthesize(&s);
        assert_eq!(t.stats().write_cnt, 1);
        t.validate().unwrap();
    }
}

//! Zipf-distributed sampling.
//!
//! Real-world storage workloads are highly skewed — "a large body of the
//! writes might go to a small part of the data set" (§II, citing \[16\]).
//! The synthesizer models file popularity with a Zipf law: the k-th most
//! popular of `n` items is drawn with probability ∝ 1/k^θ.

use rand::Rng;

/// A Zipf(n, θ) sampler over ranks `0..n` (rank 0 is the most popular).
///
/// Uses a precomputed cumulative table with binary search: O(n) memory,
/// O(log n) per sample, exact (no rejection), deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cdf[k] = P(rank <= k); cdf[n-1] == 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `theta`.
    ///
    /// `theta == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        // edm-audit: allow(panic.expect, "constructor asserts n > 0, so the cdf is non-empty")
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            // edm-audit: allow(panic.slice_index, "constructor asserts n > 0, so the cdf is non-empty")
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12, "rank {k}");
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = Zipf::new(1000, 0.6);
        let steep = Zipf::new(1000, 1.4);
        assert!(steep.pmf(0) > mild.pmf(0));
        assert!(steep.pmf(999) < mild.pmf(999));
    }

    #[test]
    fn samples_follow_rank_order() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head strictly dominates the tail.
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 5 * counts[49].max(1));
        // Empirical head frequency tracks the pmf within 10 %.
        let head = counts[0] as f64 / 50_000.0;
        assert!((head - z.pmf(0)).abs() / z.pmf(0) < 0.1);
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}

//! Trace transformations: merge, time-dilate, and truncate — the
//! operations trace-driven studies need when composing workloads (e.g.
//! overlaying two tenant workloads on one cluster, or compressing a trace
//! to stress the wear monitor's per-minute window).

use std::collections::BTreeMap;

use crate::op::{FileId, TraceRecord};
use crate::trace::Trace;

/// Merges traces into one: file ids and users are renumbered per source
/// so the namespaces stay disjoint, records are interleaved by timestamp.
pub fn merge(name: impl Into<String>, traces: &[&Trace]) -> Trace {
    let mut out = Trace::new(name);
    let mut file_base = 0u64;
    let mut user_base = 0u32;
    let mut relabeled: Vec<TraceRecord> = Vec::new();
    for t in traces {
        // Dense per-source remap keeps ids compact.
        let remap: BTreeMap<FileId, FileId> = t
            .file_sizes
            .keys()
            .enumerate()
            .map(|(i, &f)| (f, FileId(file_base + i as u64)))
            .collect();
        for (&old, &size) in &t.file_sizes {
            out.file_sizes.insert(remap[&old], size);
        }
        let max_user = t.records.iter().map(|r| r.user).max().unwrap_or(0);
        for r in &t.records {
            relabeled.push(TraceRecord {
                time_us: r.time_us,
                user: user_base + r.user,
                file: remap[&r.file],
                op: r.op,
            });
        }
        file_base += t.file_sizes.len() as u64;
        user_base += max_user + 1;
    }
    relabeled.sort_by_key(|r| r.time_us);
    out.records = relabeled;
    out
}

/// Scales every timestamp by `factor` (0.5 = twice as fast). Ordering is
/// preserved; equal timestamps may collapse under heavy compression.
pub fn dilate(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "factor must be positive"
    );
    let mut out = trace.clone();
    for r in &mut out.records {
        r.time_us = (r.time_us as f64 * factor) as u64;
    }
    out
}

/// Keeps only the first `count` records (plus every referenced file's
/// size entry; unreferenced files are dropped so the footprint matches).
pub fn truncate(trace: &Trace, count: usize) -> Trace {
    let mut out = Trace::new(trace.name.clone());
    out.records = trace.records.iter().take(count).copied().collect();
    let referenced: std::collections::BTreeSet<FileId> =
        out.records.iter().map(|r| r.file).collect();
    out.file_sizes = trace
        .file_sizes
        .iter()
        .filter(|(f, _)| referenced.contains(f))
        .map(|(&f, &s)| (f, s))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvard;
    use crate::synth::synthesize;

    fn small(name: &str) -> Trace {
        synthesize(&{
            let mut s = harvard::spec(name).scaled(0.001);
            s.name = name.into();
            s
        })
    }

    #[test]
    fn merge_preserves_all_records_and_separates_namespaces() {
        let a = small("deasna");
        let b = small("home04");
        let m = merge("mix", &[&a, &b]);
        assert_eq!(m.records.len(), a.records.len() + b.records.len());
        assert_eq!(m.file_sizes.len(), a.file_sizes.len() + b.file_sizes.len());
        m.validate().unwrap();
        // Users from different sources never collide.
        let max_user_a = a.records.iter().map(|r| r.user).max().unwrap();
        let b_users: std::collections::HashSet<u32> = m.records[a.records.len()..]
            .iter()
            .map(|r| r.user)
            .collect();
        // (After sorting the split point isn't exact; check globally: the
        // merged trace has strictly more distinct users than either.)
        let distinct: std::collections::HashSet<u32> = m.records.iter().map(|r| r.user).collect();
        assert!(distinct.len() > max_user_a as usize);
        let _ = b_users;
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = small("deasna");
        let b = small("home04");
        let m = merge("mix", &[&a, &b]);
        for w in m.records.windows(2) {
            assert!(w[0].time_us <= w[1].time_us);
        }
    }

    #[test]
    fn dilate_scales_duration() {
        let t = small("deasna");
        let fast = dilate(&t, 0.5);
        let last = t.records.last().unwrap().time_us;
        let fast_last = fast.records.last().unwrap().time_us;
        assert_eq!(fast_last, (last as f64 * 0.5) as u64);
        fast.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn dilate_rejects_zero() {
        dilate(&small("deasna"), 0.0);
    }

    #[test]
    fn truncate_keeps_prefix_and_prunes_files() {
        let t = small("home04");
        let cut = truncate(&t, 10);
        assert_eq!(cut.records.len(), 10);
        cut.validate().unwrap();
        // Only referenced files remain.
        for r in &cut.records {
            assert!(cut.file_sizes.contains_key(&r.file));
        }
        assert!(cut.file_sizes.len() <= t.file_sizes.len());
    }

    #[test]
    fn truncate_beyond_len_is_identity_on_records() {
        let t = small("deasna");
        let cut = truncate(&t, usize::MAX);
        assert_eq!(cut.records.len(), t.records.len());
    }

    #[test]
    fn merged_trace_replays_in_the_cluster() {
        // End-to-end sanity: a merged multi-tenant trace is a valid
        // cluster workload (exercised further in the integration suite).
        let a = small("deasna");
        let b = small("lair62");
        let m = merge("tenants", &[&a, &b]);
        assert!(m.stats().write_cnt > 0);
        assert_eq!(
            m.stats().write_cnt,
            a.stats().write_cnt + b.stats().write_cnt
        );
    }
}

//! Workload analysis: the skew and locality statistics that determine how
//! much EDM can help (§II ties wear variance to write skew; §III.B.4's
//! HDF/CDF split rides on the divergence between the read-hot and
//! write-hot sets).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::op::{FileId, FileOp};
use crate::trace::Trace;

/// Skew and locality profile measured from a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Gini coefficient of per-file write bytes (0 = uniform, →1 = all
    /// writes on one file).
    pub write_gini: f64,
    /// Gini coefficient of per-file read bytes.
    pub read_gini: f64,
    /// Share of write bytes carried by the top 10 % of written files.
    pub write_top_decile_share: f64,
    /// Share of read bytes carried by the top 10 % of read files.
    pub read_top_decile_share: f64,
    /// Jaccard overlap between the top-10 % write-hot and read-hot file
    /// sets — low overlap is what makes HDF ≠ CDF worthwhile.
    pub hot_set_overlap: f64,
    /// Pearson correlation between file size and file write bytes — the
    /// §II coupling between storage utilization and write intensity.
    pub size_write_correlation: f64,
    /// Fraction of data ops that continue sequentially from the previous
    /// op on the same file (spatial locality).
    pub sequential_fraction: f64,
}

/// Per-file byte tallies.
fn per_file_bytes(trace: &Trace, want_write: bool) -> HashMap<FileId, u64> {
    let mut m = HashMap::new();
    for r in &trace.records {
        let add = match r.op {
            FileOp::Write { len, .. } if want_write => len,
            FileOp::Read { len, .. } if !want_write => len,
            _ => continue,
        };
        *m.entry(r.file).or_insert(0) += add;
    }
    m
}

/// Gini coefficient of a set of non-negative values (0 for uniform or
/// empty input).
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<u64> = values.to_vec();
    v.sort_unstable();
    let n = v.len() as f64;
    let total: u64 = v.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n  with 1-based ranks on sorted x.
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Share of the total carried by the largest `fraction` of values.
pub fn top_share(values: &[u64], fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction));
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<u64> = values.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = v.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((v.len() as f64 * fraction).ceil() as usize).max(1);
    v[..k].iter().sum::<u64>() as f64 / total as f64
}

/// Jaccard similarity of the top-`fraction` hot sets of two tallies.
fn hot_overlap(a: &HashMap<FileId, u64>, b: &HashMap<FileId, u64>, fraction: f64) -> f64 {
    let top = |m: &HashMap<FileId, u64>| -> std::collections::HashSet<FileId> {
        // edm-audit: allow(det.map_iter, "entries are sorted (count desc, id asc) immediately after collection")
        let mut v: Vec<(FileId, u64)> = m.iter().map(|(&f, &x)| (f, x)).collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        let k = ((v.len() as f64 * fraction).ceil() as usize).max(1);
        v.into_iter().take(k).map(|(f, _)| f).collect()
    };
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (ta, tb) = (top(a), top(b));
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Pearson correlation of two equal-length samples (0 when degenerate).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Measures the full profile of a trace.
pub fn profile(trace: &Trace) -> WorkloadProfile {
    let writes = per_file_bytes(trace, true);
    let reads = per_file_bytes(trace, false);
    let wv: Vec<u64> = writes.values().copied().collect();
    let rv: Vec<u64> = reads.values().copied().collect();

    // Size ↔ write-bytes correlation over files that were written.
    let (sizes, wbytes): (Vec<f64>, Vec<f64>) = writes
        .iter()
        .map(|(f, &w)| (trace.file_sizes[f] as f64, w as f64))
        .unzip();

    // Sequentiality: op continues where the previous op on the file ended.
    let mut cursor: HashMap<FileId, u64> = HashMap::new();
    let mut seq = 0u64;
    let mut data_ops = 0u64;
    for r in &trace.records {
        if let FileOp::Read { offset, len } | FileOp::Write { offset, len } = r.op {
            data_ops += 1;
            if cursor.get(&r.file) == Some(&offset) {
                seq += 1;
            }
            cursor.insert(r.file, offset + len);
        }
    }

    WorkloadProfile {
        write_gini: gini(&wv),
        read_gini: gini(&rv),
        write_top_decile_share: top_share(&wv, 0.1),
        read_top_decile_share: top_share(&rv, 0.1),
        hot_set_overlap: hot_overlap(&writes, &reads, 0.1),
        size_write_correlation: pearson(&sizes, &wbytes),
        sequential_fraction: if data_ops == 0 {
            0.0
        } else {
            seq as f64 / data_ops as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvard;
    use crate::synth::synthesize;

    #[test]
    fn gini_bounds_and_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5]), 0.0);
        assert!(gini(&[1, 1, 1, 1]).abs() < 1e-12);
        // All mass on one of four: G = (n-1)/n = 0.75.
        assert!((gini(&[0, 0, 0, 8]) - 0.75).abs() < 1e-12);
        let skewed = gini(&[1, 2, 4, 100]);
        assert!(skewed > 0.5 && skewed < 1.0);
    }

    #[test]
    fn top_share_examples() {
        assert_eq!(top_share(&[], 0.1), 0.0);
        assert!((top_share(&[10, 1, 1, 1, 1, 1, 1, 1, 1, 1], 0.1) - 10.0 / 19.0).abs() < 1e-12);
        assert_eq!(top_share(&[0, 0], 0.5), 0.0);
    }

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn skewed_trace_profiles_as_skewed() {
        let t = synthesize(&harvard::spec("home02").scaled(0.01));
        let p = profile(&t);
        assert!(p.write_gini > 0.5, "home02 writes should be skewed: {p:?}");
        assert!(
            p.write_top_decile_share > 0.3,
            "top decile carries the head: {p:?}"
        );
        // Size coupling is on for the Harvard presets.
        assert!(p.size_write_correlation > 0.1, "{p:?}");
        // Sessions are sequential inside.
        assert!(p.sequential_fraction > 0.3, "{p:?}");
    }

    #[test]
    fn uniform_trace_profiles_as_uniform() {
        let t = synthesize(&harvard::random_spec().scaled(0.01));
        let p = profile(&t);
        let s = synthesize(&harvard::spec("lair62").scaled(0.01));
        let ps = profile(&s);
        assert!(
            p.write_gini < ps.write_gini,
            "random {p:?} must be flatter than lair62 {ps:?}"
        );
        assert!(p.write_top_decile_share < ps.write_top_decile_share);
    }

    #[test]
    fn hot_overlap_reflects_spec_knob() {
        let mut high = harvard::spec("deasna").scaled(0.01);
        high.skew.hot_overlap = 1.0;
        let mut low = high.clone();
        low.skew.hot_overlap = 0.0;
        low.seed ^= 1;
        let ph = profile(&synthesize(&high));
        let pl = profile(&synthesize(&low));
        assert!(
            ph.hot_set_overlap > pl.hot_set_overlap,
            "overlap knob should move the measured overlap: {} vs {}",
            ph.hot_set_overlap,
            pl.hot_set_overlap
        );
    }
}

//! Client assignment for trace replay.
//!
//! The paper replays each trace from multiple load-generating clients:
//! "all trace records of multiple users are evenly assigned to each
//! client" (§V.A). This module partitions a trace's records by user onto a
//! fixed number of clients, preserving per-user record order.

use crate::trace::Trace;

/// The records of one replay client, as indices into `trace.records`,
/// in replay order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientScript {
    pub client: u32,
    /// Indices into the trace's record vector, ascending.
    pub record_indices: Vec<usize>,
}

/// Partitions the trace's records across `clients` replayers: users are
/// assigned to clients round-robin in order of appearance, and each client
/// replays its users' records in trace order.
///
/// # Panics
/// Panics if `clients == 0`.
pub fn assign_clients(trace: &Trace, clients: u32) -> Vec<ClientScript> {
    assert!(clients > 0, "need at least one client");
    let mut user_to_client = std::collections::HashMap::new();
    let mut next = 0u32;
    let mut scripts: Vec<ClientScript> = (0..clients)
        .map(|c| ClientScript {
            client: c,
            record_indices: Vec::new(),
        })
        .collect();
    for (i, r) in trace.records.iter().enumerate() {
        let c = *user_to_client.entry(r.user).or_insert_with(|| {
            let c = next;
            next = (next + 1) % clients;
            c
        });
        scripts[c as usize].record_indices.push(i);
    }
    scripts
}

/// Spread metric of an assignment: max client record count divided by the
/// mean. 1.0 is perfectly even.
pub fn assignment_imbalance(scripts: &[ClientScript]) -> f64 {
    let counts: Vec<usize> = scripts.iter().map(|s| s.record_indices.len()).collect();
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    // edm-audit: allow(panic.expect, "guarded by the is_empty early-return above")
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvard;
    use crate::synth::synthesize;

    fn small_trace() -> Trace {
        synthesize(&harvard::spec("deasna").scaled(0.002))
    }

    #[test]
    fn every_record_assigned_exactly_once() {
        let t = small_trace();
        let scripts = assign_clients(&t, 8);
        let mut seen = vec![false; t.records.len()];
        for s in &scripts {
            for &i in &s.record_indices {
                assert!(!seen[i], "record {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "record left unassigned");
    }

    #[test]
    fn per_client_order_is_trace_order() {
        let t = small_trace();
        for s in assign_clients(&t, 4) {
            for w in s.record_indices.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn same_user_stays_on_same_client() {
        let t = small_trace();
        let scripts = assign_clients(&t, 4);
        let mut user_client = std::collections::HashMap::new();
        for s in &scripts {
            for &i in &s.record_indices {
                let u = t.records[i].user;
                let prev = user_client.insert(u, s.client);
                if let Some(prev) = prev {
                    assert_eq!(prev, s.client, "user {u} split across clients");
                }
            }
        }
    }

    #[test]
    fn assignment_is_roughly_even() {
        let t = small_trace();
        let scripts = assign_clients(&t, 8);
        let imb = assignment_imbalance(&scripts);
        assert!(imb < 2.0, "imbalance {imb}");
    }

    #[test]
    fn single_client_gets_everything() {
        let t = small_trace();
        let scripts = assign_clients(&t, 1);
        assert_eq!(scripts.len(), 1);
        assert_eq!(scripts[0].record_indices.len(), t.records.len());
        assert!((assignment_imbalance(&scripts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_empty_scripts() {
        let t = Trace::new("empty");
        let scripts = assign_clients(&t, 3);
        assert!(scripts.iter().all(|s| s.record_indices.is_empty()));
        assert_eq!(assignment_imbalance(&scripts), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        assign_clients(&Trace::new("x"), 0);
    }
}

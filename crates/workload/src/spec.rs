//! Workload specifications.
//!
//! A [`WorkloadSpec`] pins the aggregate characteristics of Table 1 (file
//! count, read/write counts, mean request sizes) and adds the skew knobs
//! that the Harvard traces exhibit but the table does not quantify: Zipf
//! popularity exponents, the overlap between the read-hot and write-hot
//! file sets, and the file-size distribution.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Skew profile of a workload: how concentrated accesses are and how much
/// the read-hot and write-hot sets overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewProfile {
    /// Zipf exponent of write popularity over files. Higher ⇒ writes
    /// concentrate on fewer files ⇒ more wear variance across SSDs (§II).
    pub write_theta: f64,
    /// Zipf exponent of read popularity over files.
    pub read_theta: f64,
    /// Fraction of the popularity ranking shared between the read and
    /// write orderings, in [0, 1]. 1.0 means the same files are hot for
    /// both; 0.0 means independent hot sets.
    pub hot_overlap: f64,
    /// Exponent coupling session length to file size: sessions on a file
    /// of size `s` are scaled by `(s / geometric-mean-size)^size_coupling`.
    /// 0 disables the coupling; 0.5 reproduces the correlation §II of the
    /// paper observes between a server's storage utilization and its I/O
    /// intensity.
    pub size_coupling: f64,
    /// Number of temporal phases: the popularity rankings rotate at each
    /// phase boundary, so the hot set drifts over time — the temporal
    /// locality that motivates the exponential decay of Definition 1.
    /// 1 = stationary popularity.
    pub phases: u32,
}

impl SkewProfile {
    /// A moderate default resembling departmental NFS workloads.
    pub const MODERATE: SkewProfile = SkewProfile {
        write_theta: 0.9,
        read_theta: 0.8,
        hot_overlap: 0.5,
        size_coupling: 0.5,
        phases: 1,
    };

    /// No skew at all: the `random` workload of Fig. 3 ("a random accessing
    /// workload, each request size ranging from 4KB to 16KB").
    pub const UNIFORM: SkewProfile = SkewProfile {
        write_theta: 0.0,
        read_theta: 0.0,
        hot_overlap: 1.0,
        size_coupling: 0.0,
        phases: 1,
    };

    pub fn validate(&self) -> Result<(), String> {
        if !(self.write_theta.is_finite() && self.write_theta >= 0.0) {
            return Err("write_theta must be finite and >= 0".into());
        }
        if !(self.read_theta.is_finite() && self.read_theta >= 0.0) {
            return Err("read_theta must be finite and >= 0".into());
        }
        if !(0.0..=1.0).contains(&self.hot_overlap) {
            return Err("hot_overlap must be in [0, 1]".into());
        }
        if !(self.size_coupling.is_finite() && (0.0..=2.0).contains(&self.size_coupling)) {
            return Err("size_coupling must be in [0, 2]".into());
        }
        if self.phases == 0 {
            return Err("phases must be at least 1".into());
        }
        Ok(())
    }
}

/// File-size distribution: log-uniform between `min_bytes` and `max_bytes`
/// — "heavily skewed object size distribution" (§II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileSizeModel {
    pub min_bytes: u64,
    pub max_bytes: u64,
}

impl FileSizeModel {
    pub const DEFAULT: FileSizeModel = FileSizeModel {
        min_bytes: 4 * 1024,
        max_bytes: 4 * 1024 * 1024,
    };

    pub fn validate(&self) -> Result<(), String> {
        if self.min_bytes == 0 || self.min_bytes > self.max_bytes {
            return Err("need 0 < min_bytes <= max_bytes".into());
        }
        Ok(())
    }
}

/// Full specification of one synthetic workload (one row of Table 1 plus
/// skew knobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Trace name, e.g. `home02`.
    pub name: String,
    /// Number of distinct files (Table 1 "file cnt").
    pub file_cnt: u64,
    /// Number of write records (Table 1 "write cnt").
    pub write_cnt: u64,
    /// Mean write size in bytes (Table 1 "average write size").
    pub avg_write_size: u64,
    /// Number of read records (Table 1 "read cnt").
    pub read_cnt: u64,
    /// Mean read size in bytes (Table 1 "average read size").
    pub avg_read_size: u64,
    /// Skew knobs (not in Table 1; documented per trace in `harvard`).
    pub skew: SkewProfile,
    pub file_sizes: FileSizeModel,
    /// Number of distinct trace users (drives client assignment).
    pub users: u32,
    /// RNG seed: the whole trace is a pure function of the spec.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Mean ops per session burst during synthesis.
    pub const MEAN_SESSION_OPS: f64 = 6.0;

    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("workload needs a name".into());
        }
        if self.file_cnt == 0 {
            return Err("file_cnt must be positive".into());
        }
        if self.write_cnt + self.read_cnt == 0 {
            return Err("workload must contain at least one data op".into());
        }
        if self.write_cnt > 0 && self.avg_write_size == 0 {
            return Err("avg_write_size must be positive when writes exist".into());
        }
        if self.read_cnt > 0 && self.avg_read_size == 0 {
            return Err("avg_read_size must be positive when reads exist".into());
        }
        if self.users == 0 {
            return Err("need at least one user".into());
        }
        self.skew.validate()?;
        self.file_sizes.validate()?;
        Ok(())
    }

    /// Scales the op and file counts by `factor` (for fast tests and for
    /// Criterion benches that cannot afford full-size traces), keeping the
    /// mean sizes and skew intact. Factor must be in (0, 1].
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor in (0,1]");
        let scale = |x: u64| ((x as f64 * factor).round() as u64).max(1);
        WorkloadSpec {
            name: self.name.clone(),
            file_cnt: scale(self.file_cnt),
            write_cnt: scale(self.write_cnt),
            read_cnt: scale(self.read_cnt),
            ..self.clone()
        }
    }

    /// Total payload bytes this workload will read plus write (expected).
    pub fn expected_bytes(&self) -> u64 {
        self.write_cnt * self.avg_write_size + self.read_cnt * self.avg_read_size
    }
}

impl Snapshot for SkewProfile {
    fn save(&self, w: &mut SnapWriter) {
        w.put_f64(self.write_theta);
        w.put_f64(self.read_theta);
        w.put_f64(self.hot_overlap);
        w.put_f64(self.size_coupling);
        w.put_u32(self.phases);
    }
    fn load(r: &mut SnapReader) -> Self {
        SkewProfile {
            write_theta: r.take_f64(),
            read_theta: r.take_f64(),
            hot_overlap: r.take_f64(),
            size_coupling: r.take_f64(),
            phases: r.take_u32(),
        }
    }
}

impl Snapshot for FileSizeModel {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.min_bytes);
        w.put_u64(self.max_bytes);
    }
    fn load(r: &mut SnapReader) -> Self {
        FileSizeModel {
            min_bytes: r.take_u64(),
            max_bytes: r.take_u64(),
        }
    }
}

impl Snapshot for WorkloadSpec {
    /// The spec (including its seed) is enough to regenerate the entire
    /// trace deterministically, so a snapshot records it instead of the
    /// trace body; synthesis consumes the seeded RNG completely, so "every
    /// RNG position" reduces to this value.
    fn save(&self, w: &mut SnapWriter) {
        self.name.save(w);
        w.put_u64(self.file_cnt);
        w.put_u64(self.write_cnt);
        w.put_u64(self.avg_write_size);
        w.put_u64(self.read_cnt);
        w.put_u64(self.avg_read_size);
        self.skew.save(w);
        self.file_sizes.save(w);
        w.put_u32(self.users);
        w.put_u64(self.seed);
    }
    fn load(r: &mut SnapReader) -> Self {
        let spec = WorkloadSpec {
            name: String::load(r),
            file_cnt: r.take_u64(),
            write_cnt: r.take_u64(),
            avg_write_size: r.take_u64(),
            read_cnt: r.take_u64(),
            avg_read_size: r.take_u64(),
            skew: SkewProfile::load(r),
            file_sizes: FileSizeModel::load(r),
            users: r.take_u32(),
            seed: r.take_u64(),
        };
        if !r.failed() {
            if let Err(e) = spec.validate() {
                r.corrupt(format!("workload spec: {e}"));
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSpec {
        WorkloadSpec {
            name: "t".into(),
            file_cnt: 100,
            write_cnt: 1000,
            avg_write_size: 8000,
            read_cnt: 2000,
            avg_read_size: 8192,
            skew: SkewProfile::MODERATE,
            file_sizes: FileSizeModel::DEFAULT,
            users: 8,
            seed: 1,
        }
    }

    #[test]
    fn valid_spec_passes() {
        base().validate().unwrap();
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = base();
        s.file_cnt = 0;
        assert!(s.validate().is_err());

        let mut s = base();
        s.write_cnt = 0;
        s.read_cnt = 0;
        assert!(s.validate().is_err());

        let mut s = base();
        s.avg_write_size = 0;
        assert!(s.validate().is_err());

        let mut s = base();
        s.skew.hot_overlap = 1.5;
        assert!(s.validate().is_err());

        let mut s = base();
        s.file_sizes.min_bytes = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn write_only_spec_is_valid() {
        let mut s = base();
        s.read_cnt = 0;
        s.avg_read_size = 0;
        s.validate().unwrap();
    }

    #[test]
    fn scaled_preserves_shape() {
        let s = base().scaled(0.1);
        assert_eq!(s.file_cnt, 10);
        assert_eq!(s.write_cnt, 100);
        assert_eq!(s.read_cnt, 200);
        assert_eq!(s.avg_write_size, 8000);
        s.validate().unwrap();
    }

    #[test]
    fn scaled_never_hits_zero() {
        let s = base().scaled(0.000001);
        assert!(s.file_cnt >= 1);
        assert!(s.write_cnt >= 1);
        s.validate().unwrap();
    }

    #[test]
    fn expected_bytes_combines_reads_and_writes() {
        let s = base();
        assert_eq!(s.expected_bytes(), 1000 * 8000 + 2000 * 8192);
    }
}

//! The trace container: an ordered sequence of [`TraceRecord`]s plus the
//! per-file sizes needed to pre-create and populate the files before
//! replay (§V.A: "all files related in the trace file are pre-created and
//! populated with sufficient data").
//!
//! Traces serialize to a line-oriented text format close to the Harvard
//! NFS trace style, so users with the real traces can import them through
//! [`crate::harvard::parse_harvard_text`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::op::{FileId, FileOp, TraceRecord};

/// Aggregate statistics of a trace — the columns of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    pub file_cnt: u64,
    pub write_cnt: u64,
    pub avg_write_size: u64,
    pub read_cnt: u64,
    pub avg_read_size: u64,
    pub open_cnt: u64,
    pub close_cnt: u64,
    pub total_write_bytes: u64,
    pub total_read_bytes: u64,
}

/// A complete workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub name: String,
    /// Records sorted by `time_us`.
    pub records: Vec<TraceRecord>,
    /// Size of each file referenced by the trace, in bytes.
    pub file_sizes: BTreeMap<FileId, u64>,
}

impl Trace {
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            records: Vec::new(),
            file_sizes: BTreeMap::new(),
        }
    }

    /// Total bytes of all files (the dataset footprint that determines
    /// cluster utilization).
    pub fn footprint_bytes(&self) -> u64 {
        self.file_sizes.values().sum()
    }

    /// Computes Table 1-style statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            file_cnt: self.file_sizes.len() as u64,
            write_cnt: 0,
            avg_write_size: 0,
            read_cnt: 0,
            avg_read_size: 0,
            open_cnt: 0,
            close_cnt: 0,
            total_write_bytes: 0,
            total_read_bytes: 0,
        };
        for r in &self.records {
            match r.op {
                FileOp::Write { len, .. } => {
                    s.write_cnt += 1;
                    s.total_write_bytes += len;
                }
                FileOp::Read { len, .. } => {
                    s.read_cnt += 1;
                    s.total_read_bytes += len;
                }
                FileOp::Open => s.open_cnt += 1,
                FileOp::Close => s.close_cnt += 1,
            }
        }
        s.avg_write_size = s.total_write_bytes.checked_div(s.write_cnt).unwrap_or(0);
        s.avg_read_size = s.total_read_bytes.checked_div(s.read_cnt).unwrap_or(0);
        s
    }

    /// Checks structural well-formedness: records sorted by time, every
    /// referenced file has a size, every access fits inside its file.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.records.windows(2) {
            // edm-audit: allow(panic.slice_index, "windows(2) yields exactly two elements per window")
            if w[0].time_us > w[1].time_us {
                return Err(format!(
                    "records out of order: {} then {}",
                    // edm-audit: allow(panic.slice_index, "windows(2) yields exactly two elements per window")
                    w[0].time_us,
                    // edm-audit: allow(panic.slice_index, "windows(2) yields exactly two elements per window")
                    w[1].time_us
                ));
            }
        }
        for (i, r) in self.records.iter().enumerate() {
            let Some(&size) = self.file_sizes.get(&r.file) else {
                return Err(format!("record {i} references unknown file {:?}", r.file));
            };
            if let FileOp::Read { offset, len } | FileOp::Write { offset, len } = r.op {
                if len == 0 {
                    return Err(format!("record {i} has zero length"));
                }
                if offset + len > size {
                    return Err(format!(
                        "record {i} accesses [{offset}, {}) beyond file size {size}",
                        offset + len
                    ));
                }
            }
        }
        Ok(())
    }

    /// FNV-1a digest of the full trace content (name, every record, every
    /// file size). A resumed simulation re-synthesizes its trace from the
    /// checkpointed [`crate::WorkloadSpec`] and compares this fingerprint
    /// against the one recorded at checkpoint time, so a drifted generator
    /// or edited scenario is caught before replay diverges silently.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                *h = (*h ^ b as u64).wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        for b in self.name.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(PRIME);
        }
        eat(&mut h, self.records.len() as u64);
        for r in &self.records {
            eat(&mut h, r.time_us);
            eat(&mut h, r.user as u64);
            eat(&mut h, r.file.0);
            let (tag, offset, len) = match r.op {
                FileOp::Open => (0u64, 0, 0),
                FileOp::Close => (1, 0, 0),
                FileOp::Read { offset, len } => (2, offset, len),
                FileOp::Write { offset, len } => (3, offset, len),
            };
            eat(&mut h, tag);
            eat(&mut h, offset);
            eat(&mut h, len);
        }
        eat(&mut h, self.file_sizes.len() as u64);
        for (f, size) in &self.file_sizes {
            eat(&mut h, f.0);
            eat(&mut h, *size);
        }
        h
    }

    /// Serializes to the line-oriented text format:
    ///
    /// ```text
    /// # edm-trace v1 <name>
    /// F <file> <size>
    /// R <time_us> <user> <file> <op> [<offset> <len>]
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // edm-audit: allow(panic.expect, "write! into a String is infallible")
        writeln!(out, "# edm-trace v1 {}", self.name).expect("string write");
        for (f, size) in &self.file_sizes {
            // edm-audit: allow(panic.expect, "write! into a String is infallible")
            writeln!(out, "F {} {}", f.0, size).expect("string write");
        }
        for r in &self.records {
            match r.op {
                FileOp::Open | FileOp::Close => writeln!(
                    out,
                    "R {} {} {} {}",
                    r.time_us,
                    r.user,
                    r.file.0,
                    r.op.kind_str()
                ),
                FileOp::Read { offset, len } | FileOp::Write { offset, len } => writeln!(
                    out,
                    "R {} {} {} {} {} {}",
                    r.time_us,
                    r.user,
                    r.file.0,
                    r.op.kind_str(),
                    offset,
                    len
                ),
            }
            // edm-audit: allow(panic.expect, "write! into a String is infallible")
            .expect("string write");
        }
        out
    }

    /// Parses the text format produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace file")?;
        let name = header
            .strip_prefix("# edm-trace v1 ")
            .ok_or_else(|| format!("bad header: {header:?}"))?
            .to_string();
        let mut trace = Trace::new(name);
        for (no, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            let tag = it.next().ok_or_else(|| format!("line {no}: empty"))?;
            match tag {
                "F" => {
                    let file = FileId(next_u64(&mut it, no, "file id")?);
                    let size = next_u64(&mut it, no, "size")?;
                    trace.file_sizes.insert(file, size);
                }
                "R" => {
                    let time_us = next_u64(&mut it, no, "time")?;
                    let user = next_u64(&mut it, no, "user")? as u32;
                    let file = FileId(next_u64(&mut it, no, "file id")?);
                    let kind = it
                        .next()
                        .ok_or_else(|| format!("line {no}: missing op kind"))?;
                    let op = match kind {
                        "open" => FileOp::Open,
                        "close" => FileOp::Close,
                        "read" => FileOp::Read {
                            offset: next_u64(&mut it, no, "offset")?,
                            len: next_u64(&mut it, no, "len")?,
                        },
                        "write" => FileOp::Write {
                            offset: next_u64(&mut it, no, "offset")?,
                            len: next_u64(&mut it, no, "len")?,
                        },
                        other => return Err(format!("line {no}: unknown op {other:?}")),
                    };
                    trace.records.push(TraceRecord {
                        time_us,
                        user,
                        file,
                        op,
                    });
                }
                other => return Err(format!("line {no}: unknown tag {other:?}")),
            }
        }
        Ok(trace)
    }
}

/// Parses the next whitespace token of `it` as a `u64`, with a
/// line-and-field error message.
fn next_u64<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    no: usize,
    what: &str,
) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("line {no}: missing {what}"))?
        .parse::<u64>()
        .map_err(|e| format!("line {no}: bad {what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.file_sizes.insert(FileId(1), 100_000);
        t.file_sizes.insert(FileId(2), 50_000);
        t.records = vec![
            TraceRecord {
                time_us: 0,
                user: 0,
                file: FileId(1),
                op: FileOp::Open,
            },
            TraceRecord {
                time_us: 10,
                user: 0,
                file: FileId(1),
                op: FileOp::Write {
                    offset: 0,
                    len: 8192,
                },
            },
            TraceRecord {
                time_us: 20,
                user: 1,
                file: FileId(2),
                op: FileOp::Read {
                    offset: 4096,
                    len: 4096,
                },
            },
            TraceRecord {
                time_us: 30,
                user: 0,
                file: FileId(1),
                op: FileOp::Close,
            },
        ];
        t
    }

    #[test]
    fn stats_count_by_kind() {
        let s = sample().stats();
        assert_eq!(s.file_cnt, 2);
        assert_eq!(s.write_cnt, 1);
        assert_eq!(s.read_cnt, 1);
        assert_eq!(s.open_cnt, 1);
        assert_eq!(s.close_cnt, 1);
        assert_eq!(s.avg_write_size, 8192);
        assert_eq!(s.avg_read_size, 4096);
    }

    #[test]
    fn validate_accepts_wellformed() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_order() {
        let mut t = sample();
        t.records.swap(0, 3);
        assert!(t.validate().unwrap_err().contains("out of order"));
    }

    #[test]
    fn validate_rejects_unknown_file() {
        let mut t = sample();
        t.records[1].file = FileId(99);
        assert!(t.validate().unwrap_err().contains("unknown file"));
    }

    #[test]
    fn validate_rejects_access_beyond_eof() {
        let mut t = sample();
        t.records[1].op = FileOp::Write {
            offset: 99_999,
            len: 8192,
        };
        assert!(t.validate().unwrap_err().contains("beyond file size"));
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let t = sample();
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("junk header").is_err());
        assert!(Trace::from_text("# edm-trace v1 x\nZ 1 2").is_err());
        assert!(Trace::from_text("# edm-trace v1 x\nR 1 0 1 frobnicate").is_err());
        assert!(Trace::from_text("# edm-trace v1 x\nR 1 0 1 read 0").is_err());
    }

    #[test]
    fn footprint_sums_file_sizes() {
        assert_eq!(sample().footprint_bytes(), 150_000);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let t = sample();
        assert_eq!(t.fingerprint(), sample().fingerprint());

        let mut changed = sample();
        changed.records[1].op = FileOp::Write {
            offset: 0,
            len: 8193,
        };
        assert_ne!(t.fingerprint(), changed.fingerprint());

        let mut renamed = sample();
        renamed.name = "other".into();
        assert_ne!(t.fingerprint(), renamed.fingerprint());

        let mut resized = sample();
        resized.file_sizes.insert(FileId(2), 50_001);
        assert_ne!(t.fingerprint(), resized.fingerprint());
    }
}

//! The seven Harvard NFS workloads of Table 1, as synthesizable specs,
//! plus the `random` workload of Fig. 3.
//!
//! The paper replays traces "collected from the network storage servers in
//! Harvard University \[8\]" (§V.A). We do not redistribute those traces;
//! instead each preset pins the exact Table 1 aggregates (file count,
//! write/read counts, mean sizes) and a documented skew profile chosen to
//! reproduce the wear-variance behaviour the paper reports:
//!
//! * `home02` and `lair62` show the widest per-SSD erase variance in
//!   Fig. 1(a) → steep write skew;
//! * the `deasna` traces show the smallest variance (§V.B: "the wear
//!   variance in this case is already very small") → mild skew;
//! * the `home` traces are read-dominated (§V.B: "the home traces have
//!   higher read ratio than others"), which Table 1 confirms.
//!
//! Users holding the real traces can instead import them with
//! [`parse_harvard_text`].

use crate::op::{FileId, FileOp, TraceRecord};
use crate::spec::{FileSizeModel, SkewProfile, WorkloadSpec};
use crate::trace::Trace;

/// Names of the seven Table 1 workloads, in paper order.
pub const TRACE_NAMES: [&str; 7] = [
    "home02", "home03", "home04", "deasna", "deasna2", "lair62", "lair62b",
];

/// The three traces used for the motivation (Fig. 1) and the migration
/// response-time study (Fig. 7).
pub const MOTIVATION_TRACES: [&str; 3] = ["home02", "deasna", "lair62"];

#[allow(clippy::too_many_arguments)]
fn base(
    name: &str,
    file_cnt: u64,
    write_cnt: u64,
    avg_write_size: u64,
    read_cnt: u64,
    avg_read_size: u64,
    skew: SkewProfile,
    seed: u64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        file_cnt,
        write_cnt,
        avg_write_size,
        read_cnt,
        avg_read_size,
        skew,
        file_sizes: FileSizeModel::DEFAULT,
        users: 64,
        seed,
    }
}

/// Returns the spec for one of the seven Table 1 workloads.
///
/// # Panics
/// Panics on an unknown name; use [`TRACE_NAMES`] to enumerate.
pub fn spec(name: &str) -> WorkloadSpec {
    // Skew profiles (write θ, read θ, hot-set overlap) are our documented
    // reconstruction, chosen so that relative wear variance across traces
    // matches Fig. 1: home02/lair62 widest, deasna/deasna2 narrowest.
    match name {
        "home02" => base(
            name,
            10_931,
            730_602,
            8_048,
            3_497_486,
            8_191,
            SkewProfile {
                write_theta: 1.05,
                read_theta: 0.85,
                hot_overlap: 0.4,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED01,
        ),
        "home03" => base(
            name,
            8_010,
            355_091,
            7_938,
            2_624_676,
            8_190,
            SkewProfile {
                write_theta: 0.95,
                read_theta: 0.85,
                hot_overlap: 0.45,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED02,
        ),
        "home04" => base(
            name,
            7_798,
            358_976,
            8_013,
            2_034_078,
            8_192,
            SkewProfile {
                write_theta: 0.95,
                read_theta: 0.85,
                hot_overlap: 0.45,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED03,
        ),
        "deasna" => base(
            name,
            9_727,
            232_481,
            24_167,
            271_619,
            23_869,
            SkewProfile {
                write_theta: 0.65,
                read_theta: 0.65,
                hot_overlap: 0.7,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED04,
        ),
        "deasna2" => base(
            name,
            8_405,
            269_936,
            18_489,
            372_750,
            20_529,
            SkewProfile {
                write_theta: 0.70,
                read_theta: 0.65,
                hot_overlap: 0.7,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED05,
        ),
        "lair62" => base(
            name,
            19_088,
            740_831,
            5_415,
            890_680,
            7_264,
            SkewProfile {
                write_theta: 1.10,
                read_theta: 0.90,
                hot_overlap: 0.35,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED06,
        ),
        "lair62b" => base(
            name,
            27_228,
            409_215,
            5_496,
            736_469,
            7_612,
            SkewProfile {
                write_theta: 1.05,
                read_theta: 0.90,
                hot_overlap: 0.4,
                size_coupling: 0.5,
                phases: 1,
            },
            0xED07,
        ),
        // edm-audit: allow(panic.panic, "CLI-facing parse: rejecting an unknown trace name loudly is the contract")
        other => panic!("unknown Harvard workload {other:?}; see TRACE_NAMES"),
    }
}

/// All seven Table 1 specs, in paper order.
pub fn all_specs() -> Vec<WorkloadSpec> {
    TRACE_NAMES.iter().map(|n| spec(n)).collect()
}

/// The synthetic `random` workload of Fig. 3: uniformly random accesses
/// with request sizes in 4–16 KB.
pub fn random_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "random".into(),
        file_cnt: 2_000,
        write_cnt: 300_000,
        avg_write_size: 10 * 1024, // uniform in [5 KB, 15 KB] ≈ paper's 4–16 KB
        read_cnt: 300_000,
        avg_read_size: 10 * 1024,
        skew: SkewProfile::UNIFORM,
        // Constant file size: uniform file choice then means uniform
        // per-page update frequency, which is what the paper's "random
        // request distribution" workload is (Fig. 3 expects Eq. 2 to fit
        // it). A spread of sizes would re-introduce per-page skew.
        file_sizes: FileSizeModel {
            min_bytes: 256 * 1024,
            max_bytes: 256 * 1024,
        },
        users: 64,
        seed: 0xEDFF,
    }
}

/// Parses a Harvard-style NFS trace in the simplified text form
///
/// ```text
/// <time_seconds.frac> <user> <op> <file-id> [<offset> <len>]
/// ```
///
/// where `op` ∈ {`open`, `close`, `read`, `write`}. File sizes are inferred
/// as the maximal extent accessed (the paper pre-creates files "with
/// sufficient data").
pub fn parse_harvard_text(name: &str, text: &str) -> Result<Trace, String> {
    let mut trace = Trace::new(name);
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let time: f64 = it
            .next()
            .ok_or_else(|| format!("line {no}: missing time"))?
            .parse()
            .map_err(|e| format!("line {no}: bad time: {e}"))?;
        let user: u32 = it
            .next()
            .ok_or_else(|| format!("line {no}: missing user"))?
            .parse()
            .map_err(|e| format!("line {no}: bad user: {e}"))?;
        let kind = it.next().ok_or_else(|| format!("line {no}: missing op"))?;
        let file = FileId(
            it.next()
                .ok_or_else(|| format!("line {no}: missing file"))?
                .parse()
                .map_err(|e| format!("line {no}: bad file: {e}"))?,
        );
        let mut next_u64 = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("line {no}: missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("line {no}: bad {what}: {e}"))
        };
        let op = match kind {
            "open" => FileOp::Open,
            "close" => FileOp::Close,
            "read" => FileOp::Read {
                offset: next_u64("offset")?,
                len: next_u64("len")?,
            },
            "write" => FileOp::Write {
                offset: next_u64("offset")?,
                len: next_u64("len")?,
            },
            other => return Err(format!("line {no}: unknown op {other:?}")),
        };
        let record = TraceRecord {
            time_us: (time * 1e6) as u64,
            user,
            file,
            op,
        };
        let extent = match op {
            FileOp::Read { offset, len } | FileOp::Write { offset, len } => offset + len,
            _ => 0,
        };
        let size = trace.file_sizes.entry(file).or_insert(0);
        *size = (*size).max(extent).max(1);
        trace.records.push(record);
    }
    trace.records.sort_by_key(|r| r.time_us);
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_specs_are_valid_and_match_table1() {
        let specs = all_specs();
        assert_eq!(specs.len(), 7);
        for s in &specs {
            s.validate().unwrap();
        }
        // Spot-check the exact Table 1 numbers.
        let home02 = spec("home02");
        assert_eq!(home02.file_cnt, 10_931);
        assert_eq!(home02.write_cnt, 730_602);
        assert_eq!(home02.avg_write_size, 8_048);
        assert_eq!(home02.read_cnt, 3_497_486);
        assert_eq!(home02.avg_read_size, 8_191);
        let lair62b = spec("lair62b");
        assert_eq!(lair62b.file_cnt, 27_228);
        assert_eq!(lair62b.read_cnt, 736_469);
    }

    #[test]
    fn home_traces_are_read_dominated() {
        for name in ["home02", "home03", "home04"] {
            let s = spec(name);
            assert!(s.read_cnt > 3 * s.write_cnt, "{name} should be read-heavy");
        }
    }

    #[test]
    fn high_variance_traces_have_steeper_write_skew() {
        assert!(spec("home02").skew.write_theta > spec("deasna").skew.write_theta);
        assert!(spec("lair62").skew.write_theta > spec("deasna2").skew.write_theta);
    }

    #[test]
    #[should_panic(expected = "unknown Harvard workload")]
    fn unknown_name_panics() {
        spec("nope");
    }

    #[test]
    fn random_spec_is_uniform() {
        let s = random_spec();
        s.validate().unwrap();
        assert_eq!(s.skew.write_theta, 0.0);
        assert_eq!(s.skew.read_theta, 0.0);
    }

    #[test]
    fn parse_harvard_roundtrip() {
        let text = "\
# comment
0.000100 3 open 7
0.000200 3 write 7 0 8192
0.000400 3 read 7 4096 4096
0.000500 3 close 7
";
        let t = parse_harvard_text("mini", text).unwrap();
        assert_eq!(t.records.len(), 4);
        assert_eq!(t.file_sizes[&FileId(7)], 8192);
        let s = t.stats();
        assert_eq!(s.write_cnt, 1);
        assert_eq!(s.read_cnt, 1);
    }

    #[test]
    fn parse_harvard_sorts_by_time() {
        let text = "\
0.5 0 write 1 0 100
0.1 0 open 1
";
        let t = parse_harvard_text("x", text).unwrap();
        assert_eq!(t.records[0].op, FileOp::Open);
    }

    #[test]
    fn parse_harvard_rejects_bad_lines() {
        assert!(parse_harvard_text("x", "abc").is_err());
        assert!(parse_harvard_text("x", "0.1 0 explode 1").is_err());
        assert!(parse_harvard_text("x", "0.1 0 read 1 0").is_err());
    }
}

//! Property tests for the snapshot container: save → load → save is
//! byte-identical, and any single-bit flip or truncation of a valid
//! snapshot fails with a typed error — never a panic and never a clean
//! decode of wrong bytes.

use proptest::prelude::*;

use edm_snap::{SnapError, SnapWriter, Snapshot, SnapshotFile};

/// A value exercising every primitive the writer knows plus nested
/// collections — stand-in for real simulator sections.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    a: u8,
    b: u32,
    c: u64,
    flag: bool,
    x: f64,
    name: String,
    seq: Vec<u64>,
    opt: Option<(u32, u64)>,
}

impl Snapshot for Blob {
    fn save(&self, w: &mut SnapWriter) {
        self.a.save(w);
        self.b.save(w);
        self.c.save(w);
        self.flag.save(w);
        self.x.save(w);
        self.name.save(w);
        self.seq.save(w);
        self.opt.save(w);
    }
    fn load(r: &mut edm_snap::SnapReader) -> Self {
        Self {
            a: u8::load(r),
            b: u32::load(r),
            c: u64::load(r),
            flag: bool::load(r),
            x: f64::load(r),
            name: String::load(r),
            seq: Vec::load(r),
            opt: Option::load(r),
        }
    }
}

fn blob_strategy() -> impl Strategy<Value = Blob> {
    (
        any::<u8>(),
        any::<u32>(),
        any::<u64>(),
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec(0u8..26, 0..24),
        prop::collection::vec(any::<u64>(), 0..16),
        (any::<bool>(), any::<u32>(), any::<u64>()),
    )
        .prop_map(|(a, b, c, flag, bits, letters, seq, (some, oa, ob))| Blob {
            a,
            b,
            c,
            flag,
            x: f64::from_bits(bits),
            name: letters.into_iter().map(|l| (b'a' + l) as char).collect(),
            seq,
            opt: if some { Some((oa, ob)) } else { None },
        })
}

fn build_file(blobs: &[Blob]) -> SnapshotFile {
    let mut f = SnapshotFile::new();
    f.push("manifest", &(blobs.len() as u64));
    for (i, b) in blobs.iter().enumerate() {
        f.push(&format!("blob{i}"), b);
    }
    f
}

fn blob_eq(a: &Blob, b: &Blob) -> bool {
    // Compare f64 by bits so identical NaN payloads count as equal.
    a.a == b.a
        && a.b == b.b
        && a.c == b.c
        && a.flag == b.flag
        && a.x.to_bits() == b.x.to_bits()
        && a.name == b.name
        && a.seq == b.seq
        && a.opt == b.opt
}

proptest! {
    #[test]
    fn roundtrip_is_byte_identical(blobs in prop::collection::vec(blob_strategy(), 1..4)) {
        let f = build_file(&blobs);
        let bytes = f.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        // Decoded values match...
        for (i, b) in blobs.iter().enumerate() {
            let got = back.decode::<Blob>(&format!("blob{i}")).unwrap();
            prop_assert!(blob_eq(&got, b), "blob{} mismatch: {:?} vs {:?}", i, got, b);
        }
        // ...and re-encoding the decoded values reproduces the exact bytes.
        let mut again = SnapshotFile::new();
        again.push("manifest", &back.decode::<u64>("manifest").unwrap());
        for (i, _) in blobs.iter().enumerate() {
            let name = format!("blob{i}");
            again.push(&name, &back.decode::<Blob>(&name).unwrap());
        }
        prop_assert_eq!(again.to_bytes(), bytes);
    }

    #[test]
    fn bit_flip_never_decodes_cleanly(
        blobs in prop::collection::vec(blob_strategy(), 1..3),
        flip_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let f = build_file(&blobs);
        let mut bytes = f.to_bytes();
        let at = (flip_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        // Either the structural frame rejects the file, or some section
        // fails its CRC / decode when read. Decoding every section of a
        // parseable file must surface at least one typed error; no panics.
        match SnapshotFile::from_bytes(&bytes) {
            Err(_) => {} // typed structural rejection
            Ok(parsed) => {
                let mut failures = 0u32;
                if parsed.decode::<u64>("manifest").is_err() {
                    failures += 1;
                }
                for i in 0..blobs.len() {
                    if parsed.decode::<Blob>(&format!("blob{i}")).is_err() {
                        failures += 1;
                    }
                }
                prop_assert!(
                    failures > 0,
                    "bit flip at byte {} bit {} decoded cleanly", at, bit
                );
            }
        }
    }

    #[test]
    fn truncation_never_decodes_cleanly(
        blobs in prop::collection::vec(blob_strategy(), 1..3),
        cut_seed in any::<u64>(),
    ) {
        let f = build_file(&blobs);
        let bytes = f.to_bytes();
        // Strictly shorter than the original.
        let keep = (cut_seed % bytes.len() as u64) as usize;
        let err = SnapshotFile::from_bytes(&bytes[..keep])
            .expect_err("truncated snapshot parsed");
        prop_assert!(
            matches!(err, SnapError::BadMagic | SnapError::Truncated { .. }),
            "unexpected error for truncation at {}: {:?}", keep, err
        );
    }
}

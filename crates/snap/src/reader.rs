//! Bounds-checked byte decoder with a *sticky error*: a read past the end
//! of the input (or an explicit [`SnapReader::corrupt`] call from a
//! `Snapshot` impl) returns a zero value and latches the failure; every
//! subsequent read also short-circuits to zero. [`SnapReader::finish`]
//! converts the latched state — or any unconsumed trailing bytes — into a
//! typed [`SnapError`]. This lets `Snapshot::load` keep its infallible
//! `-> Self` signature while guaranteeing corrupt input can never panic,
//! over-allocate, or masquerade as valid state.

use crate::SnapError;

pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    error: Option<ReadFail>,
}

enum ReadFail {
    Truncated { context: &'static str },
    Corrupt { detail: String },
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            error: None,
        }
    }

    /// Bytes not yet consumed. Used by collection decoders to reject
    /// length prefixes that cannot possibly be satisfied.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once any read has failed; further reads return zero values.
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    /// Latch a corruption complaint from a `Snapshot` impl (bad enum tag,
    /// impossible field combination). First failure wins.
    pub fn corrupt(&mut self, detail: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(ReadFail::Corrupt {
                detail: detail.into(),
            });
        }
    }

    fn take<const N: usize>(&mut self, context: &'static str) -> [u8; N] {
        if self.error.is_some() || self.remaining() < N {
            if self.error.is_none() {
                self.error = Some(ReadFail::Truncated { context });
            }
            return [0; N];
        }
        let mut out = [0; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        out
    }

    pub fn take_u8(&mut self) -> u8 {
        self.take::<1>("u8")[0]
    }

    pub fn take_u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take("u16"))
    }

    pub fn take_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take("u32"))
    }

    pub fn take_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take("u64"))
    }

    pub fn take_usize(&mut self) -> usize {
        let v = self.take_u64();
        if v > usize::MAX as u64 {
            self.corrupt("usize out of range");
            return 0;
        }
        v as usize
    }

    pub fn take_bool(&mut self) -> bool {
        match self.take_u8() {
            0 => false,
            1 => true,
            _ => {
                self.corrupt("bool tag");
                false
            }
        }
    }

    pub fn take_f64(&mut self) -> f64 {
        f64::from_bits(self.take_u64())
    }

    /// Length-prefixed raw bytes; empty on failure.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        let len = self.take_u64();
        if self.error.is_some() || len as usize > self.remaining() {
            if self.error.is_none() {
                self.error = Some(ReadFail::Truncated { context: "bytes" });
            }
            return Vec::new();
        }
        let out = self.buf[self.pos..self.pos + len as usize].to_vec();
        self.pos += len as usize;
        out
    }

    /// Length-prefixed UTF-8 string; empty on failure or invalid UTF-8.
    pub fn take_string(&mut self) -> String {
        let bytes = self.take_bytes();
        match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                self.corrupt("invalid UTF-8 in string");
                String::new()
            }
        }
    }

    /// Report the section's decode outcome: any latched failure, or
    /// trailing bytes left after a complete decode (the body must be the
    /// exact encoding — extra bytes mean the reader and writer disagree).
    pub fn finish(self, section: &str) -> Result<(), SnapError> {
        match self.error {
            Some(ReadFail::Truncated { context }) => Err(SnapError::Truncated {
                context: format!("{section}: {context}"),
            }),
            Some(ReadFail::Corrupt { detail }) => Err(SnapError::Corrupt {
                section: section.to_string(),
                detail,
            }),
            None if self.pos != self.buf.len() => Err(SnapError::TrailingData {
                section: section.to_string(),
            }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sticky_error_short_circuits() {
        let mut r = SnapReader::new(&[1, 2]);
        assert_eq!(r.take_u64(), 0); // too short → latches
        assert!(r.failed());
        assert_eq!(r.take_u8(), 0); // would fit, but sticky
        assert!(matches!(r.finish("s"), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn trailing_data_detected() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        assert_eq!(r.take_u8(), 1);
        assert!(matches!(r.finish("s"), Err(SnapError::TrailingData { .. })));
    }

    #[test]
    fn exact_consumption_ok() {
        let mut r = SnapReader::new(&[5, 0, 0, 0]);
        assert_eq!(r.take_u32(), 5);
        assert!(r.finish("s").is_ok());
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = SnapReader::new(&[9]);
        assert!(!r.take_bool());
        assert!(matches!(r.finish("s"), Err(SnapError::Corrupt { .. })));
    }

    #[test]
    fn oversized_bytes_claim_rejected() {
        let mut w = crate::SnapWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.take_bytes().is_empty());
        assert!(r.failed());
    }
}

//! Typed failures for snapshot decoding. Restoring a corrupted,
//! truncated, or version-mismatched snapshot must surface one of these —
//! never a panic and never silently-wrong state.

use std::fmt;

/// Why a snapshot could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The file does not start with the `EDMSNAP` magic — not a snapshot.
    BadMagic,
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The input ended before the declared structure did.
    Truncated { context: String },
    /// A section body does not match its recorded CRC-32.
    CrcMismatch { section: String },
    /// A section the decoder requires is absent.
    MissingSection { section: String },
    /// A section decoded but its contents are internally inconsistent
    /// (bad enum tag, impossible length, invariant violation).
    Corrupt { section: String, detail: String },
    /// A section decoded fully but left unread bytes — the body is not
    /// the exact encoding the decoder expects.
    TrailingData { section: String },
    /// Filesystem error while reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not an EDM snapshot (bad magic)"),
            SnapError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {supported})"
            ),
            SnapError::Truncated { context } => write!(f, "snapshot truncated: {context}"),
            SnapError::CrcMismatch { section } => {
                write!(f, "section '{section}' failed its CRC-32 check")
            }
            SnapError::MissingSection { section } => {
                write!(f, "snapshot has no '{section}' section")
            }
            SnapError::Corrupt { section, detail } => {
                write!(f, "section '{section}' is corrupt: {detail}")
            }
            SnapError::TrailingData { section } => {
                write!(f, "section '{section}' has trailing bytes after decode")
            }
            SnapError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e.to_string())
    }
}

//! Flat, deterministic replacements for the simulator's hot-path
//! ordered maps.
//!
//! `BTreeMap` gives the engine deterministic iteration, but every lookup
//! chases pointers across nodes. The two containers here keep the same
//! observable contract — ascending-by-key iteration, canonical snapshot
//! bytes **identical** to [`BTreeMap`]'s `Snapshot` encoding (length
//! prefix + ascending `(key, value)` pairs) — with cache-friendly
//! storage:
//!
//! * [`FlatMap`] — a sorted `Vec<(K, V)>` with binary-search lookups.
//!   Right for small-to-medium maps with reads dominating inserts
//!   (move routes, rebuilds, remap fragments, temperature heats).
//! * [`TokenMap`] — a slab keyed by monotonically increasing `u64`
//!   tokens: O(1) lookup by offset from a sliding base. Right for the
//!   in-flight table, whose keys are issue tokens that arrive in order
//!   and retire near-FIFO.
//!
//! Because the snapshot bytes match `BTreeMap`'s exactly, converting an
//! engine field between the three container types is invisible to the
//! checkpoint format.

use crate::{bounded_len, SnapReader, SnapWriter, Snapshot};
use std::collections::VecDeque;

/// A sorted-vector map: ascending iteration, binary-search lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap::new()
    }
}

impl<K: Ord, V> FlatMap<K, V> {
    pub fn new() -> Self {
        FlatMap {
            entries: Vec::new(),
        }
    }

    fn idx(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|e| e.0.cmp(key))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.idx(key).is_ok()
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        self.idx(key).ok().map(|i| &self.entries[i].1)
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.idx(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Inserts, returning the previous value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.idx(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.idx(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Returns the value for `key`, inserting `V::default()` first if absent.
    pub fn get_mut_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.idx(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Ascending-by-key iteration, mirroring `BTreeMap::iter`.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Builds from pairs already sorted ascending by unique key.
    /// Used by bulk loads that validated order out-of-band.
    pub fn from_sorted_unchecked(entries: Vec<(K, V)>) -> Self {
        // edm-audit: allow(panic.slice_index, "windows(2) always yields 2-element slices")
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        FlatMap { entries }
    }
}

// edm-audit: allow(snap.field_coverage, "load rebuilds `entries` element-wise through the length-prefixed loop below")
impl<K: Snapshot + Ord, V: Snapshot> Snapshot for FlatMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.entries.len() as u64);
        for (k, v) in &self.entries {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        let pairs = Vec::<(K, V)>::load(r);
        let mut map = FlatMap::new();
        for (k, v) in pairs {
            if map.insert(k, v).is_some() {
                r.corrupt("duplicate FlatMap key");
            }
        }
        map
    }
}

/// A slab map for monotonically increasing `u64` tokens.
///
/// Lookup is an O(1) offset from `base`; `remove` leaves a hole that is
/// reclaimed once everything before it retires. Insertion order must be
/// ascending (the engine's issue tokens are), but gaps are allowed —
/// a restored checkpoint may contain only the still-open tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenMap<V> {
    base: u64,
    slots: VecDeque<Option<V>>,
    len: usize,
}

impl<V> Default for TokenMap<V> {
    fn default() -> Self {
        TokenMap::new()
    }
}

impl<V> TokenMap<V> {
    pub fn new() -> Self {
        TokenMap {
            base: 0,
            slots: VecDeque::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `token`, which must be at least as large as every token
    /// ever inserted (gaps become empty slots).
    ///
    /// # Panics
    /// Panics if `token` is not past the end of the slab.
    pub fn insert(&mut self, token: u64, value: V) {
        let end = self.base + self.slots.len() as u64;
        assert!(
            token >= end,
            "TokenMap tokens must be inserted in ascending order"
        );
        for _ in end..token {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(value));
        self.len += 1;
    }

    fn offset(&self, token: u64) -> Option<usize> {
        token.checked_sub(self.base).and_then(|o| {
            let o = usize::try_from(o).ok()?;
            (o < self.slots.len()).then_some(o)
        })
    }

    pub fn get(&self, token: u64) -> Option<&V> {
        self.offset(token).and_then(|o| self.slots[o].as_ref())
    }

    pub fn get_mut(&mut self, token: u64) -> Option<&mut V> {
        match self.offset(token) {
            Some(o) => self.slots[o].as_mut(),
            None => None,
        }
    }

    pub fn remove(&mut self, token: u64) -> Option<V> {
        let o = self.offset(token)?;
        let v = self.slots[o].take();
        if v.is_some() {
            self.len -= 1;
        }
        // Reclaim the retired prefix so the slab tracks the open window.
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        v
    }

    /// Ascending-by-token iteration over occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (self.base + i as u64, v)))
    }
}

// edm-audit: allow(snap.field_coverage, "save/load serialize occupied (token, value) pairs; `base`, `slots`, and `len` are all reconstructed by insert")
impl<V: Snapshot> Snapshot for TokenMap<V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len as u64);
        for (token, v) in self.iter() {
            w.put_u64(token);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        let len = bounded_len(r);
        let mut map = TokenMap::new();
        let mut prev: Option<u64> = None;
        for _ in 0..len {
            if r.failed() {
                break;
            }
            let token = r.take_u64();
            let v = V::load(r);
            if prev.is_some_and(|p| token <= p) {
                r.corrupt("TokenMap tokens out of order");
                break;
            }
            prev = Some(token);
            map.insert(token, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn bytes_of<T: Snapshot>(v: &T) -> Vec<u8> {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        w.into_bytes()
    }

    #[test]
    fn flatmap_behaves_like_btreemap() {
        let mut flat = FlatMap::new();
        let mut tree = BTreeMap::new();
        // Deterministic scrambled key order with inserts, overwrites,
        // and removes.
        for i in 0..500u64 {
            let k = (i * 7919) % 257;
            assert_eq!(flat.insert(k, i), tree.insert(k, i));
            if i % 3 == 0 {
                let d = (i * 31) % 257;
                assert_eq!(flat.remove(&d), tree.remove(&d));
            }
            assert_eq!(flat.get(&k), tree.get(&k));
        }
        assert_eq!(flat.len(), tree.len());
        let f: Vec<_> = flat.iter().map(|(k, v)| (*k, *v)).collect();
        let t: Vec<_> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(f, t, "iteration order diverged");
    }

    #[test]
    fn flatmap_bytes_match_btreemap_bytes() {
        let mut flat = FlatMap::new();
        let mut tree = BTreeMap::new();
        for i in 0..64u64 {
            let k = (i * 37) % 101;
            flat.insert(k, i * 2);
            tree.insert(k, i * 2);
        }
        assert_eq!(bytes_of(&flat), bytes_of(&tree));
        // And the flat encoding loads back identically.
        let bytes = bytes_of(&flat);
        let mut r = SnapReader::new(&bytes);
        let back = FlatMap::<u64, u64>::load(&mut r);
        r.finish("flat").unwrap();
        assert_eq!(back, flat);
    }

    #[test]
    fn flatmap_get_mut_or_default() {
        let mut flat: FlatMap<u32, u64> = FlatMap::new();
        *flat.get_mut_or_default(5) += 3;
        *flat.get_mut_or_default(5) += 4;
        *flat.get_mut_or_default(1) += 1;
        assert_eq!(flat.get(&5), Some(&7));
        assert_eq!(flat.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn flatmap_retain() {
        let mut flat: FlatMap<u32, u32> = FlatMap::new();
        for k in 0..10 {
            flat.insert(k, k * k);
        }
        flat.retain(|k, _| k % 2 == 0);
        assert_eq!(
            flat.keys().copied().collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8]
        );
    }

    #[test]
    fn flatmap_load_rejects_duplicates() {
        let mut w = SnapWriter::new();
        w.put_u64(2);
        w.put_u64(9);
        w.put_u64(1);
        w.put_u64(9);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = FlatMap::<u64, u64>::load(&mut r);
        assert!(r.finish("flat").is_err());
    }

    #[test]
    fn tokenmap_near_fifo_lifecycle() {
        let mut slab = TokenMap::new();
        let mut tree = BTreeMap::new();
        let mut next = 0u64;
        for round in 0..200u64 {
            for _ in 0..3 {
                slab.insert(next, round);
                tree.insert(next, round);
                next += 1;
            }
            // Retire slightly out of order (MDS completions can overlap).
            if round >= 2 {
                for t in [next - 7, next - 9, next - 8] {
                    assert_eq!(slab.remove(t), tree.remove(&t));
                }
            }
            assert_eq!(slab.len(), tree.len());
        }
        let s: Vec<_> = slab.iter().map(|(k, v)| (k, *v)).collect();
        let t: Vec<_> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(s, t);
        // The slab window should have slid well past zero.
        assert!(slab.base > 0);
    }

    #[test]
    fn tokenmap_bytes_match_btreemap_bytes() {
        let mut slab = TokenMap::new();
        let mut tree = BTreeMap::new();
        for t in 0..50u64 {
            slab.insert(t, t * 3);
            tree.insert(t, t * 3);
        }
        for t in (0..50).step_by(3) {
            slab.remove(t);
            tree.remove(&t);
        }
        assert_eq!(bytes_of(&slab), bytes_of(&tree));
        let bytes = bytes_of(&slab);
        let mut r = SnapReader::new(&bytes);
        let back = TokenMap::<u64>::load(&mut r);
        r.finish("slab").unwrap();
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            slab.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn tokenmap_load_with_gaps() {
        // A restored checkpoint holds only still-open tokens: 5, 9, 12.
        let mut w = SnapWriter::new();
        w.put_u64(3);
        for (t, v) in [(5u64, 50u64), (9, 90), (12, 120)] {
            w.put_u64(t);
            w.put_u64(v);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let slab = TokenMap::<u64>::load(&mut r);
        r.finish("slab").unwrap();
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.get(5), Some(&50));
        assert_eq!(slab.get(6), None);
        assert_eq!(slab.get(12), Some(&120));
        // Re-saving reproduces the same bytes.
        let mut w2 = SnapWriter::new();
        slab.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn tokenmap_rejects_descending_insert() {
        let mut slab = TokenMap::new();
        slab.insert(5, 1u32);
        slab.insert(4, 2u32);
    }

    #[test]
    fn tokenmap_load_rejects_unordered_tokens() {
        let mut w = SnapWriter::new();
        w.put_u64(2);
        w.put_u64(9);
        w.put_u64(0u64);
        w.put_u64(3);
        w.put_u64(0u64);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = TokenMap::<u64>::load(&mut r);
        assert!(r.finish("slab").is_err());
    }
}

//! Append-only byte encoder for snapshot sections. All integers are
//! little-endian; strings and byte slices carry a u64 length prefix;
//! floats are written as their IEEE-754 bit pattern so round-trips are
//! bit-exact (including NaN payloads and signed zeros).

/// Accumulates the canonical encoding of one snapshot section.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#![forbid(unsafe_code)]
//! # edm-snap — deterministic checkpoint/restore for the EDM simulator
//!
//! A snapshot captures the complete simulator state — FTL page maps and
//! wear counters, cluster queues and event heap, policy accumulators,
//! trace cursors — into a single versioned, checksummed file that
//! restores **bit-identically**: an interrupted-and-resumed run must
//! produce the same reports and determinism digest as an uninterrupted
//! one.
//!
//! The crate deliberately has zero dependencies (it sits at the bottom
//! of the workspace graph) and splits into three layers:
//!
//! * [`Snapshot`] — the trait every stateful simulator type implements:
//!   `save` appends a canonical byte encoding to a [`SnapWriter`], `load`
//!   reads it back from a [`SnapReader`].
//! * [`SnapWriter`] / [`SnapReader`] — length-prefixed little-endian
//!   primitives. The reader never panics on corrupt input: out-of-bounds
//!   reads return zero values and latch a *sticky error* that
//!   [`SnapReader::finish`] reports as a typed [`SnapError`].
//! * [`SnapshotFile`] — the container format: an 8-byte magic, a format
//!   version, and named sections each carrying a CRC-32 over its body.
//!   The first section is by convention a small manifest, so inspection
//!   tools can describe a snapshot without materializing the simulator.
//!
//! ## Canonical encodings
//!
//! Byte-identical round-trips require canonical encodings for types with
//! unspecified in-memory order: hash maps are serialized sorted by key,
//! binary heaps as sorted event lists, and floating-point values via
//! their IEEE-754 bit patterns ([`f64::to_bits`]). Those rules live with
//! the individual `Snapshot` impls; this crate only supplies primitives
//! that make them easy to follow.

mod crc32;
mod error;
mod file;
pub mod flat;
mod reader;
mod writer;

pub use crc32::crc32;
pub use error::SnapError;
pub use file::{SnapshotFile, FORMAT_VERSION, MAGIC};
pub use flat::{FlatMap, TokenMap};
pub use reader::SnapReader;
pub use writer::SnapWriter;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Canonical binary serialization of one piece of simulator state.
///
/// `load` mirrors `save` exactly. It returns `Self` (not a `Result`):
/// decode errors latch inside the [`SnapReader`] and surface as a typed
/// [`SnapError`] when the enclosing section is finished — corruption is
/// detected by the per-section CRC *before* `load` runs, so `load` only
/// sees either a valid body or a reader that is already poisoned.
pub trait Snapshot: Sized {
    fn save(&self, w: &mut SnapWriter);
    fn load(r: &mut SnapReader) -> Self;
}

macro_rules! int_snapshot {
    ($($t:ty, $put:ident, $take:ident;)*) => {$(
        impl Snapshot for $t {
            fn save(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn load(r: &mut SnapReader) -> Self {
                r.$take()
            }
        }
    )*};
}

int_snapshot! {
    u8, put_u8, take_u8;
    u16, put_u16, take_u16;
    u32, put_u32, take_u32;
    u64, put_u64, take_u64;
}

impl Snapshot for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bool(*self);
    }
    fn load(r: &mut SnapReader) -> Self {
        r.take_bool()
    }
}

impl Snapshot for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_f64(*self);
    }
    fn load(r: &mut SnapReader) -> Self {
        r.take_f64()
    }
}

impl Snapshot for usize {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut SnapReader) -> Self {
        r.take_usize()
    }
}

impl Snapshot for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn load(r: &mut SnapReader) -> Self {
        r.take_string()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        match r.take_u8() {
            0 => None,
            1 => Some(T::load(r)),
            _ => {
                r.corrupt("Option tag");
                None
            }
        }
    }
}

/// Reads a length prefix that claims `len` elements of ≥ 1 byte each;
/// latches `Truncated` and yields 0 when the claim cannot fit in the
/// remaining bytes, so corrupt input can never drive an unbounded
/// allocation.
pub(crate) fn bounded_len(r: &mut SnapReader) -> usize {
    let len = r.take_u64();
    if len as usize > r.remaining() {
        r.corrupt("length prefix exceeds section size");
        return 0;
    }
    len as usize
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        let len = bounded_len(r);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            if r.failed() {
                break;
            }
            out.push(T::load(r));
        }
        out
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        Vec::<T>::load(r).into()
    }
}

impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        Vec::<T>::load(r).into_iter().collect()
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        Vec::<(K, V)>::load(r).into_iter().collect()
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        (A::load(r), B::load(r))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        (A::load(r), B::load(r), C::load(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::load(&mut r);
        assert_eq!(&back, v);
        r.finish("test").unwrap();
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u16::MAX);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&-0.0f64);
        roundtrip(&f64::NAN.to_bits());
        roundtrip(&String::from("héllo ∞"));
        roundtrip(&String::new());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(&Some(17u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&VecDeque::from([9u64, 8, 7]));
        roundtrip(&BTreeSet::from([(3u64, 1u32), (1, 2)]));
        roundtrip(&BTreeMap::from([(1u64, "a".to_string()), (2, "b".into())]));
        roundtrip(&(1u64, (2u32, true), 3.5f64));
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut w = SnapWriter::new();
            v.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(f64::load(&mut r).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_vec_fails_cleanly() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 4]);
        let _ = Vec::<u64>::load(&mut r);
        assert!(r.finish("vec").is_err());
    }

    #[test]
    fn huge_length_claim_does_not_allocate() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let v = Vec::<u64>::load(&mut r);
        assert!(v.is_empty());
        assert!(r.finish("vec").is_err());
    }

    #[test]
    fn bad_option_tag_is_corrupt() {
        let mut r = SnapReader::new(&[7]);
        assert_eq!(Option::<u64>::load(&mut r), None);
        let err = r.finish("opt").unwrap_err();
        assert!(matches!(err, SnapError::Corrupt { .. }), "{err:?}");
    }
}

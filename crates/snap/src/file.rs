//! Single-file snapshot container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes   b"EDMSNAP1"
//! format_version   u32
//! section_count    u32
//! per section:
//!   name_len       u32
//!   name           name_len bytes (UTF-8)
//!   body_len       u64
//!   body_crc32     u32       (CRC-32/IEEE over body)
//!   body           body_len bytes
//! ```
//!
//! Section CRCs are verified lazily — when a section's reader is first
//! requested — so an inspector that only reads the manifest section pays
//! only that section's checksum. `from_bytes` still validates the full
//! structural frame (magic, version, every name/length within bounds,
//! no trailing garbage), so any single-byte corruption is caught either
//! structurally at parse time or by the CRC at decode time.

use std::path::Path;

use crate::{crc32, SnapError, SnapReader, SnapWriter, Snapshot};

/// File magic: "EDMSNAP" plus a container-layout generation digit.
pub const MAGIC: [u8; 8] = *b"EDMSNAP1";

/// Format version of the section contents. Bump when any `Snapshot`
/// encoding changes shape; old files then fail with
/// [`SnapError::UnsupportedVersion`] instead of misdecoding.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug)]
struct Section {
    name: String,
    crc: u32,
    body: Vec<u8>,
}

/// An in-memory snapshot: an ordered list of named, checksummed sections.
#[derive(Debug, Default)]
pub struct SnapshotFile {
    sections: Vec<Section>,
}

impl SnapshotFile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section holding `writer`'s bytes, stamping its CRC.
    pub fn push_section(&mut self, name: &str, writer: SnapWriter) {
        let body = writer.into_bytes();
        self.sections.push(Section {
            name: name.to_string(),
            crc: crc32(&body),
            body,
        });
    }

    /// Convenience: encode `value` into a new section named `name`.
    pub fn push<T: Snapshot>(&mut self, name: &str, value: &T) {
        let mut w = SnapWriter::new();
        value.save(&mut w);
        self.push_section(name, w);
    }

    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|s| s.name.as_str())
    }

    pub fn section_len(&self, name: &str) -> Option<usize> {
        self.find(name).map(|s| s.body.len())
    }

    fn find(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// A reader over `name`'s body, after verifying its CRC.
    pub fn reader(&self, name: &str) -> Result<SnapReader<'_>, SnapError> {
        let s = self.find(name).ok_or_else(|| SnapError::MissingSection {
            section: name.to_string(),
        })?;
        if crc32(&s.body) != s.crc {
            return Err(SnapError::CrcMismatch {
                section: name.to_string(),
            });
        }
        Ok(SnapReader::new(&s.body))
    }

    /// Decode a whole section as one `Snapshot` value, enforcing the CRC,
    /// full consumption, and any corruption the impl latched.
    pub fn decode<T: Snapshot>(&self, name: &str) -> Result<T, SnapError> {
        let mut r = self.reader(name)?;
        let value = T::load(&mut r);
        r.finish(name)?;
        Ok(value)
    }

    /// Serialize the container to its on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&(s.body.len() as u64).to_le_bytes());
            out.extend_from_slice(&s.crc.to_le_bytes());
            out.extend_from_slice(&s.body);
        }
        out
    }

    /// Parse the structural frame. Section CRCs are deferred to
    /// [`SnapshotFile::reader`] / [`SnapshotFile::decode`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let truncated = |context: &str| SnapError::Truncated {
            context: context.to_string(),
        };
        if bytes.len() < MAGIC.len() {
            return Err(SnapError::BadMagic);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let take_u32 = |pos: &mut usize, what: &str| -> Result<u32, SnapError> {
            let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| truncated(what))?;
            let arr: [u8; 4] = bytes[*pos..end].try_into().map_err(|_| truncated(what))?;
            *pos = end;
            Ok(u32::from_le_bytes(arr))
        };
        let take_u64 = |pos: &mut usize, what: &str| -> Result<u64, SnapError> {
            let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| truncated(what))?;
            let arr: [u8; 8] = bytes[*pos..end].try_into().map_err(|_| truncated(what))?;
            *pos = end;
            Ok(u64::from_le_bytes(arr))
        };
        let version = take_u32(&mut pos, "format version")?;
        if version != FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = take_u32(&mut pos, "section count")?;
        let mut sections = Vec::new();
        for i in 0..count {
            let name_len = take_u32(&mut pos, "section name length")? as usize;
            if name_len > bytes.len() - pos {
                return Err(truncated("section name"));
            }
            let name = std::str::from_utf8(&bytes[pos..pos + name_len])
                .map_err(|_| SnapError::Corrupt {
                    section: format!("#{i}"),
                    detail: "section name is not UTF-8".to_string(),
                })?
                .to_string();
            pos += name_len;
            let body_len = take_u64(&mut pos, "section body length")?;
            let crc = take_u32(&mut pos, "section crc")?;
            if body_len > (bytes.len() - pos) as u64 {
                return Err(truncated("section body"));
            }
            let body = bytes[pos..pos + body_len as usize].to_vec();
            pos += body_len as usize;
            sections.push(Section { name, crc, body });
        }
        if pos != bytes.len() {
            return Err(SnapError::TrailingData {
                section: "<container>".to_string(),
            });
        }
        Ok(Self { sections })
    }

    /// Write atomically: serialize to `<path>.tmp` then rename over
    /// `path`, so a process killed mid-checkpoint never leaves a partial
    /// snapshot under the final name.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    pub fn read_from(path: &Path) -> Result<Self, SnapError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotFile {
        let mut f = SnapshotFile::new();
        f.push("manifest", &42u64);
        f.push("body", &vec![1u32, 2, 3]);
        f
    }

    #[test]
    fn container_roundtrip() {
        let f = sample();
        let bytes = f.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.decode::<u64>("manifest").unwrap(), 42);
        assert_eq!(back.decode::<Vec<u32>>("body").unwrap(), vec![1, 2, 3]);
        assert_eq!(
            back.to_bytes(),
            bytes,
            "re-serialization must be byte-identical"
        );
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            SnapshotFile::from_bytes(&bytes).unwrap_err(),
            SnapError::BadMagic
        );
    }

    #[test]
    fn version_mismatch() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes).unwrap_err(),
            SnapError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        ));
    }

    #[test]
    fn body_flip_is_crc_mismatch() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1; // final byte of the "body" section body
        bytes[last] ^= 0x01;
        let f = SnapshotFile::from_bytes(&bytes).unwrap();
        assert!(matches!(
            f.decode::<Vec<u32>>("body").unwrap_err(),
            SnapError::CrcMismatch { .. }
        ));
        // The untouched section still decodes.
        assert_eq!(f.decode::<u64>("manifest").unwrap(), 42);
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotFile::from_bytes(&bytes[..cut])
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} parsed"));
            assert!(
                matches!(err, SnapError::BadMagic | SnapError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn missing_section() {
        let f = sample();
        assert!(matches!(
            f.decode::<u64>("nope").unwrap_err(),
            SnapError::MissingSection { .. }
        ));
    }

    #[test]
    fn trailing_container_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes).unwrap_err(),
            SnapError::TrailingData { .. }
        ));
    }

    #[test]
    fn atomic_write_roundtrip() {
        let dir = std::env::temp_dir().join(format!("edmsnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.edmsnap");
        sample().write_to(&path).unwrap();
        assert!(!path.with_extension("edmsnap.tmp").exists());
        let back = SnapshotFile::read_from(&path).unwrap();
        assert_eq!(back.decode::<u64>("manifest").unwrap(), 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Seeded journal mutator — the spec's self-test.
//!
//! A conformance checker that accepts everything is worthless, so every
//! gate run proves the spec *rejects*: [`mutate`] derives an illegal
//! journal from a legal one, one deterministic seeded edit per
//! mutation class, and the caller asserts [`crate::verify_journal`]
//! reports a line-numbered violation for each class in [`MUTATIONS`].

use edm_obs::json::{self, JsonValue};

/// Every mutation class the self-test must prove rejected.
pub const MUTATIONS: &[&str] = &[
    "drop_finish",        // remove a migration_finish: lifecycle left open
    "duplicate_start",    // start the same migration twice
    "reorder_events",     // swap adjacent events across a time step
    "retarget_remap",     // point a remap_update at the wrong OSD
    "retarget_migration", // send a migration to an out-of-group OSD
    "corrupt_trigger",    // flip the rsd-vs-lambda verdict
    "skip_erase",         // make a block's erase count jump
    "orphan_finish",      // finish a migration that is not in flight
];

/// Deterministic splitmix64 stream for seeded candidate selection.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Applies one seeded mutation of `class` to a JSONL journal. Returns
/// `None` when the journal has no site for that class (e.g. no
/// migration to retarget).
pub fn mutate(journal: &str, class: &str, seed: u64) -> Option<String> {
    let mut rng = Rng(seed);
    let mut lines: Vec<String> = journal.lines().map(str::to_string).collect();
    let parsed: Vec<Option<JsonValue>> = lines.iter().map(|l| json::parse(l).ok()).collect();

    let kind_of = |v: &JsonValue| {
        v.get("kind")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    };
    let of_kind = |kind: &str| -> Vec<usize> {
        parsed
            .iter()
            .enumerate()
            .filter(|(_, v)| v.as_ref().and_then(&kind_of).as_deref() == Some(kind))
            .map(|(i, _)| i)
            .collect()
    };
    let u64_field = |i: usize, key: &str| -> Option<u64> { parsed[i].as_ref()?.get(key)?.as_u64() };
    let osds = of_kind("run_meta")
        .first()
        .and_then(|&i| u64_field(i, "osds"))
        .unwrap_or(1)
        .max(1);

    match class {
        "drop_finish" => {
            let sites = of_kind("migration_finish");
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            lines.remove(i);
        }
        "duplicate_start" => {
            let sites = of_kind("migration_start");
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            let copy = lines[i].clone();
            lines.insert(i + 1, copy);
        }
        "reorder_events" => {
            // Adjacent event lines with strictly increasing timestamps:
            // swapping them breaks the canonical journal order.
            let sites: Vec<usize> = (0..lines.len().saturating_sub(1))
                .filter(
                    |&i| match (u64_field(i, "t_us"), u64_field(i + 1, "t_us")) {
                        (Some(a), Some(b)) => a < b,
                        _ => false,
                    },
                )
                .collect();
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            lines.swap(i, i + 1);
        }
        "retarget_remap" => {
            let sites = of_kind("remap_update");
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            let dest = u64_field(i, "dest")?;
            lines[i] = rewrite_u64(parsed[i].as_ref()?, "dest", (dest + 1) % osds)?;
        }
        "retarget_migration" => {
            let sites = of_kind("migration_start");
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            let source = u64_field(i, "source")?;
            let dest = u64_field(i, "dest")?;
            let mut new_dest = (dest + 1) % osds;
            if new_dest == source {
                new_dest = (new_dest + 1) % osds;
            }
            lines[i] = rewrite_u64(parsed[i].as_ref()?, "dest", new_dest)?;
        }
        "corrupt_trigger" => {
            let sites = of_kind("trigger_eval");
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            let triggered = parsed[i].as_ref()?.get("triggered")?.as_bool()?;
            lines[i] = rewrite(
                parsed[i].as_ref()?,
                "triggered",
                JsonValue::Bool(!triggered),
            )?;
        }
        "skip_erase" => {
            let sites = of_kind("block_erase");
            if sites.is_empty() {
                return None;
            }
            // Prefer a repeat erase of some (osd, block): bumping its
            // count breaks the +1 monotonicity. Fall back to zeroing a
            // first-seen count, which is impossible right after an
            // erase.
            let mut seen = std::collections::BTreeSet::new();
            let mut repeat = None;
            for &i in &sites {
                let site = (u64_field(i, "osd"), u64_field(i, "block"));
                if !seen.insert(site) {
                    repeat = Some(i);
                }
            }
            match repeat {
                Some(i) => {
                    let count = u64_field(i, "erase_count")?;
                    lines[i] = rewrite_u64(parsed[i].as_ref()?, "erase_count", count + 1)?;
                }
                None => {
                    let i = sites[rng.pick(sites.len())];
                    lines[i] = rewrite_u64(parsed[i].as_ref()?, "erase_count", 0)?;
                }
            }
        }
        "orphan_finish" => {
            let sites = of_kind("migration_finish");
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.pick(sites.len())];
            let copy = lines[i].clone();
            // Past its remap_update, the finish has no in-flight move.
            let at = (i + 2).min(lines.len());
            lines.insert(at, copy);
        }
        _ => return None,
    }
    let mut out = lines.join("\n");
    out.push('\n');
    Some(out)
}

fn rewrite_u64(v: &JsonValue, key: &str, value: u64) -> Option<String> {
    rewrite(v, key, JsonValue::Num(value as f64))
}

/// Re-renders an object line with one field replaced, preserving field
/// order.
fn rewrite(v: &JsonValue, key: &str, value: JsonValue) -> Option<String> {
    let JsonValue::Obj(fields) = v else {
        return None;
    };
    if !fields.iter().any(|(k, _)| k == key) {
        return None;
    }
    let fields: Vec<(String, JsonValue)> = fields
        .iter()
        .map(|(k, old)| {
            let v = if k == key { value.clone() } else { old.clone() };
            (k.clone(), v)
        })
        .collect();
    Some(render(&JsonValue::Obj(fields)))
}

/// Minimal JSON writer for mutated lines. Integer-valued numbers print
/// without a fraction (f64 `Display` is exact for journal magnitudes).
fn render(v: &JsonValue) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        JsonValue::Str(s) => render_str(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#![forbid(unsafe_code)]
//! edm-spec: an abstract EDM state machine replayed against the edm-obs
//! JSONL journal.
//!
//! [`verify_journal`] parses a journal produced by `edm-sim --obs
//! events` (or any [`edm_obs::MemoryRecorder::write_jsonl`] dump) and
//! checks that every event is a legal transition of the paper's
//! protocol:
//!
//! * **Placement** — objects only migrate within their SSD group
//!   (§III.C) unless the journal was recorded under the CMT baseline,
//!   which the paper's §III.D comparison explicitly allows to move
//!   cross-group; rebuild destinations always stay in the lost
//!   object's group.
//! * **Remap bijection** — every `remap_update` immediately follows the
//!   `migration_finish`/`rebuild_finish` that justifies it and agrees
//!   on `(object, dest)`, so the replayed location table stays exactly
//!   one entry per object.
//! * **Migration lifecycle** — `migration_start` requires a planned
//!   object at its tracked location on a live source; no object is
//!   in-flight twice; `migration_finish`/`migration_abort` must match
//!   the start byte-for-byte; aborts only happen when an endpoint
//!   device failed; nothing is left in flight at end of journal.
//! * **Trigger semantics** (§III.B.2) — a `trigger_eval` over the
//!   `erase_estimate` metric must be preceded by one `wear_model_input`
//!   per OSD, and the spec recomputes mean, RSD, the rsd-vs-λ verdict,
//!   and the source/destination partition bit-for-bit from those
//!   inputs (f64 `Display` round-trips exactly, so the comparison is
//!   exact equality, not a tolerance).
//! * **Plan consistency** — `plan_chosen` follows a same-tick
//!   `trigger_eval` of the same policy, its `sources` are exactly the
//!   tracked locations of its objects, EDM plans draw sources and
//!   destinations from the trigger partition, and the paired
//!   `plan_assessment` never projects a worse RSD (the
//!   trim-to-improvement contract).
//! * **GC/wear accounting** — `block_erase` counts are strictly
//!   monotone (+1) per `(osd, block)`; `wear_level_swap` conservation:
//!   once every block of a device has been seen, the reported spread
//!   equals max−min of the replayed counts.
//!
//! ## Shard-aware ordering
//!
//! Journals from the group-sharded engine are serialized in canonical
//! `(t_us, component)` order so sequential and sharded runs produce
//! byte-identical files. The spec checks that order (a reordered
//! journal is illegal), but the canonical sort may legally permute the
//! *true* interleaving of different scopes within one timestamp: an
//! untagged coordinator event sorts before component events that
//! happened earlier in the same microsecond. Scope-local checks
//! (per-object lifecycle, per-block wear, trigger math) are therefore
//! strict everywhere, while the two cross-scope checks — queue-depth
//! samples against the replayed queue model and the plan-sources ==
//! tracked-locations equality — are only enforced on untagged
//! journals, where serialization order is insertion order.

use std::collections::{BTreeMap, BTreeSet};

use edm_obs::json::{self, JsonValue};
use edm_obs::Event;

pub mod mutate;

/// Every journal event kind the state machine understands, in the
/// order they are declared in [`edm_obs::Event`]. The denominator of
/// the coverage report.
pub const EVENT_KINDS: &[&str] = &[
    "run_meta",
    "gc_invoked",
    "gc_victim",
    "block_erase",
    "wear_level_swap",
    "op_enqueue",
    "op_dequeue",
    "queue_depth",
    "remap_update",
    "wear_model_input",
    "trigger_eval",
    "plan_chosen",
    "plan_assessment",
    "migration_start",
    "migration_finish",
    "migration_abort",
    "device_failed",
    "rebuild_start",
    "rebuild_finish",
];

/// Metric-trailer record kinds appended after the event stream by
/// [`edm_obs::MemoryRecorder::write_jsonl`].
const TRAILER_KINDS: &[&str] = &["counter", "gauge", "hist"];

/// The first illegal transition found in a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// 1-based journal line number.
    pub line: usize,
    pub message: String,
}

/// Outcome of replaying one journal through the spec.
#[derive(Debug, Clone, Default)]
pub struct SpecReport {
    /// Non-empty journal lines examined (events + trailers).
    pub lines: usize,
    /// Event lines legally consumed by the state machine.
    pub events: u64,
    /// Metric trailer records (counters, gauges, histograms).
    pub trailers: u64,
    /// Distinct component tags seen (0 for untagged journals).
    pub components: usize,
    /// Per-kind event counts, for the coverage report.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// First violation, if any. `None` means the journal conforms.
    pub violation: Option<Violation>,
}

impl SpecReport {
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Distinct event kinds exercised by the journal.
    pub fn kinds_seen(&self) -> usize {
        self.kind_counts.len()
    }

    /// Total event kinds the state machine models.
    pub fn kinds_known() -> usize {
        EVENT_KINDS.len()
    }
}

/// Cluster shape from the `run_meta` preamble, plus the placement rule
/// mirrored from `edm-cluster` (the spec must not depend on the crates
/// it certifies, so the paper's placement math is restated here).
#[derive(Debug, Clone, Copy)]
struct Meta {
    osds: u32,
    groups: u32,
    objects_per_file: u32,
    capacity_bytes: u64,
    blocks_per_osd: u64,
}

impl Meta {
    fn group_of(&self, osd: u32) -> u32 {
        osd % self.groups
    }

    /// Home OSD of an object id: the paper's continuous rule when the
    /// group size divides the cluster, group-first otherwise.
    fn home_osd(&self, object: u64) -> u32 {
        let k = self.objects_per_file as u64;
        let file = object / k;
        let index = object % k;
        if self.osds.is_multiple_of(self.groups) {
            return ((file + index) % self.osds as u64) as u32;
        }
        let group = ((file + index) % self.groups as u64) as u32;
        let members = (self.osds - group).div_ceil(self.groups);
        let slot = (file / self.groups as u64) % members as u64;
        group + slot as u32 * self.groups
    }
}

#[derive(Debug, Clone, Copy)]
struct Move {
    source: u32,
    dest: u32,
    bytes: u64,
    line: usize,
}

#[derive(Debug, Clone, Copy)]
struct Rebuild {
    dest: u32,
    bytes: u64,
    line: usize,
    /// Set when any device fails while the rebuild is in flight:
    /// rebuild aborts are event-less, so from then on the spec cannot
    /// tell whether this rebuild is still running.
    maybe_aborted: bool,
}

#[derive(Debug, Clone)]
struct Trigger {
    t_us: u64,
    policy: &'static str,
    sources: Vec<u64>,
    destinations: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Plan {
    t_us: u64,
    line: usize,
    policy: &'static str,
    moved_bytes: u64,
    assessed: bool,
}

/// The incremental state machine. [`verify_journal`] drives it line by
/// line; `edm-fuzz` and tests may also drive it directly.
#[derive(Debug, Default)]
pub struct Spec {
    meta: Option<Meta>,
    /// Canonical ordering key of the previous event: `(t_us, comp+1)`
    /// with untagged events at component key 0.
    last_order: Option<(u64, u64)>,
    /// True once any component tag was seen; relaxes the two
    /// cross-scope checks (see module docs).
    tagged: bool,
    components: BTreeSet<u32>,

    /// Object → current OSD overlay; objects absent sit at their home.
    location: BTreeMap<u64, u32>,
    /// Object → size in bytes, pinned by the first event that carries
    /// it; every later mention must agree.
    object_bytes: BTreeMap<u64, u64>,
    /// A finish event was seen and the very next event must be the
    /// matching `remap_update`: `(finish line, object, dest)`.
    expect_remap: Option<(usize, u64, u32)>,

    failed: Vec<bool>,
    /// Replayed queue length per OSD; `None` after an event-less queue
    /// edit (device failure drain, migration-finish redirect).
    qlen: Vec<Option<u64>>,

    inflight: BTreeMap<u64, Move>,
    rebuilds: BTreeMap<u64, Rebuild>,
    /// Outstanding planned-move credit per object (plans may re-list
    /// an object that is already moving; `fire` skips it silently).
    planned: BTreeMap<u64, u64>,
    /// Net migrated/rebuilt bytes per OSD — a lower bound on usage
    /// growth, checked against the exported capacity.
    net_bytes: Vec<i128>,

    /// Pending `wear_model_input` batch: erase estimates indexed by
    /// OSD, which must be immediately followed by the `trigger_eval`
    /// that consumed them.
    wear_batch: Vec<f64>,
    wear_t: u64,
    last_trigger: Option<Trigger>,
    last_plan: Option<Plan>,
    policy_label: Option<&'static str>,

    /// `(osd, block)` → last journaled erase count.
    erase_counts: BTreeMap<(u32, u64), u64>,
    /// Distinct blocks seen per OSD, to know when wear-spread
    /// conservation becomes checkable.
    blocks_seen: Vec<u64>,
}

impl Spec {
    pub fn new() -> Spec {
        Spec::default()
    }

    fn meta(&self) -> Result<Meta, String> {
        self.meta
            .ok_or_else(|| "event before run_meta preamble".to_string())
    }

    /// Current OSD of an object under the replayed remap overlay.
    fn locate(&self, meta: &Meta, object: u64) -> u32 {
        self.location
            .get(&object)
            .copied()
            .unwrap_or_else(|| meta.home_osd(object))
    }

    fn check_osd(&self, meta: &Meta, what: &str, osd: u32) -> Result<(), String> {
        if osd >= meta.osds {
            return Err(format!(
                "{what} OSD {osd} out of range (cluster has {})",
                meta.osds
            ));
        }
        Ok(())
    }

    fn pin_bytes(&mut self, object: u64, bytes: u64, what: &str) -> Result<(), String> {
        match self.object_bytes.get(&object) {
            Some(&known) if known != bytes => Err(format!(
                "{what} carries {bytes} bytes for object {object} but the journal earlier pinned it at {known}"
            )),
            Some(_) => Ok(()),
            None => {
                self.object_bytes.insert(object, bytes);
                Ok(())
            }
        }
    }

    /// Mirror of the trigger evaluation (§III.B.2) over the journaled
    /// per-OSD erase estimates: mean, population RSD, rsd-vs-λ, and the
    /// source/destination partition, in the exact floating-point
    /// operation order of `edm_core::trigger::evaluate`.
    pub fn recompute_trigger(ecs: &[f64], lambda: f64) -> (f64, f64, bool, Vec<u64>, Vec<u64>) {
        let n = ecs.len();
        if n == 0 {
            return (0.0, 0.0, false, vec![], vec![]);
        }
        let mean = ecs.iter().sum::<f64>() / n as f64;
        let rsd = if mean > 0.0 {
            let var = ecs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64;
            var.sqrt() / mean
        } else {
            0.0
        };
        let triggered = rsd > lambda;
        let mut sources: Vec<usize> = (0..n).filter(|&i| ecs[i] - mean > mean * lambda).collect();
        sources.sort_by(|&a, &b| {
            ecs[b]
                .partial_cmp(&ecs[a])
                // edm-audit: allow(panic.expect, "erase estimates are checked finite before recomputation")
                .expect("finite")
        });
        let mut destinations: Vec<usize> = (0..n).filter(|&i| ecs[i] < mean).collect();
        destinations.sort_by(|&a, &b| {
            ecs[a]
                .partial_cmp(&ecs[b])
                // edm-audit: allow(panic.expect, "erase estimates are checked finite before recomputation")
                .expect("finite")
        });
        (
            rsd,
            mean,
            triggered,
            sources.into_iter().map(|i| i as u64).collect(),
            destinations.into_iter().map(|i| i as u64).collect(),
        )
    }

    /// Feeds one event line to the state machine.
    ///
    /// `scope_osd` is the line-level `"osd"` device scope (present on
    /// FTL events), `comp` the line-level `"comp"` shard tag.
    pub fn step(
        &mut self,
        line: usize,
        t_us: u64,
        scope_osd: Option<u32>,
        comp: Option<u32>,
        ev: &Event,
    ) -> Result<(), String> {
        // Canonical journal order: (t_us, component) non-decreasing,
        // untagged events first within a timestamp.
        let key = (t_us, comp.map_or(0u64, |c| c as u64 + 1));
        if let Some(prev) = self.last_order {
            if key < prev {
                return Err(format!(
                    "journal out of canonical order: (t_us={}, comp={:?}) after (t_us={}, comp key {})",
                    t_us, comp, prev.0, prev.1
                ));
            }
        }
        self.last_order = Some(key);
        if let Some(c) = comp {
            self.tagged = true;
            self.components.insert(c);
        }

        // A finish event pins the very next event to its remap_update.
        if let Some((fline, obj, dest)) = self.expect_remap {
            match ev {
                Event::RemapUpdate { object, dest: d } if *object == obj && *d == dest => {}
                _ => {
                    return Err(format!(
                        "finish at line {fline} must be followed immediately by remap_update(object={obj}, dest={dest}), found {}",
                        ev.kind()
                    ))
                }
            }
        }
        // A wear_model_input batch must run uninterrupted into the
        // trigger_eval that consumes it.
        if !self.wear_batch.is_empty()
            && !matches!(ev, Event::WearModelInput { .. } | Event::TriggerEval { .. })
        {
            return Err(format!(
                "wear_model_input batch ({} inputs) interrupted by {} before any trigger_eval",
                self.wear_batch.len(),
                ev.kind()
            ));
        }

        match *ev {
            Event::RunMeta {
                osds,
                groups,
                objects_per_file,
                capacity_bytes,
                blocks_per_osd,
            } => {
                if self.meta.is_some() {
                    return Err("duplicate run_meta".into());
                }
                if t_us != 0 {
                    return Err(format!(
                        "run_meta at t_us={t_us}, must open the journal at t=0"
                    ));
                }
                if osds == 0 || groups == 0 || objects_per_file == 0 {
                    return Err(format!(
                        "degenerate cluster shape: osds={osds} groups={groups} objects_per_file={objects_per_file}"
                    ));
                }
                if groups > osds {
                    return Err(format!("more groups ({groups}) than OSDs ({osds})"));
                }
                self.meta = Some(Meta {
                    osds,
                    groups,
                    objects_per_file,
                    capacity_bytes,
                    blocks_per_osd,
                });
                self.failed = vec![false; osds as usize];
                self.qlen = vec![None; osds as usize];
                self.net_bytes = vec![0; osds as usize];
                self.blocks_seen = vec![0; osds as usize];
            }

            // ---- FTL (device-scoped) events ----------------------------
            Event::GcInvoked {
                free_blocks,
                low_watermark,
                high_watermark,
            } => {
                let m = self.meta()?;
                let osd = scope_osd.ok_or("gc_invoked without device scope")?;
                self.check_osd(&m, "gc_invoked", osd)?;
                if low_watermark > high_watermark {
                    return Err(format!(
                        "gc_invoked watermarks inverted: low {low_watermark} > high {high_watermark}"
                    ));
                }
                if free_blocks > low_watermark {
                    return Err(format!(
                        "gc_invoked with {free_blocks} free blocks, above the low watermark {low_watermark}"
                    ));
                }
            }
            Event::GcVictim { block, .. } => {
                let m = self.meta()?;
                let osd = scope_osd.ok_or("gc_victim without device scope")?;
                self.check_osd(&m, "gc_victim", osd)?;
                if block >= m.blocks_per_osd {
                    return Err(format!(
                        "gc_victim block {block} out of range (device has {})",
                        m.blocks_per_osd
                    ));
                }
            }
            Event::BlockErase {
                block, erase_count, ..
            } => {
                let m = self.meta()?;
                let osd = scope_osd.ok_or("block_erase without device scope")?;
                self.check_osd(&m, "block_erase", osd)?;
                if block >= m.blocks_per_osd {
                    return Err(format!(
                        "block_erase block {block} out of range (device has {})",
                        m.blocks_per_osd
                    ));
                }
                match self.erase_counts.get(&(osd, block)) {
                    // Warm-up erases predate the journal, so the first
                    // observation may sit anywhere ≥ 1; after that the
                    // count must step by exactly one.
                    None => {
                        if erase_count == 0 {
                            return Err(format!(
                                "block_erase of osd {osd} block {block} with erase_count 0 (an erase just happened)"
                            ));
                        }
                        self.blocks_seen[osd as usize] += 1;
                    }
                    Some(&prev) => {
                        if erase_count != prev + 1 {
                            return Err(format!(
                                "block_erase count not monotone for osd {osd} block {block}: {prev} then {erase_count} (expected {})",
                                prev + 1
                            ));
                        }
                    }
                }
                self.erase_counts.insert((osd, block), erase_count);
            }
            Event::WearLevelSwap {
                block, wear_spread, ..
            } => {
                let m = self.meta()?;
                let osd = scope_osd.ok_or("wear_level_swap without device scope")?;
                self.check_osd(&m, "wear_level_swap", osd)?;
                if block >= m.blocks_per_osd {
                    return Err(format!(
                        "wear_level_swap block {block} out of range (device has {})",
                        m.blocks_per_osd
                    ));
                }
                // Conservation: once every block of the device has been
                // journaled, the replayed counts are the device's true
                // counts and the reported spread must equal max − min.
                if self.blocks_seen[osd as usize] == m.blocks_per_osd {
                    let counts = self
                        .erase_counts
                        .range((osd, 0)..=(osd, u64::MAX))
                        .map(|(_, &c)| c);
                    let (mut min, mut max) = (u64::MAX, 0u64);
                    for c in counts {
                        min = min.min(c);
                        max = max.max(c);
                    }
                    if wear_spread != max - min {
                        return Err(format!(
                            "wear_level_swap on osd {osd} reports spread {wear_spread} but the replayed erase counts span {}",
                            max - min
                        ));
                    }
                }
            }

            // ---- Queue events ------------------------------------------
            Event::OpEnqueue { osd, depth, .. } => {
                let m = self.meta()?;
                self.check_osd(&m, "op_enqueue", osd)?;
                if self.failed[osd as usize] {
                    return Err(format!("op_enqueue on failed OSD {osd}"));
                }
                if depth == 0 {
                    return Err("op_enqueue with depth 0 (depth includes the arrival)".into());
                }
                if let Some(q) = self.qlen[osd as usize] {
                    if depth != q + 1 {
                        return Err(format!(
                            "op_enqueue on osd {osd} reports depth {depth}, queue model says {}",
                            q + 1
                        ));
                    }
                }
                self.qlen[osd as usize] = Some(depth);
            }
            Event::OpDequeue { osd, depth } => {
                let m = self.meta()?;
                self.check_osd(&m, "op_dequeue", osd)?;
                if self.failed[osd as usize] {
                    return Err(format!("op_dequeue on failed OSD {osd}"));
                }
                if let Some(q) = self.qlen[osd as usize] {
                    if q == 0 || depth != q - 1 {
                        return Err(format!(
                            "op_dequeue on osd {osd} reports depth {depth}, queue model says {}",
                            q.saturating_sub(1)
                        ));
                    }
                }
                self.qlen[osd as usize] = Some(depth);
            }
            Event::QueueDepth { osd, depth } => {
                let m = self.meta()?;
                self.check_osd(&m, "queue_depth", osd)?;
                // Cross-scope check: the untagged tick sample may sort
                // before same-microsecond component events, so it is
                // only compared against the model on untagged journals.
                if !self.tagged {
                    if let Some(q) = self.qlen[osd as usize] {
                        // The sample counts waiting requests plus at
                        // most one in service.
                        if depth != q && depth != q + 1 {
                            return Err(format!(
                                "queue_depth sample on osd {osd} reports {depth}, queue model says {q} (+1 in service)"
                            ));
                        }
                    }
                }
            }

            // ---- Remap -------------------------------------------------
            Event::RemapUpdate { object, dest } => {
                let m = self.meta()?;
                self.check_osd(&m, "remap_update", dest)?;
                if self.expect_remap.take().is_none() {
                    return Err(format!(
                        "remap_update(object={object}, dest={dest}) without a directly preceding migration_finish/rebuild_finish"
                    ));
                }
                // The (object, dest) match against the finish was
                // enforced by the adjacency barrier above.
                self.location.insert(object, dest);
            }

            // ---- EDM decision events -----------------------------------
            Event::WearModelInput {
                osd,
                utilization,
                erase_estimate,
                ..
            } => {
                let m = self.meta()?;
                self.check_osd(&m, "wear_model_input", osd)?;
                if osd as usize != self.wear_batch.len() {
                    return Err(format!(
                        "wear_model_input batch out of order: osd {osd} at batch position {}",
                        self.wear_batch.len()
                    ));
                }
                if self.wear_batch.is_empty() {
                    self.wear_t = t_us;
                } else if t_us != self.wear_t {
                    return Err(format!(
                        "wear_model_input batch spans t_us {} and {t_us}",
                        self.wear_t
                    ));
                }
                if !(utilization.is_finite() && utilization >= 0.0) {
                    return Err(format!(
                        "wear_model_input utilization {utilization} not finite/non-negative"
                    ));
                }
                if !(erase_estimate.is_finite() && erase_estimate >= 0.0) {
                    return Err(format!(
                        "wear_model_input erase_estimate {erase_estimate} not finite/non-negative"
                    ));
                }
                self.wear_batch.push(erase_estimate);
            }
            Event::TriggerEval {
                policy,
                metric,
                rsd,
                lambda,
                mean,
                triggered,
                ref sources,
                ref destinations,
            } => {
                let m = self.meta()?;
                self.check_policy(policy)?;
                if !(rsd.is_finite() && rsd >= 0.0) {
                    return Err(format!("trigger_eval rsd {rsd} not finite/non-negative"));
                }
                if !(mean.is_finite() && mean >= 0.0) {
                    return Err(format!("trigger_eval mean {mean} not finite/non-negative"));
                }
                if !(lambda.is_finite() && lambda >= 0.0) {
                    return Err(format!(
                        "trigger_eval lambda {lambda} not finite/non-negative"
                    ));
                }
                if triggered != (rsd > lambda) {
                    return Err(format!(
                        "trigger_eval verdict inconsistent: triggered={triggered} but rsd {rsd} vs lambda {lambda}"
                    ));
                }
                for &s in sources.iter().chain(destinations.iter()) {
                    if s >= m.osds as u64 {
                        return Err(format!("trigger_eval names OSD {s}, out of range"));
                    }
                }
                if let Some(both) = sources.iter().find(|s| destinations.contains(s)) {
                    return Err(format!(
                        "trigger_eval lists OSD {both} as both source and destination"
                    ));
                }
                if metric == "erase_estimate" {
                    // The wear-model inputs for this evaluation must
                    // directly precede it — one per OSD, same tick.
                    if self.wear_batch.len() != m.osds as usize || self.wear_t != t_us {
                        return Err(format!(
                            "trigger_eval over erase_estimate needs {} same-tick wear_model_input records, found {}",
                            m.osds,
                            self.wear_batch.len()
                        ));
                    }
                    let (e_rsd, e_mean, e_trig, e_src, e_dst) =
                        Spec::recompute_trigger(&self.wear_batch, lambda);
                    if rsd != e_rsd || mean != e_mean || triggered != e_trig {
                        return Err(format!(
                            "trigger_eval disagrees with the wear_model_input stream: journal (rsd={rsd}, mean={mean}, triggered={triggered}), recomputed (rsd={e_rsd}, mean={e_mean}, triggered={e_trig})"
                        ));
                    }
                    if *sources != e_src || *destinations != e_dst {
                        return Err(format!(
                            "trigger_eval partition disagrees with the wear_model_input stream: journal sources {sources:?} dests {destinations:?}, recomputed sources {e_src:?} dests {e_dst:?}"
                        ));
                    }
                    self.wear_batch.clear();
                } else if !self.wear_batch.is_empty() {
                    return Err(format!(
                        "trigger_eval over {metric} arrived while a wear_model_input batch was pending"
                    ));
                }
                self.last_trigger = Some(Trigger {
                    t_us,
                    policy,
                    sources: sources.clone(),
                    destinations: destinations.clone(),
                });
            }
            Event::PlanChosen {
                policy,
                moves,
                moved_bytes,
                ref objects,
                ref sources,
                ref destinations,
            } => {
                let m = self.meta()?;
                self.check_policy(policy)?;
                if let Some(prev) = self.last_plan {
                    if is_edm(prev.policy) && !prev.assessed {
                        return Err(format!(
                            "plan_chosen at line {} was never assessed before the next plan",
                            prev.line
                        ));
                    }
                }
                let trig = self
                    .last_trigger
                    .as_ref()
                    .ok_or_else(|| "plan_chosen without a preceding trigger_eval".to_string())?;
                if trig.t_us != t_us || trig.policy != policy {
                    return Err(format!(
                        "plan_chosen({policy}) at t_us={t_us} does not follow its own trigger_eval ({} at t_us={})",
                        trig.policy, trig.t_us
                    ));
                }
                if moves != objects.len() as u64 {
                    return Err(format!(
                        "plan_chosen moves={moves} but lists {} objects",
                        objects.len()
                    ));
                }
                if !is_sorted_strict(sources) || !is_sorted_strict(destinations) {
                    return Err(
                        "plan_chosen source/destination sets not sorted and deduplicated".into(),
                    );
                }
                for &o in sources.iter().chain(destinations.iter()) {
                    if o >= m.osds as u64 {
                        return Err(format!("plan_chosen names OSD {o}, out of range"));
                    }
                }
                if is_edm(policy) {
                    // EDM draws its endpoints from the trigger partition.
                    if let Some(s) = sources.iter().find(|s| !trig.sources.contains(s)) {
                        return Err(format!(
                            "plan_chosen source OSD {s} is not a trigger source"
                        ));
                    }
                    if let Some(d) = destinations.iter().find(|d| !trig.destinations.contains(d)) {
                        return Err(format!(
                            "plan_chosen destination OSD {d} is not a trigger destination"
                        ));
                    }
                }
                let mut seen = BTreeSet::new();
                let mut expected_sources = BTreeSet::new();
                for &obj in objects {
                    if !seen.insert(obj) {
                        return Err(format!("plan_chosen moves object {obj} twice"));
                    }
                    expected_sources.insert(self.locate(&m, obj) as u64);
                }
                // Cross-scope check: the plan observed engine state that
                // same-microsecond tagged remaps may trail in canonical
                // order, so exact source-set equality only holds on
                // untagged journals.
                if !self.tagged {
                    let expected: Vec<u64> = expected_sources.into_iter().collect();
                    if *sources != expected {
                        return Err(format!(
                            "plan_chosen sources {sources:?} disagree with the tracked object locations {expected:?}"
                        ));
                    }
                }
                for &obj in objects {
                    *self.planned.entry(obj).or_insert(0) += 1;
                }
                self.last_plan = Some(Plan {
                    t_us,
                    line,
                    policy,
                    moved_bytes,
                    assessed: false,
                });
            }
            Event::PlanAssessment {
                rsd_before,
                rsd_after,
                moved_bytes,
                ..
            } => {
                self.meta()?;
                let plan = self
                    .last_plan
                    .as_mut()
                    .ok_or_else(|| "plan_assessment without a preceding plan_chosen".to_string())?;
                if plan.t_us != t_us {
                    return Err(format!(
                        "plan_assessment at t_us={t_us} does not pair with the plan_chosen at t_us={}",
                        plan.t_us
                    ));
                }
                if plan.assessed {
                    return Err("duplicate plan_assessment for one plan_chosen".into());
                }
                if !is_edm(plan.policy) {
                    return Err(format!(
                        "plan_assessment after a {} plan (only EDM re-runs the wear model)",
                        plan.policy
                    ));
                }
                if !(rsd_before.is_finite()
                    && rsd_before >= 0.0
                    && rsd_after.is_finite()
                    && rsd_after >= 0.0)
                {
                    return Err(format!(
                        "plan_assessment RSDs not finite/non-negative: before {rsd_before}, after {rsd_after}"
                    ));
                }
                // Trim-to-improvement contract: a published plan never
                // projects a worse imbalance.
                if rsd_after > rsd_before + 1e-9 {
                    return Err(format!(
                        "plan_assessment projects a worse RSD: {rsd_before} -> {rsd_after}"
                    ));
                }
                if moved_bytes != plan.moved_bytes {
                    return Err(format!(
                        "plan_assessment moved_bytes {moved_bytes} disagrees with plan_chosen {}",
                        plan.moved_bytes
                    ));
                }
                plan.assessed = true;
            }

            // ---- Migration lifecycle -----------------------------------
            Event::MigrationStart {
                object,
                source,
                dest,
                bytes,
            } => {
                let m = self.meta()?;
                self.check_osd(&m, "migration_start source", source)?;
                self.check_osd(&m, "migration_start dest", dest)?;
                if source == dest {
                    return Err(format!(
                        "migration_start of object {object} onto its own OSD {source}"
                    ));
                }
                if self.failed[source as usize] || self.failed[dest as usize] {
                    return Err(format!(
                        "migration_start of object {object} touches a failed device ({source} -> {dest})"
                    ));
                }
                let loc = self.locate(&m, object);
                if loc != source {
                    return Err(format!(
                        "migration_start claims object {object} is on OSD {source}, but it is on {loc}"
                    ));
                }
                // Intra-group rule (§III.C); the CMT baseline is the
                // paper's explicit cross-group comparison point.
                if self.policy_label != Some("CMT") && m.group_of(source) != m.group_of(dest) {
                    return Err(format!(
                        "migration_start of object {object} crosses groups: {source} (group {}) -> {dest} (group {})",
                        m.group_of(source),
                        m.group_of(dest)
                    ));
                }
                match self.planned.get_mut(&object) {
                    Some(credit) if *credit > 0 => *credit -= 1,
                    _ => {
                        return Err(format!(
                            "migration_start of object {object} without a plan_chosen listing it"
                        ))
                    }
                }
                if self.inflight.contains_key(&object) {
                    return Err(format!("object {object} is already migrating"));
                }
                if let Some(r) = self.rebuilds.get(&object) {
                    if !r.maybe_aborted {
                        return Err(format!("object {object} is mid-rebuild and cannot migrate"));
                    }
                }
                self.pin_bytes(object, bytes, "migration_start")?;
                self.inflight.insert(
                    object,
                    Move {
                        source,
                        dest,
                        bytes,
                        line,
                    },
                );
            }
            Event::MigrationFinish {
                object,
                source,
                dest,
                bytes,
            } => {
                let m = self.meta()?;
                let mv = self.inflight.remove(&object).ok_or_else(|| {
                    format!("migration_finish of object {object} that never started")
                })?;
                if (mv.source, mv.dest, mv.bytes) != (source, dest, bytes) {
                    return Err(format!(
                        "migration_finish of object {object} ({source} -> {dest}, {bytes} B) does not match its start at line {} ({} -> {}, {} B)",
                        mv.line, mv.source, mv.dest, mv.bytes
                    ));
                }
                if self.failed[dest as usize] {
                    return Err(format!(
                        "migration_finish of object {object} onto failed OSD {dest} (should have aborted)"
                    ));
                }
                self.net_bytes[dest as usize] += bytes as i128;
                self.net_bytes[source as usize] -= bytes as i128;
                if self.net_bytes[dest as usize] > m.capacity_bytes as i128 {
                    return Err(format!(
                        "OSD {dest} accumulated more migrated bytes than its {} B capacity",
                        m.capacity_bytes
                    ));
                }
                // The source queue was edited without events (queued
                // mover chunks redirected), so its replayed length is
                // no longer known.
                self.qlen[source as usize] = None;
                self.expect_remap = Some((line, object, dest));
            }
            Event::MigrationAbort {
                object,
                source,
                dest,
                bytes,
            } => {
                self.meta()?;
                let mv = self.inflight.remove(&object).ok_or_else(|| {
                    format!("migration_abort of object {object} that never started")
                })?;
                if (mv.source, mv.dest, mv.bytes) != (source, dest, bytes) {
                    return Err(format!(
                        "migration_abort of object {object} ({source} -> {dest}, {bytes} B) does not match its start at line {} ({} -> {}, {} B)",
                        mv.line, mv.source, mv.dest, mv.bytes
                    ));
                }
                if !self.failed[source as usize] && !self.failed[dest as usize] {
                    return Err(format!(
                        "migration_abort of object {object} with both endpoints alive"
                    ));
                }
            }

            // ---- Failure / recovery ------------------------------------
            Event::DeviceFailed { osd } => {
                let m = self.meta()?;
                self.check_osd(&m, "device_failed", osd)?;
                if self.failed[osd as usize] {
                    return Err(format!("device_failed for already-failed OSD {osd}"));
                }
                self.failed[osd as usize] = true;
                // Queue drains and redirects around a failure are
                // event-less; every replayed queue length is stale.
                for q in &mut self.qlen {
                    *q = None;
                }
                // Rebuild aborts are event-less too: any in-flight
                // rebuild may silently die with this failure.
                for r in self.rebuilds.values_mut() {
                    r.maybe_aborted = true;
                }
            }
            Event::RebuildStart {
                object,
                dest,
                bytes,
            } => {
                let m = self.meta()?;
                self.check_osd(&m, "rebuild_start", dest)?;
                if self.failed[dest as usize] {
                    return Err(format!(
                        "rebuild_start of object {object} onto failed OSD {dest}"
                    ));
                }
                let loc = self.locate(&m, object);
                if !self.failed[loc as usize] {
                    return Err(format!(
                        "rebuild_start of object {object} whose OSD {loc} is alive"
                    ));
                }
                if m.group_of(dest) != m.group_of(loc) {
                    return Err(format!(
                        "rebuild_start of object {object} leaves its group: {loc} (group {}) -> {dest} (group {})",
                        m.group_of(loc),
                        m.group_of(dest)
                    ));
                }
                if let Some(r) = self.rebuilds.get(&object) {
                    if !r.maybe_aborted {
                        return Err(format!("object {object} is already being rebuilt"));
                    }
                }
                if self.inflight.contains_key(&object) {
                    return Err(format!(
                        "rebuild_start of object {object} while it is mid-migration (the failure must abort the move first)"
                    ));
                }
                self.pin_bytes(object, bytes, "rebuild_start")?;
                self.rebuilds.insert(
                    object,
                    Rebuild {
                        dest,
                        bytes,
                        line,
                        maybe_aborted: false,
                    },
                );
            }
            Event::RebuildFinish {
                object,
                dest,
                bytes,
            } => {
                let m = self.meta()?;
                let rb = self.rebuilds.remove(&object).ok_or_else(|| {
                    format!("rebuild_finish of object {object} that never started")
                })?;
                if (rb.dest, rb.bytes) != (dest, bytes) {
                    return Err(format!(
                        "rebuild_finish of object {object} (dest {dest}, {bytes} B) does not match its start at line {} (dest {}, {} B)",
                        rb.line, rb.dest, rb.bytes
                    ));
                }
                if self.failed[dest as usize] {
                    return Err(format!(
                        "rebuild_finish of object {object} onto failed OSD {dest}"
                    ));
                }
                self.net_bytes[dest as usize] += bytes as i128;
                if self.net_bytes[dest as usize] > m.capacity_bytes as i128 {
                    return Err(format!(
                        "OSD {dest} accumulated more rebuilt bytes than its {} B capacity",
                        m.capacity_bytes
                    ));
                }
                self.expect_remap = Some((line, object, dest));
            }
        }
        Ok(())
    }

    /// One migration policy drives a run; every journaled label must
    /// agree with the first one seen.
    fn check_policy(&mut self, policy: &'static str) -> Result<(), String> {
        match self.policy_label {
            None => {
                self.policy_label = Some(policy);
                Ok(())
            }
            Some(p) if p == policy => Ok(()),
            Some(p) => Err(format!(
                "policy label changed mid-journal: {p} then {policy}"
            )),
        }
    }

    /// End-of-journal obligations: nothing may be left half-done.
    pub fn finish(&self) -> Result<(), String> {
        if let Some((fline, obj, dest)) = self.expect_remap {
            return Err(format!(
                "journal ends between the finish at line {fline} and its remap_update(object={obj}, dest={dest})"
            ));
        }
        if !self.wear_batch.is_empty() {
            return Err(format!(
                "journal ends with a dangling wear_model_input batch of {} records",
                self.wear_batch.len()
            ));
        }
        if let Some((&obj, mv)) = self.inflight.iter().next() {
            return Err(format!(
                "journal ends with object {obj} still migrating (started at line {})",
                mv.line
            ));
        }
        if let Some((&obj, rb)) = self.rebuilds.iter().find(|(_, r)| !r.maybe_aborted) {
            return Err(format!(
                "journal ends with object {obj} still rebuilding (started at line {})",
                rb.line
            ));
        }
        if let Some(plan) = self.last_plan {
            if is_edm(plan.policy) && !plan.assessed {
                return Err(format!(
                    "journal ends with the plan_chosen at line {} never assessed",
                    plan.line
                ));
            }
        }
        Ok(())
    }
}

fn is_edm(policy: &str) -> bool {
    policy == "EDM-HDF" || policy == "EDM-CDF"
}

fn is_sorted_strict(v: &[u64]) -> bool {
    v.windows(2).all(|w| match w {
        [a, b] => a < b,
        _ => true,
    })
}

/// Replays a JSONL journal through the state machine, stopping at the
/// first violation.
pub fn verify_journal(text: &str) -> SpecReport {
    let mut spec = Spec::new();
    let mut report = SpecReport::default();
    let mut last_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        last_line = line;
        report.lines += 1;
        macro_rules! fail {
            ($($arg:tt)*) => {{
                report.violation = Some(Violation { line, message: format!($($arg)*) });
                return report;
            }};
        }
        let v = match json::parse(raw) {
            Ok(v) => v,
            Err(e) => fail!("unparseable JSON: {e}"),
        };
        let Some(kind) = v.get("kind").and_then(JsonValue::as_str) else {
            fail!("record without a \"kind\" field");
        };
        if TRAILER_KINDS.contains(&kind) {
            report.trailers += 1;
            continue;
        }
        if report.trailers > 0 {
            fail!("event record after the metric trailer section");
        }
        let Some(t_us) = v.get("t_us").and_then(JsonValue::as_u64) else {
            fail!("event without a t_us timestamp");
        };
        let scope_osd = match v.get("osd").map(JsonValue::as_u64) {
            None => None,
            Some(Some(o)) if o <= u32::MAX as u64 => Some(o as u32),
            _ => fail!("malformed device scope \"osd\""),
        };
        let comp = match v.get("comp").map(JsonValue::as_u64) {
            None => None,
            Some(Some(c)) if c <= u32::MAX as u64 => Some(c as u32),
            _ => fail!("malformed component tag \"comp\""),
        };
        let ev = match Event::from_json(&v) {
            Ok(ev) => ev,
            Err(e) => fail!("malformed {kind} event: {e}"),
        };
        report.events += 1;
        *report.kind_counts.entry(ev.kind()).or_insert(0) += 1;
        if let Err(message) = spec.step(line, t_us, scope_osd, comp, &ev) {
            report.components = spec.components.len();
            report.violation = Some(Violation { line, message });
            return report;
        }
    }
    report.components = spec.components.len();
    if let Err(message) = spec.finish() {
        report.violation = Some(Violation {
            line: last_line,
            message,
        });
    }
    report
}

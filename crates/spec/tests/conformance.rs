//! The spec's own conformance battery: a hand-built legal journal
//! covering every event kind must be accepted, and every seeded
//! mutation class must be rejected with a line-numbered violation.

use edm_obs::{Event, MemoryRecorder, ObsLevel, Recorder};
use edm_spec::{mutate, verify_journal, Spec, SpecReport};

fn jsonl(rec: &MemoryRecorder) -> String {
    let mut out = Vec::new();
    rec.write_jsonl(&mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn meta_event() -> Event {
    Event::RunMeta {
        osds: 4,
        groups: 2,
        objects_per_file: 2,
        capacity_bytes: 1 << 30,
        blocks_per_osd: 8,
    }
}

/// One EDM planning round: per-OSD wear inputs, the trigger evaluation
/// they imply (recomputed through the same mirror the spec replays, so
/// the journal is exactly self-consistent), a one-move plan, and its
/// assessment.
fn plan_round(r: &mut MemoryRecorder, t: u64, ecs: [f64; 4], object: u64, source: u64, dest: u64) {
    r.set_now(t);
    for (osd, ec) in ecs.iter().enumerate() {
        r.event(Event::WearModelInput {
            osd: osd as u32,
            wc_pages: 100,
            utilization: 0.5,
            erase_estimate: *ec,
        });
    }
    let (rsd, mean, triggered, sources, destinations) = Spec::recompute_trigger(&ecs, 0.1);
    r.event(Event::TriggerEval {
        policy: "EDM-HDF",
        metric: "erase_estimate",
        rsd,
        lambda: 0.1,
        mean,
        triggered,
        sources,
        destinations,
    });
    r.event(Event::PlanChosen {
        policy: "EDM-HDF",
        moves: 1,
        moved_bytes: 4096,
        objects: vec![object],
        sources: vec![source],
        destinations: vec![dest],
    });
    r.event(Event::PlanAssessment {
        rsd_before: rsd,
        rsd_after: rsd * 0.5,
        moved_bytes: 4096,
        moved_write_pages: 1,
    });
}

/// A small legal journal exercising every event kind: a GC pass, two
/// EDM planning rounds, a completed migration, an aborted migration
/// (source device failure), a RAID-5 rebuild after a second failure,
/// and a repeat block erase for the wear-monotonicity site.
fn sample_journal() -> String {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(meta_event());

    r.set_now(10);
    r.event(Event::OpEnqueue {
        osd: 0,
        depth: 1,
        mover: false,
    });
    r.event(Event::OpDequeue { osd: 0, depth: 0 });
    r.set_device(Some(0));
    r.event(Event::GcInvoked {
        free_blocks: 1,
        low_watermark: 2,
        high_watermark: 4,
    });
    r.event(Event::GcVictim {
        block: 3,
        valid_pages: 2,
        policy: "greedy",
    });
    r.event(Event::BlockErase {
        block: 3,
        erase_count: 1,
        moved_pages: 2,
    });
    r.set_device(None);

    // Object 0 (file 0, index 0) sits at home OSD 0; move it within
    // group 0 to OSD 2.
    plan_round(&mut r, 20, [300.0, 100.0, 100.0, 100.0], 0, 0, 2);
    r.set_now(30);
    r.event(Event::MigrationStart {
        object: 0,
        source: 0,
        dest: 2,
        bytes: 4096,
    });
    r.set_now(40);
    r.event(Event::MigrationFinish {
        object: 0,
        source: 0,
        dest: 2,
        bytes: 4096,
    });
    r.event(Event::RemapUpdate { object: 0, dest: 2 });

    // Object 4 (file 2, index 0) sits at home OSD 2; its move aborts
    // when OSD 2 dies mid-copy.
    plan_round(&mut r, 42, [100.0, 100.0, 300.0, 100.0], 4, 2, 0);
    r.set_now(43);
    r.event(Event::MigrationStart {
        object: 4,
        source: 2,
        dest: 0,
        bytes: 4096,
    });
    r.set_now(44);
    r.event(Event::DeviceFailed { osd: 2 });
    r.event(Event::MigrationAbort {
        object: 4,
        source: 2,
        dest: 0,
        bytes: 4096,
    });

    // A second failure loses object 1 (home OSD 1); rebuild it within
    // group 1 onto OSD 3.
    r.set_now(50);
    r.event(Event::DeviceFailed { osd: 1 });
    r.event(Event::RebuildStart {
        object: 1,
        dest: 3,
        bytes: 2048,
    });
    r.set_now(60);
    r.event(Event::RebuildFinish {
        object: 1,
        dest: 3,
        bytes: 2048,
    });
    r.event(Event::RemapUpdate { object: 1, dest: 3 });

    r.set_now(70);
    r.set_device(Some(0));
    r.event(Event::BlockErase {
        block: 3,
        erase_count: 2,
        moved_pages: 0,
    });
    r.event(Event::WearLevelSwap {
        block: 1,
        valid_pages: 4,
        wear_spread: 2,
    });
    r.set_device(None);
    r.event(Event::QueueDepth { osd: 0, depth: 0 });

    r.counter("sim.ticks", 3);
    jsonl(&r)
}

fn assert_ok(report: &SpecReport) {
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
}

#[test]
fn sample_journal_is_conformant_and_covers_every_kind() {
    let journal = sample_journal();
    let report = verify_journal(&journal);
    assert_ok(&report);
    assert_eq!(report.events, 33);
    assert!(report.trailers >= 1, "counter trailer expected");
    assert_eq!(
        report.lines,
        report.trailers as usize + report.events as usize
    );
    assert_eq!(report.components, 0);
    assert_eq!(
        report.kinds_seen(),
        SpecReport::kinds_known(),
        "sample journal must exercise the full transition function, saw {:?}",
        report.kind_counts.keys().collect::<Vec<_>>()
    );
}

#[test]
fn every_mutation_class_is_rejected_with_a_line_number() {
    let journal = sample_journal();
    assert_ok(&verify_journal(&journal));
    let total = journal.lines().count();
    for &class in mutate::MUTATIONS {
        for seed in 0..4u64 {
            let mutated = mutate::mutate(&journal, class, seed)
                .unwrap_or_else(|| panic!("no mutation site for class {class}"));
            assert_ne!(mutated, journal, "{class} seed {seed} was a no-op");
            let report = verify_journal(&mutated);
            let v = report
                .violation
                .unwrap_or_else(|| panic!("mutated journal accepted: {class} seed {seed}"));
            assert!(
                v.line >= 1 && v.line <= total + 1,
                "{class} seed {seed}: violation line {} out of range ({})",
                v.line,
                v.message
            );
        }
    }
}

#[test]
fn empty_journal_is_trivially_conformant() {
    let report = verify_journal("");
    assert_ok(&report);
    assert_eq!(report.events, 0);
}

#[test]
fn event_after_trailer_section_is_rejected() {
    let mut journal = sample_journal();
    journal.push_str("{\"t_us\":80,\"kind\":\"queue_depth\",\"osd\":0,\"depth\":0}\n");
    let v = verify_journal(&journal).violation.expect("must reject");
    assert!(v.message.contains("trailer"), "{}", v.message);
}

#[test]
fn event_before_run_meta_is_rejected() {
    let journal = "{\"t_us\":5,\"kind\":\"queue_depth\",\"osd\":0,\"depth\":0}\n";
    let v = verify_journal(journal).violation.expect("must reject");
    assert_eq!(v.line, 1);
    assert!(v.message.contains("run_meta"), "{}", v.message);
}

#[test]
fn duplicate_run_meta_is_rejected() {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(meta_event());
    r.event(meta_event());
    let v = verify_journal(&jsonl(&r)).violation.expect("must reject");
    assert_eq!(v.line, 2);
}

#[test]
fn rebuild_beyond_capacity_is_rejected() {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(Event::RunMeta {
        osds: 4,
        groups: 2,
        objects_per_file: 2,
        capacity_bytes: 1000,
        blocks_per_osd: 8,
    });
    r.set_now(10);
    r.event(Event::DeviceFailed { osd: 1 });
    r.event(Event::RebuildStart {
        object: 1,
        dest: 3,
        bytes: 4096,
    });
    r.set_now(20);
    r.event(Event::RebuildFinish {
        object: 1,
        dest: 3,
        bytes: 4096,
    });
    r.event(Event::RemapUpdate { object: 1, dest: 3 });
    let v = verify_journal(&jsonl(&r)).violation.expect("must reject");
    assert!(v.message.contains("capacity"), "{}", v.message);
}

#[test]
fn queue_model_catches_a_depth_jump() {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(meta_event());
    r.set_now(10);
    r.event(Event::OpEnqueue {
        osd: 0,
        depth: 1,
        mover: false,
    });
    r.event(Event::OpEnqueue {
        osd: 0,
        depth: 3,
        mover: false,
    });
    let v = verify_journal(&jsonl(&r)).violation.expect("must reject");
    assert!(v.message.contains("queue model"), "{}", v.message);
}

#[test]
fn gc_above_low_watermark_is_rejected() {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(meta_event());
    r.set_now(10);
    r.set_device(Some(0));
    r.event(Event::GcInvoked {
        free_blocks: 5,
        low_watermark: 2,
        high_watermark: 4,
    });
    let v = verify_journal(&jsonl(&r)).violation.expect("must reject");
    assert!(v.message.contains("watermark"), "{}", v.message);
}

#[test]
fn trigger_verdict_must_match_rsd_vs_lambda() {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(meta_event());
    r.set_now(10);
    r.event(Event::TriggerEval {
        policy: "CMT",
        metric: "ewma_latency_us",
        rsd: 0.05,
        lambda: 0.1,
        mean: 100.0,
        triggered: true,
        sources: vec![],
        destinations: vec![],
    });
    let v = verify_journal(&jsonl(&r)).violation.expect("must reject");
    assert!(v.message.contains("triggered"), "{}", v.message);
}

#[test]
fn out_of_range_osd_is_rejected() {
    let mut r = MemoryRecorder::new(ObsLevel::Events);
    r.set_now(0);
    r.event(meta_event());
    r.set_now(10);
    r.event(Event::QueueDepth { osd: 9, depth: 0 });
    let v = verify_journal(&jsonl(&r)).violation.expect("must reject");
    assert!(v.message.contains("out of range"), "{}", v.message);
}

#[test]
fn unparseable_line_is_line_numbered() {
    let journal = sample_journal() + "not json\n";
    let v = verify_journal(&journal).violation.expect("must reject");
    assert_eq!(v.line, sample_journal().lines().count() + 1);
    assert!(v.message.contains("JSON"), "{}", v.message);
}

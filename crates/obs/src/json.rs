//! Hand-rolled JSON emit and parse, sized for the event journal.
//!
//! The workspace has no crates-io access, and the journal schema is flat
//! (one object per line, primitive or integer-array values), so a small
//! writer/parser pair keeps `edm-obs` dependency-free. The parser accepts
//! general JSON — nested objects and arrays included — because
//! `edm-probe` and the check-script smoke step use it to validate that
//! every journal line parses.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Emit
// ---------------------------------------------------------------------------

/// Appends `"key":` to a partially built object, inserting a comma when the
/// object already has fields (i.e. does not end with `{`).
fn push_key(out: &mut String, key: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    push_escaped(out, key);
    out.push(':');
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub fn field_str(out: &mut String, key: &str, value: &str) {
    push_key(out, key);
    push_escaped(out, value);
}

pub fn field_u64(out: &mut String, key: &str, value: u64) {
    push_key(out, key);
    let _ = write!(out, "{value}");
}

pub fn field_f64(out: &mut String, key: &str, value: f64) {
    push_key(out, key);
    if value.is_finite() {
        // Display for f64 is the shortest representation that round-trips,
        // which is both valid JSON and loss-free.
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

pub fn field_bool(out: &mut String, key: &str, value: bool) {
    push_key(out, key);
    out.push_str(if value { "true" } else { "false" });
}

/// Appends `"key":` followed by a pre-rendered JSON value.
pub fn field_raw(out: &mut String, key: &str, raw_json: &str) {
    push_key(out, key);
    out.push_str(raw_json);
}

pub fn field_arr_u64(out: &mut String, key: &str, values: &[u64]) {
    push_key(out, key);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    // edm-audit: allow(panic.expect, "slice bounds come from an ASCII-only scan of the same buffer")
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                // edm-audit: allow(panic.expect, "guarded by the emptiness check in the enclosing loop condition")
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_round_trip() {
        let mut out = String::from("{");
        field_str(&mut out, "kind", "trigger_eval");
        field_u64(&mut out, "t_us", 12345);
        field_f64(&mut out, "rsd", 0.3125);
        field_bool(&mut out, "triggered", true);
        field_arr_u64(&mut out, "sources", &[3, 1, 4]);
        out.push('}');

        let v = parse(&out).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("trigger_eval"));
        assert_eq!(v.get("t_us").unwrap().as_u64(), Some(12345));
        assert_eq!(v.get("rsd").unwrap().as_f64(), Some(0.3125));
        assert_eq!(v.get("triggered").unwrap().as_bool(), Some(true));
        let srcs: Vec<u64> = v
            .get("sources")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(srcs, vec![3, 1, 4]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::from("{");
        field_str(&mut out, "name", "a\"b\\c\nd\te\u{1}");
        out.push('}');
        let v = parse(&out).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::from("{");
        field_f64(&mut out, "x", f64::NAN);
        field_f64(&mut out, "y", f64::INFINITY);
        out.push('}');
        let v = parse(&out).unwrap();
        assert_eq!(v.get("x"), Some(&JsonValue::Null));
        assert_eq!(v.get("y"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a":[{"b":1.5e3},null,[true,false]],"c":-7}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("b").unwrap().as_f64(), Some(1500.0));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-7.0));
        assert_eq!(v.get("c").unwrap().as_u64(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
    }
}

//! Prometheus text-format rendering of a [`MemoryRecorder`].
//!
//! The daemon's `/metrics` endpoint serves this directly: counters
//! become `_total` counters, gauges stay gauges, and the log2 latency
//! histograms become cumulative-bucket histograms (`le` is the
//! inclusive upper bound of each log2 bucket; there is no `_sum`
//! series because the log2 histogram deliberately does not keep one —
//! `_max` is exported as a companion gauge instead).
//!
//! Output is deterministic: metric families render in BTree name order
//! and every name is sanitized to the Prometheus charset by mapping
//! `.`, `-`, and any other non-alphanumeric byte to `_`.

use crate::recorder::MemoryRecorder;

/// Prefix stamped on every exported metric family.
const PREFIX: &str = "edm_";

/// Maps a recorder metric name (`sim.ops_completed`) to a Prometheus
/// metric name body (`sim_ops_completed`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the recorder's counters, gauges, and histograms in the
/// Prometheus exposition text format (version 0.0.4).
pub fn render_prometheus(rec: &MemoryRecorder) -> String {
    let mut out = String::new();
    for (name, value) in rec.counters() {
        let m = format!("{PREFIX}{}_total", sanitize(name));
        out.push_str(&format!("# TYPE {m} counter\n{m} {value}\n"));
    }
    for (name, value) in rec.gauges() {
        let m = format!("{PREFIX}{}", sanitize(name));
        out.push_str(&format!("# TYPE {m} gauge\n{m} {value}\n"));
    }
    for (name, hist) in rec.histograms() {
        let m = format!("{PREFIX}{}", sanitize(name));
        out.push_str(&format!("# TYPE {m} histogram\n"));
        let mut cumulative = 0u64;
        for (_lo, hi, n) in hist.nonzero_buckets() {
            cumulative += n;
            out.push_str(&format!("{m}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{m}_bucket{{le=\"+Inf\"}} {}\n{m}_count {}\n{m}_max {}\n",
            hist.count(),
            hist.count(),
            hist.max()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsLevel, Recorder};

    #[test]
    fn sanitize_maps_punctuation() {
        assert_eq!(sanitize("sim.ops_completed"), "sim_ops_completed");
        assert_eq!(sanitize("a-b.c"), "a_b_c");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let mut r = MemoryRecorder::new(ObsLevel::Metrics);
        r.counter("sim.ops_completed", 41);
        r.counter("sim.ops_completed", 1);
        r.gauge("trigger.rsd", 0.25);
        r.latency("response_us", 3); // bucket [2,3]
        r.latency("response_us", 3);
        r.latency("response_us", 900); // bucket [512,1023]
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE edm_sim_ops_completed_total counter"));
        assert!(text.contains("edm_sim_ops_completed_total 42"));
        assert!(text.contains("edm_trigger_rsd 0.25"));
        assert!(text.contains("edm_response_us_bucket{le=\"3\"} 2"));
        // Buckets are cumulative.
        assert!(text.contains("edm_response_us_bucket{le=\"1023\"} 3"));
        assert!(text.contains("edm_response_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("edm_response_us_count 3"));
        assert!(text.contains("edm_response_us_max 900"));
    }

    #[test]
    fn empty_recorder_renders_empty() {
        let r = MemoryRecorder::new(ObsLevel::Metrics);
        assert_eq!(render_prometheus(&r), "");
    }

    #[test]
    fn deterministic_output() {
        let fill = || {
            let mut r = MemoryRecorder::new(ObsLevel::Metrics);
            r.counter("b", 2);
            r.counter("a", 1);
            r.gauge("z", 9.0);
            render_prometheus(&r)
        };
        assert_eq!(fill(), fill());
        // Name order, not insertion order.
        let text = fill();
        assert!(text.find("edm_a_total").unwrap() < text.find("edm_b_total").unwrap());
    }
}

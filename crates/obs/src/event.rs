//! The structured event vocabulary of the journal.
//!
//! Every variant is flat and uses raw integer ids (`u32` OSD index,
//! `u64` object id) because `edm-obs` sits below the crates that define
//! the typed ids. Variants map 1:1 onto JSONL records via
//! [`Event::kind`] and [`Event::write_fields`]; the journal line itself
//! (time key, optional device scope) is added by the recorder.

use crate::json;

/// One journal event. Field names match the emitted JSON keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // ---- FTL (device) events -------------------------------------------
    /// GC entered because the free pool fell below the low watermark.
    GcInvoked {
        free_blocks: u64,
        low_watermark: u64,
        high_watermark: u64,
    },
    /// A victim block was selected for cleaning.
    GcVictim {
        block: u64,
        valid_pages: u64,
        policy: &'static str,
    },
    /// A block was erased (after relocating `moved_pages` valid pages).
    BlockErase {
        block: u64,
        erase_count: u64,
        moved_pages: u64,
    },
    /// Static wear leveling relocated a cold block.
    WearLevelSwap {
        block: u64,
        valid_pages: u64,
        wear_spread: u64,
    },

    // ---- Cluster (engine) events ---------------------------------------
    /// A sub-op entered an OSD queue; `depth` includes the new arrival.
    OpEnqueue { osd: u32, depth: u64, mover: bool },
    /// A sub-op left the queue and began service.
    OpDequeue { osd: u32, depth: u64 },
    /// Periodic per-OSD queue depth sample (taken on engine ticks).
    QueueDepth { osd: u32, depth: u64 },
    /// The remapping table recorded an object move.
    RemapUpdate { object: u64, dest: u32 },

    // ---- EDM decision events -------------------------------------------
    /// Per-OSD wear-model input at a trigger evaluation (Eq. 4 operands).
    WearModelInput {
        osd: u32,
        wc_pages: u64,
        utilization: f64,
        erase_estimate: f64,
    },
    /// A wear/load trigger evaluation: RSD of the per-device estimates
    /// against the λ threshold (§III.B.2).
    TriggerEval {
        policy: &'static str,
        metric: &'static str,
        rsd: f64,
        lambda: f64,
        mean: f64,
        triggered: bool,
        sources: Vec<u64>,
        destinations: Vec<u64>,
    },
    /// The migration plan a policy settled on.
    PlanChosen {
        policy: &'static str,
        moves: u64,
        moved_bytes: u64,
        objects: Vec<u64>,
        sources: Vec<u64>,
        destinations: Vec<u64>,
    },
    /// Predicted effect of the chosen plan (wear model re-run, §IV).
    PlanAssessment {
        rsd_before: f64,
        rsd_after: f64,
        moved_bytes: u64,
        moved_write_pages: u64,
    },
    /// An object migration began copying.
    MigrationStart {
        object: u64,
        source: u32,
        dest: u32,
        bytes: u64,
    },
    /// An object migration finished (dest durable, source dropped).
    MigrationFinish {
        object: u64,
        source: u32,
        dest: u32,
        bytes: u64,
    },
}

impl Event {
    /// The `kind` discriminator written to (and dispatched on from) JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::GcInvoked { .. } => "gc_invoked",
            Event::GcVictim { .. } => "gc_victim",
            Event::BlockErase { .. } => "block_erase",
            Event::WearLevelSwap { .. } => "wear_level_swap",
            Event::OpEnqueue { .. } => "op_enqueue",
            Event::OpDequeue { .. } => "op_dequeue",
            Event::QueueDepth { .. } => "queue_depth",
            Event::RemapUpdate { .. } => "remap_update",
            Event::WearModelInput { .. } => "wear_model_input",
            Event::TriggerEval { .. } => "trigger_eval",
            Event::PlanChosen { .. } => "plan_chosen",
            Event::PlanAssessment { .. } => "plan_assessment",
            Event::MigrationStart { .. } => "migration_start",
            Event::MigrationFinish { .. } => "migration_finish",
        }
    }

    /// Appends this event's payload fields to a partially built JSON
    /// object (after `{` or previous fields).
    pub fn write_fields(&self, out: &mut String) {
        match self {
            Event::GcInvoked {
                free_blocks,
                low_watermark,
                high_watermark,
            } => {
                json::field_u64(out, "free_blocks", *free_blocks);
                json::field_u64(out, "low_watermark", *low_watermark);
                json::field_u64(out, "high_watermark", *high_watermark);
            }
            Event::GcVictim {
                block,
                valid_pages,
                policy,
            } => {
                json::field_u64(out, "block", *block);
                json::field_u64(out, "valid_pages", *valid_pages);
                json::field_str(out, "policy", policy);
            }
            Event::BlockErase {
                block,
                erase_count,
                moved_pages,
            } => {
                json::field_u64(out, "block", *block);
                json::field_u64(out, "erase_count", *erase_count);
                json::field_u64(out, "moved_pages", *moved_pages);
            }
            Event::WearLevelSwap {
                block,
                valid_pages,
                wear_spread,
            } => {
                json::field_u64(out, "block", *block);
                json::field_u64(out, "valid_pages", *valid_pages);
                json::field_u64(out, "wear_spread", *wear_spread);
            }
            Event::OpEnqueue { osd, depth, mover } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "depth", *depth);
                json::field_bool(out, "mover", *mover);
            }
            Event::OpDequeue { osd, depth } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "depth", *depth);
            }
            Event::QueueDepth { osd, depth } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "depth", *depth);
            }
            Event::RemapUpdate { object, dest } => {
                json::field_u64(out, "object", *object);
                json::field_u64(out, "dest", *dest as u64);
            }
            Event::WearModelInput {
                osd,
                wc_pages,
                utilization,
                erase_estimate,
            } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "wc_pages", *wc_pages);
                json::field_f64(out, "utilization", *utilization);
                json::field_f64(out, "erase_estimate", *erase_estimate);
            }
            Event::TriggerEval {
                policy,
                metric,
                rsd,
                lambda,
                mean,
                triggered,
                sources,
                destinations,
            } => {
                json::field_str(out, "policy", policy);
                json::field_str(out, "metric", metric);
                json::field_f64(out, "rsd", *rsd);
                json::field_f64(out, "lambda", *lambda);
                json::field_f64(out, "mean", *mean);
                json::field_bool(out, "triggered", *triggered);
                json::field_arr_u64(out, "sources", sources);
                json::field_arr_u64(out, "destinations", destinations);
            }
            Event::PlanChosen {
                policy,
                moves,
                moved_bytes,
                objects,
                sources,
                destinations,
            } => {
                json::field_str(out, "policy", policy);
                json::field_u64(out, "moves", *moves);
                json::field_u64(out, "moved_bytes", *moved_bytes);
                json::field_arr_u64(out, "objects", objects);
                json::field_arr_u64(out, "sources", sources);
                json::field_arr_u64(out, "destinations", destinations);
            }
            Event::PlanAssessment {
                rsd_before,
                rsd_after,
                moved_bytes,
                moved_write_pages,
            } => {
                json::field_f64(out, "rsd_before", *rsd_before);
                json::field_f64(out, "rsd_after", *rsd_after);
                json::field_u64(out, "moved_bytes", *moved_bytes);
                json::field_u64(out, "moved_write_pages", *moved_write_pages);
            }
            Event::MigrationStart {
                object,
                source,
                dest,
                bytes,
            }
            | Event::MigrationFinish {
                object,
                source,
                dest,
                bytes,
            } => {
                json::field_u64(out, "object", *object);
                json::field_u64(out, "source", *source as u64);
                json::field_u64(out, "dest", *dest as u64);
                json::field_u64(out, "bytes", *bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_emits_parseable_fields() {
        let events = vec![
            Event::GcInvoked {
                free_blocks: 2,
                low_watermark: 3,
                high_watermark: 6,
            },
            Event::GcVictim {
                block: 7,
                valid_pages: 1,
                policy: "greedy",
            },
            Event::BlockErase {
                block: 7,
                erase_count: 12,
                moved_pages: 1,
            },
            Event::WearLevelSwap {
                block: 9,
                valid_pages: 4,
                wear_spread: 5,
            },
            Event::OpEnqueue {
                osd: 1,
                depth: 3,
                mover: false,
            },
            Event::OpDequeue { osd: 1, depth: 2 },
            Event::QueueDepth { osd: 0, depth: 9 },
            Event::RemapUpdate {
                object: 42,
                dest: 3,
            },
            Event::WearModelInput {
                osd: 2,
                wc_pages: 1000,
                utilization: 0.7,
                erase_estimate: 55.5,
            },
            Event::TriggerEval {
                policy: "EDM-HDF",
                metric: "erase_estimate",
                rsd: 0.31,
                lambda: 0.2,
                mean: 100.0,
                triggered: true,
                sources: vec![0],
                destinations: vec![2, 3],
            },
            Event::PlanChosen {
                policy: "EDM-HDF",
                moves: 2,
                moved_bytes: 1 << 21,
                objects: vec![4, 9],
                sources: vec![0],
                destinations: vec![2],
            },
            Event::PlanAssessment {
                rsd_before: 0.31,
                rsd_after: 0.12,
                moved_bytes: 1 << 21,
                moved_write_pages: 512,
            },
            Event::MigrationStart {
                object: 4,
                source: 0,
                dest: 2,
                bytes: 1 << 20,
            },
            Event::MigrationFinish {
                object: 4,
                source: 0,
                dest: 2,
                bytes: 1 << 20,
            },
        ];
        for e in events {
            let mut line = String::from("{");
            json::field_str(&mut line, "kind", e.kind());
            e.write_fields(&mut line);
            line.push('}');
            let v = json::parse(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(v.get("kind").unwrap().as_str(), Some(e.kind()));
        }
    }
}

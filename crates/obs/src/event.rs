//! The structured event vocabulary of the journal.
//!
//! Every variant is flat and uses raw integer ids (`u32` OSD index,
//! `u64` object id) because `edm-obs` sits below the crates that define
//! the typed ids. Variants map 1:1 onto JSONL records via
//! [`Event::kind`] and [`Event::write_fields`]; the journal line itself
//! (time key, optional device scope) is added by the recorder.

use crate::json;
use crate::json::JsonValue;

/// The `&'static str` labels that may appear in journal events. The
/// JSON parser interns against this list so a parsed [`Event`] is
/// field-for-field the same type as an emitted one; an unknown label is
/// a parse error (the journal vocabulary is closed, like the event set).
const KNOWN_LABELS: &[&str] = &[
    // GC victim policies (VictimPolicy::label).
    "greedy",
    "fifo",
    "cost_benefit",
    // Migration policies (TriggerEval / PlanChosen `policy`).
    "Baseline",
    "CMT",
    "EDM-HDF",
    "EDM-CDF",
    // Trigger metrics.
    "erase_estimate",
    "ewma_latency_us",
];

fn intern(s: &str) -> Result<&'static str, String> {
    KNOWN_LABELS
        .iter()
        .find(|k| **k == s)
        .copied()
        .ok_or_else(|| format!("unknown label {s:?}"))
}

/// One journal event. Field names match the emitted JSON keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // ---- Run preamble --------------------------------------------------
    /// The cluster shape the journal was recorded against, emitted once
    /// at t=0. The conformance spec keys its placement, capacity, and
    /// wear bookkeeping off this record.
    RunMeta {
        osds: u32,
        groups: u32,
        objects_per_file: u32,
        /// Per-OSD exported capacity in bytes (uniform across the cluster).
        capacity_bytes: u64,
        /// Physical blocks per OSD (for wear-spread conservation checks).
        blocks_per_osd: u64,
    },

    // ---- FTL (device) events -------------------------------------------
    /// GC entered because the free pool fell below the low watermark.
    GcInvoked {
        free_blocks: u64,
        low_watermark: u64,
        high_watermark: u64,
    },
    /// A victim block was selected for cleaning.
    GcVictim {
        block: u64,
        valid_pages: u64,
        policy: &'static str,
    },
    /// A block was erased (after relocating `moved_pages` valid pages).
    BlockErase {
        block: u64,
        erase_count: u64,
        moved_pages: u64,
    },
    /// Static wear leveling relocated a cold block.
    WearLevelSwap {
        block: u64,
        valid_pages: u64,
        wear_spread: u64,
    },

    // ---- Cluster (engine) events ---------------------------------------
    /// A sub-op entered an OSD queue; `depth` includes the new arrival.
    OpEnqueue { osd: u32, depth: u64, mover: bool },
    /// A sub-op left the queue and began service.
    OpDequeue { osd: u32, depth: u64 },
    /// Periodic per-OSD queue depth sample (taken on engine ticks).
    QueueDepth { osd: u32, depth: u64 },
    /// The remapping table recorded an object move.
    RemapUpdate { object: u64, dest: u32 },

    // ---- EDM decision events -------------------------------------------
    /// Per-OSD wear-model input at a trigger evaluation (Eq. 4 operands).
    WearModelInput {
        osd: u32,
        wc_pages: u64,
        utilization: f64,
        erase_estimate: f64,
    },
    /// A wear/load trigger evaluation: RSD of the per-device estimates
    /// against the λ threshold (§III.B.2).
    TriggerEval {
        policy: &'static str,
        metric: &'static str,
        rsd: f64,
        lambda: f64,
        mean: f64,
        triggered: bool,
        sources: Vec<u64>,
        destinations: Vec<u64>,
    },
    /// The migration plan a policy settled on.
    PlanChosen {
        policy: &'static str,
        moves: u64,
        moved_bytes: u64,
        objects: Vec<u64>,
        sources: Vec<u64>,
        destinations: Vec<u64>,
    },
    /// Predicted effect of the chosen plan (wear model re-run, §IV).
    PlanAssessment {
        rsd_before: f64,
        rsd_after: f64,
        moved_bytes: u64,
        moved_write_pages: u64,
    },
    /// An object migration began copying.
    MigrationStart {
        object: u64,
        source: u32,
        dest: u32,
        bytes: u64,
    },
    /// An object migration finished (dest durable, source dropped).
    MigrationFinish {
        object: u64,
        source: u32,
        dest: u32,
        bytes: u64,
    },
    /// An in-flight migration was abandoned because its source or
    /// destination device failed; any partial destination copy is gone.
    MigrationAbort {
        object: u64,
        source: u32,
        dest: u32,
        bytes: u64,
    },

    // ---- Failure / recovery events -------------------------------------
    /// A device failed; its queue drains degraded and its objects are lost
    /// until rebuilt.
    DeviceFailed { osd: u32 },
    /// A RAID-5 rebuild of a lost object began onto `dest`.
    RebuildStart { object: u64, dest: u32, bytes: u64 },
    /// A rebuild completed; the object is durable on `dest`.
    RebuildFinish { object: u64, dest: u32, bytes: u64 },
}

impl Event {
    /// The `kind` discriminator written to (and dispatched on from) JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunMeta { .. } => "run_meta",
            Event::GcInvoked { .. } => "gc_invoked",
            Event::GcVictim { .. } => "gc_victim",
            Event::BlockErase { .. } => "block_erase",
            Event::WearLevelSwap { .. } => "wear_level_swap",
            Event::OpEnqueue { .. } => "op_enqueue",
            Event::OpDequeue { .. } => "op_dequeue",
            Event::QueueDepth { .. } => "queue_depth",
            Event::RemapUpdate { .. } => "remap_update",
            Event::WearModelInput { .. } => "wear_model_input",
            Event::TriggerEval { .. } => "trigger_eval",
            Event::PlanChosen { .. } => "plan_chosen",
            Event::PlanAssessment { .. } => "plan_assessment",
            Event::MigrationStart { .. } => "migration_start",
            Event::MigrationFinish { .. } => "migration_finish",
            Event::MigrationAbort { .. } => "migration_abort",
            Event::DeviceFailed { .. } => "device_failed",
            Event::RebuildStart { .. } => "rebuild_start",
            Event::RebuildFinish { .. } => "rebuild_finish",
        }
    }

    /// Appends this event's payload fields to a partially built JSON
    /// object (after `{` or previous fields).
    pub fn write_fields(&self, out: &mut String) {
        match self {
            Event::RunMeta {
                osds,
                groups,
                objects_per_file,
                capacity_bytes,
                blocks_per_osd,
            } => {
                json::field_u64(out, "osds", *osds as u64);
                json::field_u64(out, "groups", *groups as u64);
                json::field_u64(out, "objects_per_file", *objects_per_file as u64);
                json::field_u64(out, "capacity_bytes", *capacity_bytes);
                json::field_u64(out, "blocks_per_osd", *blocks_per_osd);
            }
            Event::GcInvoked {
                free_blocks,
                low_watermark,
                high_watermark,
            } => {
                json::field_u64(out, "free_blocks", *free_blocks);
                json::field_u64(out, "low_watermark", *low_watermark);
                json::field_u64(out, "high_watermark", *high_watermark);
            }
            Event::GcVictim {
                block,
                valid_pages,
                policy,
            } => {
                json::field_u64(out, "block", *block);
                json::field_u64(out, "valid_pages", *valid_pages);
                json::field_str(out, "policy", policy);
            }
            Event::BlockErase {
                block,
                erase_count,
                moved_pages,
            } => {
                json::field_u64(out, "block", *block);
                json::field_u64(out, "erase_count", *erase_count);
                json::field_u64(out, "moved_pages", *moved_pages);
            }
            Event::WearLevelSwap {
                block,
                valid_pages,
                wear_spread,
            } => {
                json::field_u64(out, "block", *block);
                json::field_u64(out, "valid_pages", *valid_pages);
                json::field_u64(out, "wear_spread", *wear_spread);
            }
            Event::OpEnqueue { osd, depth, mover } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "depth", *depth);
                json::field_bool(out, "mover", *mover);
            }
            Event::OpDequeue { osd, depth } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "depth", *depth);
            }
            Event::QueueDepth { osd, depth } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "depth", *depth);
            }
            Event::RemapUpdate { object, dest } => {
                json::field_u64(out, "object", *object);
                json::field_u64(out, "dest", *dest as u64);
            }
            Event::WearModelInput {
                osd,
                wc_pages,
                utilization,
                erase_estimate,
            } => {
                json::field_u64(out, "osd", *osd as u64);
                json::field_u64(out, "wc_pages", *wc_pages);
                json::field_f64(out, "utilization", *utilization);
                json::field_f64(out, "erase_estimate", *erase_estimate);
            }
            Event::TriggerEval {
                policy,
                metric,
                rsd,
                lambda,
                mean,
                triggered,
                sources,
                destinations,
            } => {
                json::field_str(out, "policy", policy);
                json::field_str(out, "metric", metric);
                json::field_f64(out, "rsd", *rsd);
                json::field_f64(out, "lambda", *lambda);
                json::field_f64(out, "mean", *mean);
                json::field_bool(out, "triggered", *triggered);
                json::field_arr_u64(out, "sources", sources);
                json::field_arr_u64(out, "destinations", destinations);
            }
            Event::PlanChosen {
                policy,
                moves,
                moved_bytes,
                objects,
                sources,
                destinations,
            } => {
                json::field_str(out, "policy", policy);
                json::field_u64(out, "moves", *moves);
                json::field_u64(out, "moved_bytes", *moved_bytes);
                json::field_arr_u64(out, "objects", objects);
                json::field_arr_u64(out, "sources", sources);
                json::field_arr_u64(out, "destinations", destinations);
            }
            Event::PlanAssessment {
                rsd_before,
                rsd_after,
                moved_bytes,
                moved_write_pages,
            } => {
                json::field_f64(out, "rsd_before", *rsd_before);
                json::field_f64(out, "rsd_after", *rsd_after);
                json::field_u64(out, "moved_bytes", *moved_bytes);
                json::field_u64(out, "moved_write_pages", *moved_write_pages);
            }
            Event::MigrationStart {
                object,
                source,
                dest,
                bytes,
            }
            | Event::MigrationFinish {
                object,
                source,
                dest,
                bytes,
            }
            | Event::MigrationAbort {
                object,
                source,
                dest,
                bytes,
            } => {
                json::field_u64(out, "object", *object);
                json::field_u64(out, "source", *source as u64);
                json::field_u64(out, "dest", *dest as u64);
                json::field_u64(out, "bytes", *bytes);
            }
            Event::DeviceFailed { osd } => {
                json::field_u64(out, "osd", *osd as u64);
            }
            Event::RebuildStart {
                object,
                dest,
                bytes,
            }
            | Event::RebuildFinish {
                object,
                dest,
                bytes,
            } => {
                json::field_u64(out, "object", *object);
                json::field_u64(out, "dest", *dest as u64);
                json::field_u64(out, "bytes", *bytes);
            }
        }
    }

    /// Parses a journal record (one JSONL line parsed to a [`JsonValue`])
    /// back into the event it was written from — the conformance spec's
    /// input contract. Inverse of [`Event::kind`] + [`Event::write_fields`]:
    /// `from_json(parse(written)) == original` for every variant whose
    /// float fields are finite and whose integers fit in 53 bits (the
    /// JSON number domain). Returns `Err` for trailer records (`counter`,
    /// `gauge`, `hist`), unknown kinds, and missing or ill-typed fields.
    pub fn from_json(v: &JsonValue) -> Result<Event, String> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing kind")?;
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{kind}: missing or non-integer {key:?}"))
        };
        let u32of = |key: &str| -> Result<u32, String> {
            u32::try_from(u(key)?).map_err(|_| format!("{kind}: {key:?} exceeds u32"))
        };
        // Non-finite floats are journaled as null; read them back as NaN
        // so the record still decodes (NaN != NaN keeps them visible to
        // the spec's consistency checks).
        let f = |key: &str| -> Result<f64, String> {
            match v.get(key) {
                Some(JsonValue::Null) => Ok(f64::NAN),
                Some(n) => n
                    .as_f64()
                    .ok_or_else(|| format!("{kind}: non-numeric {key:?}")),
                None => Err(format!("{kind}: missing {key:?}")),
            }
        };
        let b = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("{kind}: missing or non-boolean {key:?}"))
        };
        let s = |key: &str| -> Result<&'static str, String> {
            let raw = v
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{kind}: missing or non-string {key:?}"))?;
            intern(raw).map_err(|e| format!("{kind}: {key}: {e}"))
        };
        let arr = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("{kind}: missing or non-array {key:?}"))?
                .iter()
                .map(|it| {
                    it.as_u64()
                        .ok_or_else(|| format!("{kind}: non-integer element in {key:?}"))
                })
                .collect()
        };
        Ok(match kind {
            "run_meta" => Event::RunMeta {
                osds: u32of("osds")?,
                groups: u32of("groups")?,
                objects_per_file: u32of("objects_per_file")?,
                capacity_bytes: u("capacity_bytes")?,
                blocks_per_osd: u("blocks_per_osd")?,
            },
            "gc_invoked" => Event::GcInvoked {
                free_blocks: u("free_blocks")?,
                low_watermark: u("low_watermark")?,
                high_watermark: u("high_watermark")?,
            },
            "gc_victim" => Event::GcVictim {
                block: u("block")?,
                valid_pages: u("valid_pages")?,
                policy: s("policy")?,
            },
            "block_erase" => Event::BlockErase {
                block: u("block")?,
                erase_count: u("erase_count")?,
                moved_pages: u("moved_pages")?,
            },
            "wear_level_swap" => Event::WearLevelSwap {
                block: u("block")?,
                valid_pages: u("valid_pages")?,
                wear_spread: u("wear_spread")?,
            },
            "op_enqueue" => Event::OpEnqueue {
                osd: u32of("osd")?,
                depth: u("depth")?,
                mover: b("mover")?,
            },
            "op_dequeue" => Event::OpDequeue {
                osd: u32of("osd")?,
                depth: u("depth")?,
            },
            "queue_depth" => Event::QueueDepth {
                osd: u32of("osd")?,
                depth: u("depth")?,
            },
            "remap_update" => Event::RemapUpdate {
                object: u("object")?,
                dest: u32of("dest")?,
            },
            "wear_model_input" => Event::WearModelInput {
                osd: u32of("osd")?,
                wc_pages: u("wc_pages")?,
                utilization: f("utilization")?,
                erase_estimate: f("erase_estimate")?,
            },
            "trigger_eval" => Event::TriggerEval {
                policy: s("policy")?,
                metric: s("metric")?,
                rsd: f("rsd")?,
                lambda: f("lambda")?,
                mean: f("mean")?,
                triggered: b("triggered")?,
                sources: arr("sources")?,
                destinations: arr("destinations")?,
            },
            "plan_chosen" => Event::PlanChosen {
                policy: s("policy")?,
                moves: u("moves")?,
                moved_bytes: u("moved_bytes")?,
                objects: arr("objects")?,
                sources: arr("sources")?,
                destinations: arr("destinations")?,
            },
            "plan_assessment" => Event::PlanAssessment {
                rsd_before: f("rsd_before")?,
                rsd_after: f("rsd_after")?,
                moved_bytes: u("moved_bytes")?,
                moved_write_pages: u("moved_write_pages")?,
            },
            "migration_start" => Event::MigrationStart {
                object: u("object")?,
                source: u32of("source")?,
                dest: u32of("dest")?,
                bytes: u("bytes")?,
            },
            "migration_finish" => Event::MigrationFinish {
                object: u("object")?,
                source: u32of("source")?,
                dest: u32of("dest")?,
                bytes: u("bytes")?,
            },
            "migration_abort" => Event::MigrationAbort {
                object: u("object")?,
                source: u32of("source")?,
                dest: u32of("dest")?,
                bytes: u("bytes")?,
            },
            "device_failed" => Event::DeviceFailed { osd: u32of("osd")? },
            "rebuild_start" => Event::RebuildStart {
                object: u("object")?,
                dest: u32of("dest")?,
                bytes: u("bytes")?,
            },
            "rebuild_finish" => Event::RebuildFinish {
                object: u("object")?,
                dest: u32of("dest")?,
                bytes: u("bytes")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_emits_parseable_fields() {
        let events = vec![
            Event::RunMeta {
                osds: 8,
                groups: 4,
                objects_per_file: 2,
                capacity_bytes: 1 << 30,
                blocks_per_osd: 256,
            },
            Event::GcInvoked {
                free_blocks: 2,
                low_watermark: 3,
                high_watermark: 6,
            },
            Event::GcVictim {
                block: 7,
                valid_pages: 1,
                policy: "greedy",
            },
            Event::BlockErase {
                block: 7,
                erase_count: 12,
                moved_pages: 1,
            },
            Event::WearLevelSwap {
                block: 9,
                valid_pages: 4,
                wear_spread: 5,
            },
            Event::OpEnqueue {
                osd: 1,
                depth: 3,
                mover: false,
            },
            Event::OpDequeue { osd: 1, depth: 2 },
            Event::QueueDepth { osd: 0, depth: 9 },
            Event::RemapUpdate {
                object: 42,
                dest: 3,
            },
            Event::WearModelInput {
                osd: 2,
                wc_pages: 1000,
                utilization: 0.7,
                erase_estimate: 55.5,
            },
            Event::TriggerEval {
                policy: "EDM-HDF",
                metric: "erase_estimate",
                rsd: 0.31,
                lambda: 0.2,
                mean: 100.0,
                triggered: true,
                sources: vec![0],
                destinations: vec![2, 3],
            },
            Event::PlanChosen {
                policy: "EDM-HDF",
                moves: 2,
                moved_bytes: 1 << 21,
                objects: vec![4, 9],
                sources: vec![0],
                destinations: vec![2],
            },
            Event::PlanAssessment {
                rsd_before: 0.31,
                rsd_after: 0.12,
                moved_bytes: 1 << 21,
                moved_write_pages: 512,
            },
            Event::MigrationStart {
                object: 4,
                source: 0,
                dest: 2,
                bytes: 1 << 20,
            },
            Event::MigrationFinish {
                object: 4,
                source: 0,
                dest: 2,
                bytes: 1 << 20,
            },
            Event::MigrationAbort {
                object: 4,
                source: 0,
                dest: 2,
                bytes: 1 << 20,
            },
            Event::DeviceFailed { osd: 5 },
            Event::RebuildStart {
                object: 11,
                dest: 6,
                bytes: 1 << 19,
            },
            Event::RebuildFinish {
                object: 11,
                dest: 6,
                bytes: 1 << 19,
            },
        ];
        for e in events {
            let mut line = String::from("{");
            json::field_str(&mut line, "kind", e.kind());
            e.write_fields(&mut line);
            line.push('}');
            let v = json::parse(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(v.get("kind").unwrap().as_str(), Some(e.kind()));
            let back = Event::from_json(&v).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(back, e, "{line}");
        }
    }

    #[test]
    fn from_json_rejects_bad_records() {
        let cases = [
            ("{\"t_us\":0}", "missing kind"),
            (
                "{\"kind\":\"counter\",\"name\":\"x\",\"value\":1}",
                "unknown",
            ),
            ("{\"kind\":\"no_such_event\"}", "unknown"),
            ("{\"kind\":\"device_failed\"}", "osd"),
            ("{\"kind\":\"block_erase\",\"block\":-1}", "block"),
            (
                "{\"kind\":\"gc_victim\",\"block\":1,\"valid_pages\":0,\"policy\":\"mystery\"}",
                "unknown label",
            ),
            (
                "{\"kind\":\"trigger_eval\",\"policy\":\"EDM-HDF\",\"metric\":\"erase_estimate\",\
                 \"rsd\":0.1,\"lambda\":0.2,\"mean\":1.0,\"triggered\":true,\"sources\":[1,\"x\"],\
                 \"destinations\":[]}",
                "sources",
            ),
        ];
        for (line, needle) in cases {
            let v = json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let err = Event::from_json(&v).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip_as_nan() {
        let e = Event::PlanAssessment {
            rsd_before: f64::NAN,
            rsd_after: f64::INFINITY,
            moved_bytes: 1,
            moved_write_pages: 2,
        };
        let mut line = String::from("{");
        json::field_str(&mut line, "kind", e.kind());
        e.write_fields(&mut line);
        line.push('}');
        assert!(line.contains("\"rsd_before\":null"));
        let back = Event::from_json(&json::parse(&line).unwrap()).unwrap();
        match back {
            Event::PlanAssessment {
                rsd_before,
                rsd_after,
                ..
            } => {
                assert!(rsd_before.is_nan());
                assert!(rsd_after.is_nan());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Integers in the JSON-safe domain: our parser stores numbers as
    /// `f64`, so exact round-trips hold for values below 2^53 (the
    /// journal's ids, depths, and byte counts all live far below that).
    fn json_u64() -> impl Strategy<Value = u64> {
        prop_oneof![
            Just(0u64),
            Just(1u64),
            Just((1u64 << 53) - 1),
            0..=(1u64 << 53) - 1,
        ]
    }

    fn json_u32() -> impl Strategy<Value = u32> {
        prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()]
    }

    /// Finite floats incl. boundary magnitudes (non-finite values are
    /// covered by `non_finite_floats_round_trip_as_nan`: they journal as
    /// null by design, which is not an identity round-trip).
    fn json_f64() -> impl Strategy<Value = f64> {
        prop_oneof![
            Just(0.0f64),
            Just(-0.0f64),
            Just(f64::MIN_POSITIVE),
            Just(f64::MAX),
            Just(-f64::MAX),
            -1.0e9..1.0e9f64,
        ]
    }

    fn label() -> impl Strategy<Value = &'static str> {
        (0..KNOWN_LABELS.len() as u64).prop_map(|i| KNOWN_LABELS[i as usize])
    }

    fn vec_u64() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(json_u64(), 0..6)
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        prop_oneof![
            (json_u32(), json_u32(), json_u32(), json_u64(), json_u64()).prop_map(
                |(osds, groups, objects_per_file, capacity_bytes, blocks_per_osd)| {
                    Event::RunMeta {
                        osds,
                        groups,
                        objects_per_file,
                        capacity_bytes,
                        blocks_per_osd,
                    }
                }
            ),
            (json_u64(), json_u64(), json_u64()).prop_map(
                |(free_blocks, low_watermark, high_watermark)| Event::GcInvoked {
                    free_blocks,
                    low_watermark,
                    high_watermark,
                }
            ),
            (json_u64(), json_u64(), label()).prop_map(|(block, valid_pages, policy)| {
                Event::GcVictim {
                    block,
                    valid_pages,
                    policy,
                }
            }),
            (json_u64(), json_u64(), json_u64()).prop_map(|(block, erase_count, moved_pages)| {
                Event::BlockErase {
                    block,
                    erase_count,
                    moved_pages,
                }
            }),
            (json_u64(), json_u64(), json_u64()).prop_map(|(block, valid_pages, wear_spread)| {
                Event::WearLevelSwap {
                    block,
                    valid_pages,
                    wear_spread,
                }
            }),
            (json_u32(), json_u64(), any::<bool>())
                .prop_map(|(osd, depth, mover)| Event::OpEnqueue { osd, depth, mover }),
            (json_u32(), json_u64()).prop_map(|(osd, depth)| Event::OpDequeue { osd, depth }),
            (json_u32(), json_u64()).prop_map(|(osd, depth)| Event::QueueDepth { osd, depth }),
            (json_u64(), json_u32()).prop_map(|(object, dest)| Event::RemapUpdate { object, dest }),
            (json_u32(), json_u64(), json_f64(), json_f64()).prop_map(
                |(osd, wc_pages, utilization, erase_estimate)| Event::WearModelInput {
                    osd,
                    wc_pages,
                    utilization,
                    erase_estimate,
                }
            ),
            (
                label(),
                label(),
                json_f64(),
                json_f64(),
                json_f64(),
                any::<bool>(),
                vec_u64(),
                vec_u64()
            )
                .prop_map(
                    |(policy, metric, rsd, lambda, mean, triggered, sources, destinations)| {
                        Event::TriggerEval {
                            policy,
                            metric,
                            rsd,
                            lambda,
                            mean,
                            triggered,
                            sources,
                            destinations,
                        }
                    }
                ),
            (
                label(),
                json_u64(),
                json_u64(),
                vec_u64(),
                vec_u64(),
                vec_u64()
            )
                .prop_map(
                    |(policy, moves, moved_bytes, objects, sources, destinations)| {
                        Event::PlanChosen {
                            policy,
                            moves,
                            moved_bytes,
                            objects,
                            sources,
                            destinations,
                        }
                    }
                ),
            (json_f64(), json_f64(), json_u64(), json_u64()).prop_map(
                |(rsd_before, rsd_after, moved_bytes, moved_write_pages)| {
                    Event::PlanAssessment {
                        rsd_before,
                        rsd_after,
                        moved_bytes,
                        moved_write_pages,
                    }
                }
            ),
            (json_u64(), json_u32(), json_u32(), json_u64()).prop_map(
                |(object, source, dest, bytes)| Event::MigrationStart {
                    object,
                    source,
                    dest,
                    bytes,
                }
            ),
            (json_u64(), json_u32(), json_u32(), json_u64()).prop_map(
                |(object, source, dest, bytes)| Event::MigrationFinish {
                    object,
                    source,
                    dest,
                    bytes,
                }
            ),
            (json_u64(), json_u32(), json_u32(), json_u64()).prop_map(
                |(object, source, dest, bytes)| Event::MigrationAbort {
                    object,
                    source,
                    dest,
                    bytes,
                }
            ),
            json_u32().prop_map(|osd| Event::DeviceFailed { osd }),
            (json_u64(), json_u32(), json_u64()).prop_map(|(object, dest, bytes)| {
                Event::RebuildStart {
                    object,
                    dest,
                    bytes,
                }
            }),
            (json_u64(), json_u32(), json_u64()).prop_map(|(object, dest, bytes)| {
                Event::RebuildFinish {
                    object,
                    dest,
                    bytes,
                }
            }),
        ]
    }

    proptest! {
        /// The spec's input contract: every event the recorder can write
        /// decodes back to the identical value through the JSON layer.
        #[test]
        fn event_round_trips_through_json(e in arb_event()) {
            let mut line = String::from("{");
            json::field_str(&mut line, "kind", e.kind());
            e.write_fields(&mut line);
            line.push('}');
            let v = json::parse(&line).map_err(|err| {
                TestCaseError::fail(format!("{line}: {err}"))
            })?;
            let back = Event::from_json(&v).map_err(|err| {
                TestCaseError::fail(format!("{line}: {err}"))
            })?;
            // NaN never round-trips by equality; json_f64() keeps floats
            // finite, so bit-for-bit equality is the contract here.
            prop_assert_eq!(back, e, "{}", line);
        }
    }
}

//! Fixed-bucket log2 latency histogram.
//!
//! Bucket 0 holds the value 0; bucket `i` (i ≥ 1) holds values in
//! `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range, so recording
//! is a single `leading_zeros` plus an array increment — cheap enough to
//! leave enabled at the `metrics` level — and merging two histograms is
//! exact (bucket-wise addition), which the property tests exploit.

/// Number of buckets: value 0 plus one bucket per bit position.
pub const BUCKETS: usize = 65;

/// A log2 histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a sample.
#[inline]
fn index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[index(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise merge: the result is exactly the histogram of the
    /// concatenation of both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Inclusive `[lo, hi]` bounds of the bucket containing the
    /// q-quantile sample (rank `ceil(q·count)`, 1-based — the same
    /// nearest-rank definition used by `RunReport` percentiles). The true
    /// quantile is guaranteed to lie within these bounds; `hi` is
    /// additionally clamped to the observed maximum.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let (lo, hi) = bucket_range(i);
                return (lo, hi.min(self.max));
            }
        }
        // edm-audit: allow(panic.unreachable, "rank <= count is checked by the caller; bucket sums cover every observation")
        unreachable!("rank <= count implies a bucket is found");
    }

    /// Point estimate of the q-quantile: the upper bound of its bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// (p50, p95, p99, max) summary used by journal trailer records.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max,
        )
    }

    /// Non-empty buckets as `(lo, hi, count)` rows, for reports.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(index(0), 0);
        assert_eq!(index(1), 1);
        assert_eq!(index(2), 2);
        assert_eq!(index(3), 2);
        assert_eq!(index(4), 3);
        assert_eq!(index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(index(lo), i, "lo of bucket {i}");
            assert_eq!(index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), (0, 0, 0, 0));
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(100);
        let (lo, hi) = h.quantile_bounds(0.5);
        assert!(lo <= 100 && 100 <= hi);
        assert_eq!(h.max(), 100);
        // hi is clamped to the observed max.
        assert_eq!(hi, 100);
    }

    #[test]
    fn uniform_samples_median() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (lo, hi) = h.quantile_bounds(0.5);
        // True median 500 lives in [256, 511].
        assert!(lo <= 500 && 500 <= hi, "({lo}, {hi})");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn merge_equals_concat() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 1, 5, 17, 300, 300, 4096] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 2, 9, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}

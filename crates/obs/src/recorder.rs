//! The `Recorder` trait and its two implementations.
//!
//! Instrumented code takes `&mut dyn Recorder` and calls the hooks
//! unconditionally for scalar metrics (a counter bump on the no-op
//! recorder is an inlined empty body behind one indirect call) but must
//! guard event *construction* behind [`Recorder::events_on`] so that
//! allocating variants cost nothing below the `events` level.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::event::Event;
use crate::hist::Histogram;
use crate::json;

/// How much the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsLevel {
    /// Record nothing.
    #[default]
    Off,
    /// Counters, gauges, and latency histograms only.
    Metrics,
    /// Metrics plus the structured event journal.
    Events,
}

impl ObsLevel {
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "metrics" => Some(ObsLevel::Metrics),
            "events" => Some(ObsLevel::Events),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Metrics => "metrics",
            ObsLevel::Events => "events",
        }
    }
}

/// Observability sink threaded through the FTL, cluster engine, and
/// migration policies. All hooks have empty defaults, so `dyn Recorder`
/// call sites pay one indirect call per hook and nothing else when the
/// implementation ignores them.
pub trait Recorder {
    /// Current recording level; callers use it to skip building events.
    fn level(&self) -> ObsLevel {
        ObsLevel::Off
    }

    /// Advances the journal clock (virtual microseconds). The simulation
    /// engine calls this as it dispatches each event; layers below the
    /// engine (the FTL) never see the clock and simply inherit it.
    fn set_now(&mut self, _now_us: u64) {}

    /// Sets (or clears) the device scope stamped on subsequent journal
    /// lines, so FTL events carry the OSD they happened on without the
    /// FTL knowing its own identity.
    fn set_device(&mut self, _device: Option<u32>) {}

    /// Sets (or clears) the placement-component scope stamped on
    /// subsequent journal lines. The engine tags component-local work
    /// (client dispatch, device completions, per-source migration kicks)
    /// and leaves coordinator-level work — tick bodies, trigger and plan
    /// decisions — untagged, so a journal serializes identically whether
    /// the run was sequential or group-sharded (see
    /// [`MemoryRecorder::write_jsonl`]).
    fn set_component(&mut self, _component: Option<u32>) {}

    /// Adds `delta` to a named monotonic counter.
    fn counter(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets a named gauge to its latest value.
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records a sample into a named log2 latency histogram.
    fn latency(&mut self, _name: &'static str, _us: u64) {}

    /// Appends a structured event to the journal.
    fn event(&mut self, _event: Event) {}

    /// Folds a whole histogram into the named latency histogram — the
    /// bulk form of [`latency`](Self::latency), used when a sharded run
    /// merges its per-shard recorders back into the parent. Recorders
    /// that keep no histograms ignore it.
    fn merge_histogram(&mut self, _name: &'static str, _hist: &Histogram) {}

    /// True when event construction is worth the allocation.
    fn events_on(&self) -> bool {
        self.level() >= ObsLevel::Events
    }
}

/// Escape hatch for code generic over `R: Recorder + ?Sized` that must
/// hand a `&mut dyn Recorder` to an object-safe callee: unsizing
/// coercions don't apply to generic parameters, so the reborrow goes
/// through this trait instead. Implemented for every sized recorder and
/// for `dyn Recorder` itself.
pub trait AsDynRecorder {
    fn as_dyn_mut(&mut self) -> &mut dyn Recorder;
}

impl<R: Recorder> AsDynRecorder for R {
    fn as_dyn_mut(&mut self) -> &mut dyn Recorder {
        self
    }
}

impl AsDynRecorder for dyn Recorder + '_ {
    fn as_dyn_mut(&mut self) -> &mut dyn Recorder {
        self
    }
}

/// The recorder that records nothing. Every hook is an empty inlined
/// body; the hot-path cost is the indirect call alone, which the
/// obs-overhead perf cell keeps honest.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// One journal line: virtual time, optional device and component
/// scopes, event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    pub t_us: u64,
    pub device: Option<u32>,
    /// Placement component the event belongs to (`None` for
    /// coordinator-level events such as tick bodies and plan decisions).
    pub component: Option<u32>,
    pub event: Event,
}

/// In-memory recorder: BTree-backed metrics (deterministic iteration
/// order) plus an append-only journal, snapshotable to JSON/JSONL.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    level: ObsLevel,
    now_us: u64,
    device: Option<u32>,
    component: Option<u32>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
    events: Vec<JournalEntry>,
}

impl MemoryRecorder {
    pub fn new(level: ObsLevel) -> Self {
        MemoryRecorder {
            level,
            ..MemoryRecorder::default()
        }
    }

    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauges(&self) -> &BTreeMap<&'static str, f64> {
        &self.gauges
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All histograms, in deterministic name order. The sharded runner
    /// folds these into the parent recorder via
    /// [`Recorder::merge_histogram`].
    pub fn histograms(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.hists
    }

    pub fn journal(&self) -> &[JournalEntry] {
        &self.events
    }

    /// Number of journal events matching a `kind` discriminator.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count()
    }

    /// One JSON object with counters, gauges, and histogram summaries.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (name, value) in &self.counters {
            json::field_u64(&mut out, name, *value);
        }
        out.push_str("},\"gauges\":{");
        for (name, value) in &self.gauges {
            json::field_f64(&mut out, name, *value);
        }
        out.push_str("},\"histograms\":{");
        for (name, hist) in &self.hists {
            let mut body = String::from("{");
            write_hist_fields(&mut body, hist);
            body.push('}');
            json::field_raw(&mut out, name, &body);
        }
        out.push_str("}}");
        out
    }

    /// Writes the journal as JSONL: one line per event (keyed by virtual
    /// time, stamped with the device and component scopes when present),
    /// followed by trailer records for every counter, gauge, and
    /// histogram so a journal file is self-contained.
    ///
    /// Events are serialized in the canonical `(t_us, component)` order
    /// (untagged coordinator events first within a timestamp), with ties
    /// broken by insertion order. Component sub-simulations are exact
    /// restrictions of the sequential run, so each `(t_us, component)`
    /// bucket holds the same events in the same order on both engine
    /// paths — the canonical sort is what makes the serialized journal
    /// byte-identical between them. Untagged journals (the default) sort
    /// into pure insertion order, leaving their serialization unchanged.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::new();
        let mut ordered: Vec<&JournalEntry> = self.events.iter().collect();
        // Stable sort: equal keys keep insertion order.
        ordered.sort_by_key(|e| (e.t_us, e.component.map_or(0u64, |c| c as u64 + 1)));
        for entry in ordered {
            line.clear();
            line.push('{');
            json::field_u64(&mut line, "t_us", entry.t_us);
            if let Some(d) = entry.device {
                json::field_u64(&mut line, "osd", d as u64);
            }
            if let Some(c) = entry.component {
                json::field_u64(&mut line, "comp", c as u64);
            }
            json::field_str(&mut line, "kind", entry.event.kind());
            entry.event.write_fields(&mut line);
            line.push_str("}\n");
            w.write_all(line.as_bytes())?;
        }
        for (name, value) in &self.counters {
            line.clear();
            line.push('{');
            json::field_str(&mut line, "kind", "counter");
            json::field_str(&mut line, "name", name);
            json::field_u64(&mut line, "value", *value);
            line.push_str("}\n");
            w.write_all(line.as_bytes())?;
        }
        for (name, value) in &self.gauges {
            line.clear();
            line.push('{');
            json::field_str(&mut line, "kind", "gauge");
            json::field_str(&mut line, "name", name);
            json::field_f64(&mut line, "value", *value);
            line.push_str("}\n");
            w.write_all(line.as_bytes())?;
        }
        for (name, hist) in &self.hists {
            line.clear();
            line.push('{');
            json::field_str(&mut line, "kind", "hist");
            json::field_str(&mut line, "name", name);
            write_hist_fields(&mut line, hist);
            line.push_str("}\n");
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }
}

fn write_hist_fields(out: &mut String, hist: &Histogram) {
    let (p50, p95, p99, max) = hist.summary();
    json::field_u64(out, "count", hist.count());
    json::field_u64(out, "p50", p50);
    json::field_u64(out, "p95", p95);
    json::field_u64(out, "p99", p99);
    json::field_u64(out, "max", max);
}

impl Recorder for MemoryRecorder {
    fn level(&self) -> ObsLevel {
        self.level
    }

    fn set_now(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    fn set_device(&mut self, device: Option<u32>) {
        self.device = device;
    }

    fn set_component(&mut self, component: Option<u32>) {
        self.component = component;
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        if self.level >= ObsLevel::Metrics {
            *self.counters.entry(name).or_insert(0) += delta;
        }
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        if self.level >= ObsLevel::Metrics {
            self.gauges.insert(name, value);
        }
    }

    fn latency(&mut self, name: &'static str, us: u64) {
        if self.level >= ObsLevel::Metrics {
            self.hists.entry(name).or_default().record(us);
        }
    }

    fn event(&mut self, event: Event) {
        if self.level >= ObsLevel::Events {
            self.events.push(JournalEntry {
                t_us: self.now_us,
                device: self.device,
                component: self.component,
                event,
            });
        }
    }

    fn merge_histogram(&mut self, name: &'static str, hist: &Histogram) {
        if self.level >= ObsLevel::Metrics {
            self.hists.entry(name).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering() {
        assert!(ObsLevel::Off < ObsLevel::Metrics);
        assert!(ObsLevel::Metrics < ObsLevel::Events);
        assert_eq!(ObsLevel::parse("events"), Some(ObsLevel::Events));
        assert_eq!(ObsLevel::parse("bogus"), None);
        assert_eq!(ObsLevel::Metrics.as_str(), "metrics");
    }

    #[test]
    fn noop_recorder_drops_everything() {
        let mut r = NoopRecorder;
        r.set_now(5);
        r.counter("x", 1);
        r.latency("y", 10);
        r.event(Event::QueueDepth { osd: 0, depth: 1 });
        assert_eq!(r.level(), ObsLevel::Off);
        assert!(!r.events_on());
    }

    #[test]
    fn metrics_level_keeps_metrics_drops_events() {
        let mut r = MemoryRecorder::new(ObsLevel::Metrics);
        r.counter("a", 2);
        r.counter("a", 3);
        r.gauge("g", 1.5);
        r.latency("lat", 100);
        r.event(Event::QueueDepth { osd: 0, depth: 1 });
        assert_eq!(r.counter_value("a"), 5);
        assert_eq!(r.gauges()["g"], 1.5);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
        assert!(r.journal().is_empty());
        assert!(!r.events_on());
    }

    #[test]
    fn events_level_stamps_time_and_device() {
        let mut r = MemoryRecorder::new(ObsLevel::Events);
        r.set_now(42);
        r.set_device(Some(3));
        r.event(Event::QueueDepth { osd: 3, depth: 7 });
        r.set_device(None);
        r.set_now(50);
        r.event(Event::RemapUpdate { object: 1, dest: 2 });
        let j = r.journal();
        assert_eq!(j.len(), 2);
        assert_eq!((j[0].t_us, j[0].device), (42, Some(3)));
        assert_eq!((j[1].t_us, j[1].device), (50, None));
        assert_eq!(r.count_kind("queue_depth"), 1);
    }

    #[test]
    fn off_level_memory_recorder_records_nothing() {
        let mut r = MemoryRecorder::new(ObsLevel::Off);
        r.counter("a", 1);
        r.latency("l", 1);
        r.event(Event::QueueDepth { osd: 0, depth: 0 });
        assert!(r.counters().is_empty());
        assert!(r.journal().is_empty());
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let mut r = MemoryRecorder::new(ObsLevel::Events);
        r.set_now(10);
        r.event(Event::GcInvoked {
            free_blocks: 1,
            low_watermark: 2,
            high_watermark: 4,
        });
        r.counter("ftl.block_erases", 9);
        r.gauge("trigger.rsd", 0.25);
        r.latency("response_us", 1234);
        let mut buf = Vec::new();
        r.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for l in &lines {
            json::parse(l).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("t_us").unwrap().as_u64(), Some(10));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("gc_invoked"));
    }

    #[test]
    fn component_scope_stamps_entries_and_serializes() {
        let mut r = MemoryRecorder::new(ObsLevel::Events);
        r.set_now(7);
        r.set_component(Some(1));
        r.event(Event::QueueDepth { osd: 4, depth: 2 });
        r.set_component(None);
        r.event(Event::QueueDepth { osd: 0, depth: 1 });
        let j = r.journal();
        assert_eq!(j[0].component, Some(1));
        assert_eq!(j[1].component, None);
        let mut buf = Vec::new();
        r.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Canonical order within a timestamp: untagged first, then by
        // component id — the second emission serializes first.
        assert!(lines[0].contains("\"osd\":0"), "{text}");
        assert!(!lines[0].contains("\"comp\""), "{text}");
        assert!(lines[1].contains("\"comp\":1"), "{text}");
    }

    #[test]
    fn canonical_sort_is_stable_within_buckets() {
        // Two recorders with the same per-(t, component) subsequences but
        // different interleavings must serialize byte-identically.
        let fill = |order: &[(u64, Option<u32>, u32)]| {
            let mut r = MemoryRecorder::new(ObsLevel::Events);
            for &(t, comp, osd) in order {
                r.set_now(t);
                r.set_component(comp);
                r.event(Event::QueueDepth {
                    osd,
                    depth: osd as u64,
                });
            }
            let mut buf = Vec::new();
            r.write_jsonl(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let sequential = fill(&[
            (5, None, 0),
            (5, Some(0), 1),
            (5, Some(1), 3),
            (5, Some(0), 2),
            (9, Some(1), 4),
        ]);
        let sharded = fill(&[
            (5, None, 0),
            (5, Some(0), 1),
            (5, Some(0), 2),
            (5, Some(1), 3),
            (9, Some(1), 4),
        ]);
        assert_eq!(sequential, sharded);
        // Within (5, Some(0)) insertion order is preserved: osd 1 before 2.
        let pos1 = sequential.find("\"osd\":1").unwrap();
        let pos2 = sequential.find("\"osd\":2").unwrap();
        assert!(pos1 < pos2);
    }

    #[test]
    fn snapshot_json_parses() {
        let mut r = MemoryRecorder::new(ObsLevel::Metrics);
        r.counter("a.b", 7);
        r.gauge("g", -0.5);
        r.latency("lat", 3);
        r.latency("lat", 900);
        let snap = r.snapshot_json();
        let v = json::parse(&snap).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        let lat = v.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(lat.get("max").unwrap().as_u64(), Some(900));
    }
}

#![forbid(unsafe_code)]
//! edm-obs: cross-layer observability for the EDM reproduction.
//!
//! This crate sits below every other workspace crate and provides:
//!
//! * [`Recorder`] — the sink trait threaded (`&mut dyn Recorder`)
//!   through the FTL write path, the cluster engine, and the migration
//!   policies. [`NoopRecorder`] implements it with empty inlined bodies;
//!   [`MemoryRecorder`] keeps counters, gauges, log2 latency
//!   [`Histogram`]s, and a structured [`Event`] journal.
//! * [`ObsLevel`] — `off` (nothing), `metrics` (scalars + histograms),
//!   `events` (metrics plus the journal).
//! * [`json`] — a dependency-free JSON writer/parser pair used for the
//!   JSONL journal and by `edm-probe` to read one back.
//!
//! Design rules for instrumented code:
//!
//! 1. Observability is *read-only*: no recorder call may change
//!    simulation state, so determinism is bit-identical at every level.
//! 2. Scalar hooks (`counter`, `latency`) may be called unconditionally;
//!    anything that allocates (an [`Event`] with `Vec` fields) must be
//!    guarded by [`Recorder::events_on`].
//! 3. Virtual time and device scope are ambient: the engine calls
//!    `set_now` / `set_device`, lower layers just emit.

pub mod event;
pub mod hist;
pub mod json;
pub mod prom;
pub mod recorder;

pub use event::Event;
pub use hist::Histogram;
pub use prom::render_prometheus;
pub use recorder::{AsDynRecorder, JournalEntry, MemoryRecorder, NoopRecorder, ObsLevel, Recorder};

//! Property tests for the log2 histogram (ISSUE 2 satellite): merging is
//! exactly concatenation, and quantile estimates bound the true quantile
//! within one bucket.

use edm_obs::Histogram;
use proptest::prelude::*;

/// Sample values spanning several octaves, with zeros included.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        2 => Just(0u64),
        8 => 0u64..1_000,
        8 => 0u64..1_000_000,
        2 => 0u64..u64::MAX,
    ]
}

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Nearest-rank true quantile: sorted[ceil(q·n) − 1].
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(A, B) is exactly the histogram of A ++ B, for any split.
    #[test]
    fn merged_histograms_equal_concatenated_samples(
        a in prop::collection::vec(sample(), 0..200),
        b in prop::collection::vec(sample(), 0..200),
    ) {
        let mut merged = build(&a);
        merged.merge(&build(&b));

        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = build(&concat);

        prop_assert_eq!(&merged, &direct);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.max(), concat.iter().copied().max().unwrap_or(0));
    }

    /// The true quantile always lies inside the reported bucket bounds,
    /// and the point estimate is the (max-clamped) bucket upper bound —
    /// i.e. the estimate is off by at most one log2 bucket.
    #[test]
    fn quantile_bounds_contain_true_quantile(
        samples in prop::collection::vec(sample(), 1..300),
        q in 0.01f64..1.0,
    ) {
        let h = build(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for q in [q, 0.5, 0.95, 0.99] {
            let truth = true_quantile(&sorted, q);
            let (lo, hi) = h.quantile_bounds(q);
            prop_assert!(
                lo <= truth && truth <= hi,
                "q={q}: true quantile {truth} outside [{lo}, {hi}]"
            );
            prop_assert_eq!(h.quantile(q), hi);
            // One-bucket error bound: the bucket is [2^(k-1), 2^k)
            // (the top bucket's nominal upper edge needs u128 room).
            if lo > 0 {
                prop_assert!(
                    (hi as u128) < 2 * lo as u128,
                    "bucket wider than one octave: [{lo}, {hi}]"
                );
            }
        }
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(samples in prop::collection::vec(sample(), 1..300)) {
        let h = build(&samples);
        let qs = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
        prop_assert!(h.quantile(1.0) <= h.max());
    }
}

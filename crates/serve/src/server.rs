//! The daemon's HTTP server: a sequential accept loop over a
//! line-protocol subset of HTTP/1.1 (see [`crate::http`]).
//!
//! The server thread never touches simulation state. GET endpoints serve
//! the strings the session thread last published; POST endpoints flip
//! control flags or enqueue ingest lines on the shared [`Ctrl`] block.
//! One connection is serviced at a time — the daemon's API traffic is
//! control-plane, where simplicity beats throughput — and the listener
//! is polled non-blocking so a shutdown request is honored within a poll
//! interval even when no client ever connects again.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::http::{parse_request, status_text, write_response, ParseError, Request};
use crate::state::Ctrl;

/// Poll interval for the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Per-connection socket timeout: a stalled client cannot wedge the
/// control plane for longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_millis(2000);

/// Runs the accept loop until a shutdown is requested. Consumes the
/// listener; every response closes its connection.
pub fn serve(listener: TcpListener, ctrl: &Ctrl) {
    if listener.set_nonblocking(true).is_err() {
        // Without non-blocking accept the loop could never observe
        // shutdown; refuse to serve rather than hang forever.
        ctrl.request_shutdown();
        return;
    }
    loop {
        if ctrl.shutdown_requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => handle_connection(stream, ctrl),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Spawns the server thread. The handle joins once a shutdown request
/// is observed.
pub fn spawn_server(listener: TcpListener, ctrl: Arc<Ctrl>) -> std::thread::JoinHandle<()> {
    // edm-audit: allow(det.thread_order, "server thread shares only the Ctrl control block, never simulation state")
    std::thread::spawn(move || serve(listener, &ctrl))
}

fn handle_connection(stream: TcpStream, ctrl: &Ctrl) {
    // Accepted sockets may inherit the listener's non-blocking flag;
    // undo that and bound each read/write instead.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    match parse_request(&mut reader) {
        Ok(request) => respond(&mut writer, &request, ctrl),
        Err(ParseError::Io(_)) => {} // client went away; nothing to say
        Err(e) => {
            let _ = write_response(&mut writer, e.status(), "text/plain", e.detail().as_bytes());
        }
    }
    let _ = writer.flush();
}

fn respond(w: &mut TcpStream, request: &Request, ctrl: &Ctrl) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    let result = match (method, path) {
        ("GET", "/healthz") => json(w, &ctrl.published().healthz),
        ("GET", "/nodes") => json(w, &ctrl.published().nodes),
        ("GET", "/plan") => json(w, &ctrl.published().plan),
        ("GET", "/stats") => json(w, &ctrl.published().stats),
        ("GET", "/model") => json(w, &ctrl.published().model),
        ("GET", "/metrics") => write_response(
            w,
            200,
            "text/plain; version=0.0.4",
            ctrl.published().metrics.as_bytes(),
        ),
        ("POST", "/ingest") => match std::str::from_utf8(&request.body) {
            Err(_) => write_response(w, 400, "text/plain", b"ingest body is not UTF-8"),
            Ok(body) => match ctrl.push_ingest(body) {
                Ok(accepted) => json(w, &format!("{{\"accepted\":{accepted}}}")),
                Err(e) => write_response(w, 409, "text/plain", e.as_bytes()),
            },
        },
        ("POST", "/pause") => {
            ctrl.pause();
            json(w, "{\"paused\":true}")
        }
        ("POST", "/resume") => {
            ctrl.resume();
            json(w, "{\"paused\":false}")
        }
        ("POST", "/checkpoint") => {
            ctrl.request_checkpoint();
            json(w, "{\"checkpoint\":\"requested\"}")
        }
        ("POST", "/shutdown") => {
            ctrl.request_shutdown();
            json(w, "{\"shutdown\":\"requested\"}")
        }
        // Known paths with the wrong verb are 405, the rest 404.
        (
            _,
            "/healthz" | "/nodes" | "/plan" | "/stats" | "/model" | "/metrics" | "/ingest"
            | "/pause" | "/resume" | "/checkpoint" | "/shutdown",
        ) => write_response(w, 405, "text/plain", status_text(405).as_bytes()),
        _ => write_response(w, 404, "text/plain", status_text(404).as_bytes()),
    };
    let _ = result;
}

fn json(w: &mut TcpStream, body: &str) -> std::io::Result<()> {
    write_response(w, 200, "application/json", body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Published;
    use std::io::Read;

    fn start() -> (std::net::SocketAddr, Arc<Ctrl>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ctrl = Arc::new(Ctrl::new());
        ctrl.publish(Published {
            healthz: "{\"ok\":true}".to_string(),
            metrics: "# TYPE edm_x_total counter\nedm_x_total 1\n".to_string(),
            ..Published::default()
        });
        let handle = spawn_server(listener, Arc::clone(&ctrl));
        (addr, ctrl, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_published_views_and_control() {
        let (addr, ctrl, handle) = start();
        let reply = roundtrip(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("{\"ok\":true}"), "{reply}");

        let reply = roundtrip(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(reply.contains("edm_x_total 1"), "{reply}");

        let body = "w 0 0 4096\n";
        let reply = roundtrip(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(reply.contains("\"accepted\":1"), "{reply}");
        assert_eq!(ctrl.drain_ingest(10), vec!["w 0 0 4096"]);

        let reply = roundtrip(addr, "POST /pause HTTP/1.1\r\n\r\n");
        assert!(reply.contains("\"paused\":true"), "{reply}");
        assert!(ctrl.is_paused());

        let reply = roundtrip(addr, "DELETE /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}"); // parser: GET/POST only
        let reply = roundtrip(addr, "POST /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
        let reply = roundtrip(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");

        let reply = roundtrip(addr, "POST /shutdown HTTP/1.1\r\n\r\n");
        assert!(reply.contains("\"shutdown\""), "{reply}");
        handle.join().unwrap();
    }

    #[test]
    fn ingest_conflict_maps_to_409() {
        let (addr, ctrl, handle) = start();
        ctrl.push_ingest("end").unwrap();
        let reply = roundtrip(
            addr,
            "POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\nw000",
        );
        assert!(reply.starts_with("HTTP/1.1 409"), "{reply}");
        ctrl.request_shutdown();
        handle.join().unwrap();
    }
}

//! Pluggable application of migration decisions.
//!
//! The simulation decides *what* to move; a [`Backend`] is where the
//! move lands. The daemon wires one in behind the observability stream:
//! every `migration_finish` (and `rebuild_finish`) the engine journals
//! is applied to the backend, so the backend's view of object placement
//! tracks the catalog exactly, in completion order.
//!
//! Two implementations ship: [`MemBackend`] (an in-memory placement
//! overlay — the default, and what the gate exercises) and
//! [`DirBackend`] (a real directory tree, one subdirectory per OSD, one
//! file per object, moves as atomic renames).

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use edm_cluster::{ObjectId, OsdId};

/// Where completed migrations are applied.
pub trait Backend {
    /// Human-readable backend name for `/healthz`.
    fn name(&self) -> &'static str;

    /// Mirrors one completed migration: `object` (of `bytes` bytes) has
    /// left `source` and now lives on `dest`.
    fn apply_move(
        &mut self,
        object: ObjectId,
        source: OsdId,
        dest: OsdId,
        bytes: u64,
    ) -> Result<(), String>;

    /// Mirrors one completed rebuild: `object` was rematerialized on
    /// `dest` after its device was lost.
    fn apply_rebuild(&mut self, object: ObjectId, dest: OsdId, bytes: u64) -> Result<(), String>;

    /// Moves (and rebuilds) applied so far.
    fn moves_applied(&self) -> u64;
}

/// In-memory backend: a placement overlay plus counters. `location`
/// only holds objects that have moved at least once — exactly like the
/// cluster's remapping table.
#[derive(Debug, Default)]
pub struct MemBackend {
    location: BTreeMap<ObjectId, OsdId>,
    moves: u64,
    bytes_moved: u64,
}

impl MemBackend {
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// Current overlay location of an object, if it ever moved.
    pub fn location(&self, object: ObjectId) -> Option<OsdId> {
        self.location.get(&object).copied()
    }

    /// Total payload bytes applied.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

impl Backend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn apply_move(
        &mut self,
        object: ObjectId,
        _source: OsdId,
        dest: OsdId,
        bytes: u64,
    ) -> Result<(), String> {
        self.location.insert(object, dest);
        self.moves += 1;
        self.bytes_moved += bytes;
        Ok(())
    }

    fn apply_rebuild(&mut self, object: ObjectId, dest: OsdId, bytes: u64) -> Result<(), String> {
        self.location.insert(object, dest);
        self.moves += 1;
        self.bytes_moved += bytes;
        Ok(())
    }

    fn moves_applied(&self) -> u64 {
        self.moves
    }
}

/// Directory-tree backend: `<root>/osd_<n>/obj_<id>` files, one per
/// object, migrations applied as renames.
///
/// Object files are materialized lazily: the first move of an object
/// creates its source file (sized `bytes`, sparse where the filesystem
/// allows) rather than pre-creating the whole cluster, so the tree only
/// ever holds objects the migration machinery actually touched.
#[derive(Debug)]
pub struct DirBackend {
    root: PathBuf,
    moves: u64,
}

impl DirBackend {
    /// Opens (creating if needed) the backend root directory.
    pub fn open(root: PathBuf) -> Result<DirBackend, String> {
        fs::create_dir_all(&root)
            .map_err(|e| format!("creating backend root {}: {e}", root.display()))?;
        Ok(DirBackend { root, moves: 0 })
    }

    fn object_path(&self, osd: OsdId, object: ObjectId) -> PathBuf {
        self.root
            .join(format!("osd_{}", osd.0))
            .join(format!("obj_{}", object.0))
    }

    /// Ensures `path` exists with length `bytes`.
    fn materialize(path: &PathBuf, bytes: u64) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| format!("creating {}: {e}", path.display()))?;
        file.set_len(bytes)
            .map_err(|e| format!("sizing {}: {e}", path.display()))?;
        Ok(())
    }

    /// True when the backend holds a copy of `object` on `osd`.
    pub fn holds(&self, osd: OsdId, object: ObjectId) -> bool {
        self.object_path(osd, object).exists()
    }
}

impl Backend for DirBackend {
    fn name(&self) -> &'static str {
        "dir"
    }

    fn apply_move(
        &mut self,
        object: ObjectId,
        source: OsdId,
        dest: OsdId,
        bytes: u64,
    ) -> Result<(), String> {
        let from = self.object_path(source, object);
        if !from.exists() {
            DirBackend::materialize(&from, bytes)?;
        }
        let to = self.object_path(dest, object);
        DirBackend::materialize(&to, 0)?; // ensure the destination dir exists
        fs::rename(&from, &to)
            .map_err(|e| format!("moving {} to {}: {e}", from.display(), to.display()))?;
        self.moves += 1;
        Ok(())
    }

    fn apply_rebuild(&mut self, object: ObjectId, dest: OsdId, bytes: u64) -> Result<(), String> {
        let to = self.object_path(dest, object);
        DirBackend::materialize(&to, bytes)?;
        self.moves += 1;
        Ok(())
    }

    fn moves_applied(&self) -> u64 {
        self.moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_tracks_moves() {
        let mut b = MemBackend::new();
        assert_eq!(b.location(ObjectId(7)), None);
        b.apply_move(ObjectId(7), OsdId(1), OsdId(3), 4096).unwrap();
        b.apply_move(ObjectId(7), OsdId(3), OsdId(5), 4096).unwrap();
        b.apply_rebuild(ObjectId(9), OsdId(2), 8192).unwrap();
        assert_eq!(b.location(ObjectId(7)), Some(OsdId(5)));
        assert_eq!(b.location(ObjectId(9)), Some(OsdId(2)));
        assert_eq!(b.moves_applied(), 3);
        assert_eq!(b.bytes_moved(), 4096 + 4096 + 8192);
    }

    #[test]
    fn dir_backend_moves_files() {
        let root =
            std::env::temp_dir().join(format!("edm-serve-dirbackend-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let mut b = DirBackend::open(root.clone()).unwrap();
        b.apply_move(ObjectId(42), OsdId(0), OsdId(2), 1 << 16)
            .unwrap();
        assert!(!b.holds(OsdId(0), ObjectId(42)));
        assert!(b.holds(OsdId(2), ObjectId(42)));
        let meta = fs::metadata(root.join("osd_2").join("obj_42")).unwrap();
        assert_eq!(meta.len(), 1 << 16);
        b.apply_rebuild(ObjectId(43), OsdId(1), 512).unwrap();
        assert!(b.holds(OsdId(1), ObjectId(43)));
        assert_eq!(b.moves_applied(), 2);
        let _ = fs::remove_dir_all(&root);
    }
}

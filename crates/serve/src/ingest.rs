//! Ingest mode: a live, serialized mirror of the engine's op-service
//! path.
//!
//! Replay mode drives the full discrete-event engine; ingest mode cannot
//! — operations arrive from the network with no future to schedule
//! against. [`LiveWorld`] therefore applies each operation *immediately*
//! against the same cluster substrate (catalog, striping, OSDs, FTL),
//! advancing a virtual clock by the service time of what it just did:
//!
//! * file ops map through the RAID layout exactly like the engine
//!   ([`issue`-path parity]: same `on_access` pages, same device calls,
//!   same `Wc` accounting, same EWMA update) but execute serially, with
//!   no queueing — virtual time advances by the summed sub-op service
//!   times;
//! * wear-monitor ticks fire whenever the clock crosses the scenario's
//!   `wear_tick_us` boundary: policy tick, trigger evaluation, Algorithm
//!   1 planning (`plan_obs`, journaling its trigger/plan/assessment
//!   exactly as in batch runs), capacity sanitation mirroring the
//!   engine's `fire_migration`, and instant move execution (device
//!   read-plus-write for wear realism, `migration_start`/
//!   `migration_finish`/`remap_update` journaled in the engine's order);
//! * no queue-depth events are emitted — there are no queues — which by
//!   the conformance spec's rules leaves the queue model trivially
//!   satisfied, so `edm-probe --verify` accepts ingest journals.
//!
//! Crash recovery: [`LiveWorld::checkpoint_now`] snapshots the scenario
//! text, clock, counters, cluster, and policy state at a tick boundary;
//! [`LiveWorld::resume`] rebuilds the world and then *replays the dedup*:
//! the first `applied_ops` valid operations of a re-fed stream are
//! skipped without touching state. Feeding the full op stream to a
//! resumed daemon therefore converges on the exact state of an
//! uninterrupted run — the recovery property the serve gate checks.

use std::path::{Path, PathBuf};

use edm_cluster::migrate::validate_plan;
use edm_cluster::osd::OsdError;
use edm_cluster::{
    AccessEvent, AccessKind, Cluster, MigrationSchedule, Migrator, MoveAction, OsdId,
};
use edm_obs::{Event, Recorder};
use edm_scenario::Scenario;
use edm_snap::{SnapError, SnapWriter, SnapshotFile};
use edm_workload::{FileId, FileOp};

/// Layout version of the `serve-live` snapshot section.
const SNAP_VERSION: u64 = 1;

/// Snapshot section holding the live-world scalar state.
const SECTION: &str = "serve-live";

/// Pages an access `[offset, offset + len)` touches (mirror of the
/// cluster crate's internal accounting).
fn pages_spanned(offset: u64, len: u64, page_size: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    (offset + len - 1) / page_size - offset / page_size + 1
}

/// What [`LiveWorld::apply_line`] did with one operation line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The operation mutated the world; `ticked` reports whether a wear
    /// tick fired afterwards (the daemon's checkpoint-safe point).
    Applied { ticked: bool },
    /// The operation was consumed by resume dedup: an earlier
    /// incarnation already applied it.
    Replayed,
    /// The line failed validation; nothing was mutated.
    Rejected(String),
}

/// Counter snapshot for `/stats` and `/healthz` rendering. Every field
/// here is *convergent*: an interrupted-and-resumed session re-fed the
/// same stream finishes with the same values as an uninterrupted one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    pub applied_ops: u64,
    pub reads: u64,
    pub writes: u64,
    pub ticks: u64,
    pub migration_evaluations: u64,
    pub migrations_triggered: u64,
    pub failed_moves: u64,
    pub moved_objects: u64,
    pub moved_bytes: u64,
}

/// The ingest-mode world: cluster + policy + virtual clock.
pub struct LiveWorld {
    scenario: Scenario,
    cluster: Cluster,
    policy: Box<dyn Migrator>,
    page_size: u64,
    now_us: u64,
    next_tick_us: u64,
    /// Valid operations to silently skip after a resume (dedup).
    skip_remaining: u64,
    /// Operations consumed by dedup this incarnation.
    skipped_ops: u64,
    /// Lines rejected by validation this incarnation.
    rejected_lines: u64,
    stats: LiveStats,
    last_error: Option<String>,
}

impl LiveWorld {
    /// Builds a fresh world from a scenario. Ingest mode requires the
    /// continuous (`every-tick`) schedule — there is no trace midpoint
    /// to anchor one-shot migration on — and rejects injected failures,
    /// which only make sense against the engine's queues.
    pub fn new(scenario: Scenario) -> Result<LiveWorld, String> {
        if scenario.schedule != MigrationSchedule::EveryTick {
            return Err("ingest mode requires `schedule every-tick`".to_string());
        }
        if !scenario.failures.is_empty() {
            return Err("ingest mode does not support injected failures".to_string());
        }
        let trace = scenario.synth_trace();
        let cluster = scenario.build_cluster(&trace)?;
        let policy = scenario.build_policy()?;
        let page_size = cluster.osd(OsdId(0)).ssd().geometry().page_size;
        let next_tick_us = cluster.config.wear_tick_us;
        Ok(LiveWorld {
            scenario,
            cluster,
            policy,
            page_size,
            now_us: 0,
            next_tick_us,
            skip_remaining: 0,
            skipped_ops: 0,
            rejected_lines: 0,
            stats: LiveStats::default(),
            last_error: None,
        })
    }

    /// Emits the journal preamble (call once, right after constructing
    /// the recorder). Mirrors the engine's `run_meta` record.
    pub fn emit_run_meta(&self, obs: &mut dyn Recorder) {
        if !obs.events_on() {
            return;
        }
        let geometry = self.cluster.osd(OsdId(0)).ssd().geometry();
        let blocks = geometry.blocks as u64;
        obs.set_now(0);
        obs.event(Event::RunMeta {
            osds: self.cluster.config.osds,
            groups: self.cluster.config.groups,
            objects_per_file: self.cluster.config.objects_per_file,
            capacity_bytes: self.cluster.osd(OsdId(0)).capacity_bytes(),
            blocks_per_osd: blocks,
        });
    }

    // ---- accessors ------------------------------------------------------

    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    pub fn policy_name(&self) -> String {
        self.policy.name().to_string()
    }

    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// Operations consumed by resume dedup this incarnation.
    pub fn skipped_ops(&self) -> u64 {
        self.skipped_ops
    }

    /// Valid operations still owed to the dedup skip window.
    pub fn skip_remaining(&self) -> u64 {
        self.skip_remaining
    }

    pub fn rejected_lines(&self) -> u64 {
        self.rejected_lines
    }

    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// The policy's current plan against the live cluster state,
    /// without journaling or applying anything (the `/plan` endpoint).
    /// Read-only by the `plan_obs` contract.
    pub fn preview_plan(&mut self) -> Vec<MoveAction> {
        let view = self.cluster.view(self.now_us);
        self.policy.plan_obs(&view, &mut edm_obs::NoopRecorder)
    }

    // ---- op application -------------------------------------------------

    /// Validates and applies one operation line (`r|w <file> <offset>
    /// <len>`). Validation is complete before any mutation, so a
    /// rejected line leaves the world untouched — which is also what
    /// keeps resume dedup aligned: only *valid* lines consume the skip
    /// window, and validation is deterministic across incarnations.
    pub fn apply_line(&mut self, line: &str, obs: &mut dyn Recorder) -> ApplyOutcome {
        let (file, op) = match parse_op_line(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.rejected_lines += 1;
                return ApplyOutcome::Rejected(e);
            }
        };
        if self.cluster.catalog.file(file).is_none() {
            self.rejected_lines += 1;
            return ApplyOutcome::Rejected(format!("unknown file {}", file.0));
        }
        let (offset, len, write) = match op {
            FileOp::Read { offset, len } => (offset, len, false),
            FileOp::Write { offset, len } => (offset, len, true),
            // parse_op_line only produces reads and writes.
            FileOp::Open | FileOp::Close => {
                self.rejected_lines += 1;
                return ApplyOutcome::Rejected("open/close are not ingestible".to_string());
            }
        };
        if len == 0 {
            self.rejected_lines += 1;
            return ApplyOutcome::Rejected("zero-length I/O".to_string());
        }
        let layout = *self.cluster.catalog.layout();
        let ios = if write {
            layout.map_write(offset, len)
        } else {
            layout.map_read(offset, len)
        };
        let placement = *self.cluster.catalog.placement();
        // Full validation pass before any mutation.
        for io in &ios {
            let object = placement.object_id(file, io.object_index);
            let Some(size) = self.cluster.object_size(object) else {
                self.rejected_lines += 1;
                return ApplyOutcome::Rejected(format!(
                    "file {} has no object index {}",
                    file.0, io.object_index
                ));
            };
            if io.offset + io.len > size {
                self.rejected_lines += 1;
                return ApplyOutcome::Rejected(format!(
                    "I/O beyond file {}: object {} is {} bytes, sub-op wants [{}, {})",
                    file.0,
                    object,
                    size,
                    io.offset,
                    io.offset + io.len
                ));
            }
        }
        // The line is valid: it consumes the dedup window or applies.
        if self.skip_remaining > 0 {
            self.skip_remaining -= 1;
            self.skipped_ops += 1;
            return ApplyOutcome::Replayed;
        }
        obs.set_now(self.now_us);
        let mut service_us = 0u64;
        for io in ios {
            let object = placement.object_id(file, io.object_index);
            self.policy.on_access(AccessEvent {
                now_us: self.now_us,
                object,
                kind: if io.kind.is_write() {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                pages: pages_spanned(io.offset, io.len, self.page_size),
            });
            let osd = self.cluster.catalog.locate(object);
            obs.set_device(Some(osd.0));
            let device = if io.kind.is_write() {
                self.cluster
                    .osd_mut(osd)
                    .write_object_obs(object, io.offset, io.len, obs)
            } else {
                self.cluster
                    .osd_mut(osd)
                    .read_object(object, io.offset, io.len)
            };
            obs.set_device(None);
            let device_us = match device {
                Ok(t) => t.as_micros(),
                // Unreachable after validation; record rather than panic
                // (a daemon must not die on a protocol-level surprise).
                Err(e) => {
                    self.last_error = Some(format!("device op on {osd}: {e}"));
                    0
                }
            };
            let sub_service = self.cluster.config.osd_overhead_us + device_us;
            self.cluster.osd_mut(osd).record_service(sub_service);
            obs.latency("subop_sojourn_us", sub_service);
            service_us += sub_service;
        }
        self.now_us += service_us;
        self.stats.applied_ops += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        obs.counter("serve.ops_applied", 1);
        let mut ticked = false;
        if self.now_us >= self.next_tick_us {
            self.run_tick(obs);
            ticked = true;
            while self.next_tick_us <= self.now_us {
                self.next_tick_us += self.cluster.config.wear_tick_us;
            }
        }
        ApplyOutcome::Applied { ticked }
    }

    // ---- wear-monitor tick ----------------------------------------------

    /// The live tick body: mirror of the engine's `handle_tick` under the
    /// continuous schedule, minus queue sampling (there are no queues).
    fn run_tick(&mut self, obs: &mut dyn Recorder) {
        obs.set_now(self.now_us);
        obs.counter("sim.ticks", 1);
        self.stats.ticks += 1;
        self.policy.on_tick(self.now_us);
        self.fire_migration(obs);
        for o in 0..self.cluster.config.osds {
            self.cluster.osd_mut(OsdId(o)).reset_wc_window();
        }
        self.policy.on_window_reset();
    }

    /// Mirror of the engine's `fire_migration`: plan, validate, capacity-
    /// sanitize, then (unlike the engine's queued transfer) execute each
    /// accepted move instantly.
    fn fire_migration(&mut self, obs: &mut dyn Recorder) {
        let view = self.cluster.view(self.now_us);
        obs.counter("sim.migration_evaluations", 1);
        self.stats.migration_evaluations += 1;
        let plan = self.policy.plan_obs(&view, obs);
        if plan.is_empty() {
            return;
        }
        let placement = *self.cluster.catalog.placement();
        if let Err(e) = validate_plan(&plan, &view, false, |o| placement.group_of(o)) {
            // A structurally invalid plan is a policy bug; the batch
            // engine aborts, a daemon drops the round and keeps serving.
            self.last_error = Some(format!(
                "policy {} produced invalid plan: {e}",
                self.policy.name()
            ));
            self.stats.failed_moves += plan.len() as u64;
            return;
        }
        // Capacity sanitation, exactly as in the engine (§III.B.5 "to
        // avoid disk saturation"). No pending-move exclusion: live moves
        // complete within the tick, so none are ever in flight here.
        let mut projected_free: Vec<i64> = (0..self.cluster.config.osds)
            .map(|o| self.cluster.osd(OsdId(o)).free_bytes() as i64)
            .collect();
        let reserve = (self.cluster.osd(OsdId(0)).capacity_bytes() as f64
            * self.cluster.config.dest_free_reserve) as i64;
        let mut accepted = Vec::new();
        for action in plan {
            let size = self.cluster.object_size(action.object).unwrap_or(0) as i64;
            let Some(dest_free) = projected_free.get_mut(action.dest.0 as usize) else {
                self.stats.failed_moves += 1;
                continue;
            };
            if *dest_free - size < reserve {
                self.stats.failed_moves += 1;
                continue;
            }
            *dest_free -= size;
            if let Some(source_free) = projected_free.get_mut(action.source.0 as usize) {
                *source_free += size;
            }
            accepted.push(action);
        }
        if accepted.is_empty() {
            return;
        }
        self.stats.migrations_triggered += 1;
        for action in accepted {
            self.execute_move(action, obs);
        }
    }

    /// Executes one accepted move instantly: allocate at the destination,
    /// copy through the devices (wear + `Wc` accounting), drop the
    /// source, update the catalog — journaling the engine's exact event
    /// sequence (`migration_start` … `migration_finish`, `remap_update`).
    fn execute_move(&mut self, action: MoveAction, obs: &mut dyn Recorder) {
        let Some(size) = self.cluster.object_size(action.object) else {
            self.stats.failed_moves += 1;
            return;
        };
        match self
            .cluster
            .osd_mut(action.dest)
            .create_object(action.object, size, false)
        {
            Ok(_) => {}
            Err(OsdError::NoSpace { .. }) => {
                self.stats.failed_moves += 1;
                return;
            }
            Err(e) => {
                self.last_error =
                    Some(format!("move of {} to {}: {e}", action.object, action.dest));
                self.stats.failed_moves += 1;
                return;
            }
        }
        obs.counter("sim.moves_started", 1);
        if obs.events_on() {
            obs.event(Event::MigrationStart {
                object: action.object.0,
                source: action.source.0,
                dest: action.dest.0,
                bytes: size,
            });
        }
        // The copy is charged to the devices (read wear at the source,
        // write wear + Wc at the destination) but not to the clock: the
        // whole move lands at the tick instant.
        obs.set_device(Some(action.source.0));
        let read = self
            .cluster
            .osd_mut(action.source)
            .read_whole_object(action.object);
        obs.set_device(Some(action.dest.0));
        let write = read.and_then(|_| {
            self.cluster
                .osd_mut(action.dest)
                .write_object_obs(action.object, 0, size, obs)
        });
        obs.set_device(None);
        if let Err(e) = write {
            // Roll the half-made copy back so the catalog stays coherent.
            self.last_error = Some(format!("move copy of {} failed: {e}", action.object));
            let _ = self
                .cluster
                .osd_mut(action.dest)
                .remove_object(action.object);
            self.stats.failed_moves += 1;
            return;
        }
        if let Err(e) = self
            .cluster
            .osd_mut(action.source)
            .remove_object(action.object)
        {
            self.last_error = Some(format!("dropping source copy of {}: {e}", action.object));
            let _ = self
                .cluster
                .osd_mut(action.dest)
                .remove_object(action.object);
            self.stats.failed_moves += 1;
            return;
        }
        self.cluster.catalog.record_move(action.object, action.dest);
        obs.counter("sim.moved_objects", 1);
        obs.counter("sim.moved_bytes", size);
        if obs.events_on() {
            obs.event(Event::MigrationFinish {
                object: action.object.0,
                source: action.source.0,
                dest: action.dest.0,
                bytes: size,
            });
            obs.event(Event::RemapUpdate {
                object: action.object.0,
                dest: action.dest.0,
            });
        }
        self.stats.moved_objects += 1;
        self.stats.moved_bytes += size;
    }

    // ---- crash recovery -------------------------------------------------

    /// Cuts a checkpoint into `dir`. Only call at a tick boundary (the
    /// daemon does so on `Applied { ticked: true }` or between ops) —
    /// the world holds no mid-decision state there by construction.
    pub fn checkpoint_now(&self, dir: &Path) -> Result<PathBuf, SnapError> {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return Err(SnapError::Io(format!(
                "creating checkpoint dir {}: {e}",
                dir.display()
            )));
        }
        let mut snap = SnapshotFile::new();
        let mut w = SnapWriter::new();
        w.put_u64(SNAP_VERSION);
        w.put_str(&self.scenario.to_text());
        w.put_str(self.policy.name());
        w.put_u64(self.now_us);
        w.put_u64(self.next_tick_us);
        w.put_u64(self.stats.applied_ops);
        w.put_u64(self.stats.reads);
        w.put_u64(self.stats.writes);
        w.put_u64(self.stats.ticks);
        w.put_u64(self.stats.migration_evaluations);
        w.put_u64(self.stats.migrations_triggered);
        w.put_u64(self.stats.failed_moves);
        w.put_u64(self.stats.moved_objects);
        w.put_u64(self.stats.moved_bytes);
        snap.push_section(SECTION, w);
        snap.push("cluster", &self.cluster);
        let mut pw = SnapWriter::new();
        self.policy.save_state(&mut pw);
        snap.push_section("policy", pw);
        let path = dir.join(format!("ckpt_{:020}.snap", self.now_us));
        snap.write_to(&path)?;
        Ok(path)
    }

    /// Rebuilds a world from a checkpoint. The resumed world skips the
    /// first `applied_ops` valid operations it is fed, so the host can
    /// (and the gate does) re-feed the entire op stream.
    pub fn resume(path: &Path) -> Result<LiveWorld, String> {
        let snap = SnapshotFile::read_from(path)
            .map_err(|e| format!("{}: cannot read checkpoint: {e}", path.display()))?;
        let mut r = snap
            .reader(SECTION)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let version = r.take_u64();
        if version != SNAP_VERSION {
            return Err(format!(
                "{}: serve-live snapshot version {version}, expected {SNAP_VERSION}",
                path.display()
            ));
        }
        let scenario_text = r.take_string();
        let policy_name = r.take_string();
        let now_us = r.take_u64();
        let next_tick_us = r.take_u64();
        let stats = LiveStats {
            applied_ops: r.take_u64(),
            reads: r.take_u64(),
            writes: r.take_u64(),
            ticks: r.take_u64(),
            migration_evaluations: r.take_u64(),
            migrations_triggered: r.take_u64(),
            failed_moves: r.take_u64(),
            moved_objects: r.take_u64(),
            moved_bytes: r.take_u64(),
        };
        r.finish(SECTION)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let scenario = Scenario::parse(&scenario_text)
            .map_err(|e| format!("{}: embedded scenario: {e}", path.display()))?;
        let mut policy = scenario.build_policy()?;
        if policy.name() != policy_name {
            return Err(format!(
                "{}: checkpoint was cut under policy {policy_name:?}, scenario builds {:?}",
                path.display(),
                policy.name()
            ));
        }
        let cluster: Cluster = snap
            .decode("cluster")
            .map_err(|e| format!("{}: cluster section: {e}", path.display()))?;
        {
            let mut pr = snap
                .reader("policy")
                .map_err(|e| format!("{}: {e}", path.display()))?;
            policy.load_state(&mut pr);
            pr.finish("policy")
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        let page_size = cluster.osd(OsdId(0)).ssd().geometry().page_size;
        Ok(LiveWorld {
            scenario,
            cluster,
            policy,
            page_size,
            now_us,
            next_tick_us,
            skip_remaining: stats.applied_ops,
            skipped_ops: 0,
            rejected_lines: 0,
            stats,
            last_error: None,
        })
    }
}

/// Parses one op line: `r <file> <offset> <len>` or `w <file> <offset>
/// <len>` (decimal integers).
fn parse_op_line(line: &str) -> Result<(FileId, FileOp), String> {
    let mut it = line.split_ascii_whitespace();
    let kind = it.next().ok_or("empty line")?;
    let mut num = |what: &str| -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("missing {what}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad {what}: {e}"))
    };
    let file = FileId(num("file id")?);
    let offset = num("offset")?;
    let len = num("length")?;
    if it.next().is_some() {
        return Err("trailing tokens after <len>".to_string());
    }
    let op = match kind {
        "r" => FileOp::Read { offset, len },
        "w" => FileOp::Write { offset, len },
        other => return Err(format!("unknown op {other:?} (expected r or w)")),
    };
    Ok((file, op))
}

/// Renders a scenario's synthesized trace as ingest protocol lines
/// (reads and writes only; opens and closes carry no device work). This
/// is what `edm-serve --dump-ops` prints, and what the serve gate feeds
/// back through `POST /ingest`.
pub fn dump_ops(scenario: &Scenario) -> String {
    let trace = scenario.synth_trace();
    let mut out = String::new();
    for record in &trace.records {
        match record.op {
            FileOp::Read { offset, len } => {
                out.push_str(&format!("r {} {} {}\n", record.file.0, offset, len));
            }
            FileOp::Write { offset, len } => {
                out.push_str(&format!("w {} {} {}\n", record.file.0, offset, len));
            }
            FileOp::Open | FileOp::Close => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_obs::{MemoryRecorder, ObsLevel};

    fn scenario() -> Scenario {
        Scenario {
            trace: "random".into(),
            scale: 0.002,
            osds: 8,
            groups: 4,
            schedule: MigrationSchedule::EveryTick,
            lambda: 0.05,
            ..Scenario::default()
        }
    }

    #[test]
    fn rejects_wrong_schedule_and_failures() {
        let mut s = scenario();
        s.schedule = MigrationSchedule::Midpoint;
        assert!(LiveWorld::new(s)
            .err()
            .expect("must fail")
            .contains("every-tick"));
        let mut s = scenario();
        s.failures = vec![edm_cluster::FailureSpec {
            at_us: 1,
            osd: OsdId(0),
            rebuild: false,
        }];
        assert!(LiveWorld::new(s)
            .err()
            .expect("must fail")
            .contains("failures"));
    }

    #[test]
    fn parse_op_line_accepts_and_rejects() {
        assert_eq!(
            parse_op_line("w 3 0 4096").unwrap(),
            (
                FileId(3),
                FileOp::Write {
                    offset: 0,
                    len: 4096
                }
            )
        );
        assert_eq!(
            parse_op_line("r 12 512 100").unwrap(),
            (
                FileId(12),
                FileOp::Read {
                    offset: 512,
                    len: 100
                }
            )
        );
        assert!(parse_op_line("x 1 2 3").is_err());
        assert!(parse_op_line("w 1 2").is_err());
        assert!(parse_op_line("w 1 2 3 4").is_err());
        assert!(parse_op_line("w one 2 3").is_err());
    }

    #[test]
    fn invalid_lines_do_not_mutate() {
        let mut w = LiveWorld::new(scenario()).unwrap();
        let mut obs = MemoryRecorder::new(ObsLevel::Off);
        assert!(matches!(
            w.apply_line("w 999999999 0 1", &mut obs),
            ApplyOutcome::Rejected(_)
        ));
        assert!(matches!(
            w.apply_line("garbage", &mut obs),
            ApplyOutcome::Rejected(_)
        ));
        assert_eq!(w.stats().applied_ops, 0);
        assert_eq!(w.rejected_lines(), 2);
        assert_eq!(w.now_us(), 0);
    }

    #[test]
    fn ops_advance_time_and_fire_ticks() {
        let mut w = LiveWorld::new(scenario()).unwrap();
        let mut obs = MemoryRecorder::new(ObsLevel::Events);
        w.emit_run_meta(&mut obs);
        let ops = dump_ops(w.scenario());
        let lines: Vec<&str> = ops.lines().collect();
        assert!(lines.len() > 500, "scenario too small to exercise ticks");
        let mut ticked = 0u64;
        for line in &lines {
            match w.apply_line(line, &mut obs) {
                ApplyOutcome::Applied { ticked: t } => ticked += t as u64,
                ApplyOutcome::Rejected(e) => panic!("dump_ops line rejected: {e}"),
                ApplyOutcome::Replayed => panic!("fresh world must not dedup"),
            }
        }
        assert!(w.now_us() > 0);
        assert!(
            ticked > 0,
            "the full op stream must cross at least one wear tick"
        );
        assert_eq!(w.stats().ticks, ticked);
        assert_eq!(obs.counter_value("sim.ticks"), ticked);
        assert_eq!(w.stats().applied_ops, lines.len() as u64);
        // Journal time is non-decreasing (canonical order holds).
        let mut last = 0;
        for e in obs.journal() {
            assert!(e.t_us >= last);
            last = e.t_us;
        }
    }

    #[test]
    fn checkpoint_resume_converges_with_uninterrupted_run() {
        let dir = std::env::temp_dir().join(format!("edm-serve-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ops = dump_ops(&scenario());
        let lines: Vec<&str> = ops.lines().take(3000).collect();

        // Uninterrupted run.
        let mut a = LiveWorld::new(scenario()).unwrap();
        let mut obs_a = MemoryRecorder::new(ObsLevel::Metrics);
        for line in &lines {
            a.apply_line(line, &mut obs_a);
        }

        // Interrupted at op 1000, resumed, re-fed the FULL stream.
        let mut b1 = LiveWorld::new(scenario()).unwrap();
        let mut obs_b = MemoryRecorder::new(ObsLevel::Metrics);
        for line in lines.iter().take(1000) {
            b1.apply_line(line, &mut obs_b);
        }
        let path = b1.checkpoint_now(&dir).unwrap();
        drop(b1);
        let mut b2 = LiveWorld::resume(&path).unwrap();
        let mut obs_b2 = MemoryRecorder::new(ObsLevel::Metrics);
        for line in &lines {
            b2.apply_line(line, &mut obs_b2);
        }

        assert_eq!(b2.skipped_ops(), 1000);
        assert_eq!(a.stats(), b2.stats());
        assert_eq!(a.now_us(), b2.now_us());
        // Device-level state converges too: wear, placement, free space.
        for o in 0..a.cluster().config.osds {
            let (oa, ob) = (a.cluster().osd(OsdId(o)), b2.cluster().osd(OsdId(o)));
            assert_eq!(
                oa.ssd().wear().block_erases,
                ob.ssd().wear().block_erases,
                "osd {o}"
            );
            assert_eq!(oa.free_bytes(), ob.free_bytes(), "osd {o}");
            assert_eq!(oa.object_count(), ob.object_count(), "osd {o}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

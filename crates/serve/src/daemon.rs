//! The daemon itself: session loops wiring the simulation to the HTTP
//! control plane.
//!
//! Threading model: `run_daemon_on` spawns exactly one extra thread (the
//! HTTP server) and keeps every piece of simulation state — trace,
//! policy, cluster, recorder — on the calling thread's stack. The two
//! threads meet only at the [`Ctrl`] block. In replay mode the recorder
//! sits in a `RefCell` because the [`LiveRun`] engine holds an exclusive
//! borrow of its recorder for the whole run; the cell lets the session
//! loop read journals and counters between steps, when the engine is
//! suspended and provably not borrowing.

use std::cell::RefCell;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use edm_cluster::{CheckpointConfig, LiveRun, SimOptions, SnapManifest, StepPause, TimeSource};
use edm_obs::{render_prometheus, Histogram, ObsLevel, Recorder};
use edm_scenario::{render_report, report_digest, Scenario, SnapMeta};
use edm_snap::SnapshotFile;

use crate::backend::{Backend, DirBackend, MemBackend};
use crate::ingest::{ApplyOutcome, LiveWorld};
use crate::pacer::{DilatedPacer, FlatOut};
use crate::recorder::ServeRecorder;
use crate::server::spawn_server;
use crate::state::{Ctrl, Published};
use crate::views;

/// How the daemon sources its operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Replay the scenario's synthesized trace through the full engine,
    /// dilated against the wall clock.
    Replay,
    /// Accept operations over `POST /ingest` and apply them live.
    Ingest,
}

/// Which backend receives completed migrations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendKind {
    Mem,
    Dir(PathBuf),
}

/// Everything `run_daemon_on` needs besides the listener.
pub struct DaemonConfig {
    pub scenario: Scenario,
    pub mode: Mode,
    /// Virtual µs per wall µs for replay pacing; `None` replays flat out.
    pub speed: Option<f64>,
    pub checkpoint_dir: Option<PathBuf>,
    /// Periodic checkpoint cadence (virtual µs). On-demand
    /// `POST /checkpoint` works regardless whenever a dir is configured.
    pub checkpoint_every_us: Option<u64>,
    /// Resume from this checkpoint instead of starting fresh.
    pub resume: Option<PathBuf>,
    /// Write the event journal here on exit.
    pub journal: Option<PathBuf>,
    pub obs_level: ObsLevel,
    pub backend: BackendKind,
}

/// Sleep for the session loop when there is nothing to do (paused, or
/// ingest queue empty).
const IDLE: Duration = Duration::from_millis(1);

/// Ingest lines drained per session-loop iteration.
const DRAIN_BATCH: usize = 256;

/// Publish progress every this many pacer yields during replay, so
/// `/stats` tracks a dilated run without paying a render per event.
const YIELD_PUBLISH_PERIOD: u64 = 64;

/// Runs the daemon on an already-bound listener until a shutdown is
/// requested over HTTP (or the session fails to build). Binding is left
/// to the caller so tests and the CLI can pick ports their own way.
pub fn run_daemon_on(listener: TcpListener, config: DaemonConfig) -> Result<(), String> {
    let backend: Box<dyn Backend> = match &config.backend {
        BackendKind::Mem => Box::new(MemBackend::new()),
        BackendKind::Dir(root) => Box::new(DirBackend::open(root.clone())?),
    };
    let recorder = RefCell::new(ServeRecorder::new(config.obs_level, backend));
    let ctrl = Arc::new(Ctrl::new());
    let server = spawn_server(listener, Arc::clone(&ctrl));
    let session = match config.mode {
        Mode::Ingest => run_ingest_session(&config, &ctrl, &recorder),
        Mode::Replay => run_replay_session(&config, &ctrl, &recorder),
    };
    // Whatever happened, release the server thread before returning.
    ctrl.request_shutdown();
    if server.join().is_err() {
        return Err("server thread panicked".to_string());
    }
    if let Some(path) = &config.journal {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("creating journal {}: {e}", path.display()))?;
        let mut w = std::io::BufWriter::new(file);
        recorder
            .borrow()
            .inner()
            .write_jsonl(&mut w)
            .map_err(|e| format!("writing journal {}: {e}", path.display()))?;
    }
    session
}

// ---------------------------------------------------------------------------
// Ingest mode
// ---------------------------------------------------------------------------

fn run_ingest_session(
    config: &DaemonConfig,
    ctrl: &Ctrl,
    recorder: &RefCell<ServeRecorder>,
) -> Result<(), String> {
    let mut world = match &config.resume {
        Some(path) => LiveWorld::resume(path)?,
        None => LiveWorld::new(config.scenario.clone())?,
    };
    {
        let mut rec = recorder.borrow_mut();
        world.emit_run_meta(&mut *rec);
    }
    let mut checkpoints = 0u64;
    let mut last_ckpt_us = world.now_us();
    let mut was_paused = false;
    publish_ingest(ctrl, &world, recorder, checkpoints, false);
    loop {
        if ctrl.shutdown_requested() {
            return Ok(());
        }
        if ctrl.is_paused() {
            if !was_paused {
                // Republish so /healthz reflects the pause; the view is a
                // snapshot, and the loop publishes nothing while it sleeps.
                was_paused = true;
                publish_ingest(ctrl, &world, recorder, checkpoints, ctrl.ingest_complete());
            }
            std::thread::sleep(IDLE);
            continue;
        }
        if was_paused {
            was_paused = false;
            publish_ingest(ctrl, &world, recorder, checkpoints, ctrl.ingest_complete());
        }
        // An explicit checkpoint request is honored between operations:
        // the live world holds no mid-decision state there.
        if ctrl.take_checkpoint_request() {
            checkpoint_world(config, &world, &mut checkpoints, &mut last_ckpt_us)?;
            publish_ingest(ctrl, &world, recorder, checkpoints, ctrl.ingest_complete());
        }
        let lines = ctrl.drain_ingest(DRAIN_BATCH);
        if lines.is_empty() {
            if ctrl.ingest_complete() {
                publish_ingest(ctrl, &world, recorder, checkpoints, true);
            }
            std::thread::sleep(IDLE);
            continue;
        }
        for line in &lines {
            let outcome = {
                let mut rec = recorder.borrow_mut();
                world.apply_line(line, &mut *rec)
            };
            if let ApplyOutcome::Applied { ticked: true } = outcome {
                let due = config
                    .checkpoint_every_us
                    .is_some_and(|every| world.now_us() >= last_ckpt_us.saturating_add(every));
                if due {
                    checkpoint_world(config, &world, &mut checkpoints, &mut last_ckpt_us)?;
                }
                publish_ingest(ctrl, &world, recorder, checkpoints, false);
            }
        }
        publish_ingest(ctrl, &world, recorder, checkpoints, ctrl.ingest_complete());
    }
}

fn checkpoint_world(
    config: &DaemonConfig,
    world: &LiveWorld,
    checkpoints: &mut u64,
    last_ckpt_us: &mut u64,
) -> Result<(), String> {
    let Some(dir) = &config.checkpoint_dir else {
        // No dir configured: the request is acknowledged but inert.
        return Ok(());
    };
    world
        .checkpoint_now(dir)
        .map_err(|e| format!("checkpoint failed: {e}"))?;
    *checkpoints += 1;
    *last_ckpt_us = world.now_us();
    Ok(())
}

fn publish_ingest(
    ctrl: &Ctrl,
    world: &LiveWorld,
    recorder: &RefCell<ServeRecorder>,
    checkpoints: u64,
    done: bool,
) {
    let rec = recorder.borrow();
    let (accepted, buffered, closed) = ctrl.ingest_status();
    let stats = world.stats();
    let health = views::HealthInfo {
        mode: "ingest",
        policy: &world.policy_name(),
        backend: rec.backend().name(),
        now_us: world.now_us(),
        paused: ctrl.is_paused(),
        done,
        ingest_accepted: accepted,
        ingest_buffered: buffered as u64,
        ingest_closed: closed,
        skipped_ops: world.skipped_ops(),
        rejected_lines: world.rejected_lines(),
        checkpoints,
        backend_moves: rec.backend().moves_applied(),
        backend_errors: rec.backend_errors(),
        last_error: world.last_error().or(rec.last_backend_error()),
    };
    ctrl.publish(Published {
        healthz: views::render_healthz(&health),
        nodes: views::render_nodes(world.cluster(), world.now_us()),
        plan: views::render_plan(rec.journal()),
        stats: views::render_live_stats(&stats, world.now_us(), world.cluster()),
        model: views::render_model(world.cluster(), world.now_us()),
        metrics: render_prometheus(rec.inner()),
        done,
    });
}

// ---------------------------------------------------------------------------
// Replay mode
// ---------------------------------------------------------------------------

/// Forwards every recorder hook into the shared cell. The engine holds
/// this for the whole run; the session loop reads the cell only while
/// the engine is suspended between steps, so the borrows never overlap.
struct TapRef<'r>(&'r RefCell<ServeRecorder>);

impl Recorder for TapRef<'_> {
    fn level(&self) -> ObsLevel {
        self.0.borrow().level()
    }
    fn set_now(&mut self, now_us: u64) {
        self.0.borrow_mut().set_now(now_us);
    }
    fn set_device(&mut self, device: Option<u32>) {
        self.0.borrow_mut().set_device(device);
    }
    fn set_component(&mut self, component: Option<u32>) {
        self.0.borrow_mut().set_component(component);
    }
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.0.borrow_mut().counter(name, delta);
    }
    fn gauge(&mut self, name: &'static str, value: f64) {
        self.0.borrow_mut().gauge(name, value);
    }
    fn latency(&mut self, name: &'static str, us: u64) {
        self.0.borrow_mut().latency(name, us);
    }
    fn event(&mut self, event: edm_obs::Event) {
        self.0.borrow_mut().event(event);
    }
    fn merge_histogram(&mut self, name: &'static str, hist: &Histogram) {
        self.0.borrow_mut().merge_histogram(name, hist);
    }
    fn events_on(&self) -> bool {
        self.0.borrow().events_on()
    }
}

fn run_replay_session(
    config: &DaemonConfig,
    ctrl: &Ctrl,
    recorder: &RefCell<ServeRecorder>,
) -> Result<(), String> {
    // Resolve the scenario: a resume takes it from the checkpoint's own
    // manifest (mirroring the batch tool), a fresh run from the config.
    let (scenario, snap) = match &config.resume {
        Some(path) => {
            let snap = SnapshotFile::read_from(path)
                .map_err(|e| format!("{}: cannot read snapshot: {e}", path.display()))?;
            let manifest = SnapManifest::from_snapshot(&snap)
                .map_err(|e| format!("{}: bad manifest: {e}", path.display()))?;
            let meta = SnapMeta::decode(&manifest.extra)
                .map_err(|e| format!("{}: bad scenario metadata: {e}", path.display()))?;
            let scenario = Scenario::parse(&meta.scenario)
                .map_err(|e| format!("{}: embedded scenario: {e}", path.display()))?;
            (scenario, Some((snap, meta.trace_fingerprint)))
        }
        None => (config.scenario.clone(), None),
    };
    let trace = scenario.synth_trace();
    if let Some((_, fingerprint)) = &snap {
        if trace.fingerprint() != *fingerprint {
            return Err(format!(
                "re-synthesized trace fingerprint {:#018x} does not match the \
                 checkpoint's {:#018x} — workload generator changed?",
                trace.fingerprint(),
                fingerprint
            ));
        }
    }
    let mut policy = scenario.build_policy()?;
    let policy_name = policy.name().to_string();
    // Always attach a checkpoint config when a dir is given: the engine
    // takes the snapshot's embedded metadata from it, so even purely
    // on-demand checkpoints stay resumable. Without a cadence the
    // interval is effectively infinite (saturating add in the engine).
    let checkpoint = config.checkpoint_dir.as_ref().map(|dir| CheckpointConfig {
        every_us: config.checkpoint_every_us.unwrap_or(u64::MAX),
        dir: dir.clone(),
        meta: SnapMeta {
            scenario: scenario.to_text(),
            trace_fingerprint: trace.fingerprint(),
        }
        .encode(),
    });
    let options = SimOptions {
        schedule: scenario.schedule,
        failures: scenario.failures.clone(),
        affinity: scenario.affinity,
        checkpoint,
        ..SimOptions::default()
    };
    let mut tap = TapRef(recorder);
    let mut live = match &snap {
        Some((snap, _)) => LiveRun::resume(snap, &trace, policy.as_mut(), options, &mut tap)
            .map_err(|e| format!("resume failed: {e}"))?,
        None => {
            let cluster = scenario.build_cluster(&trace)?;
            LiveRun::new(cluster, &trace, policy.as_mut(), options, &mut tap)
        }
    };
    let mut dilated = config.speed.map(|s| DilatedPacer::new(s, live.now_us()));
    let mut flat = FlatOut::new();
    let mut checkpoints = 0u64;
    let mut yields = 0u64;
    let mut was_paused = false;
    publish_replay(ctrl, &live, recorder, &policy_name, checkpoints, false);
    let done = loop {
        if ctrl.shutdown_requested() {
            break false;
        }
        if ctrl.is_paused() {
            if !was_paused {
                was_paused = true;
                publish_replay(ctrl, &live, recorder, &policy_name, checkpoints, false);
            }
            std::thread::sleep(IDLE);
            continue;
        }
        if was_paused {
            // Forgive the paused stretch instead of replaying it as a
            // burst of overdue events.
            was_paused = false;
            if let Some(p) = dilated.as_mut() {
                p.rebase(live.now_us());
            }
        }
        let pace: &mut dyn TimeSource = match dilated.as_mut() {
            Some(p) => p,
            None => &mut flat,
        };
        match live.step(pace) {
            StepPause::Done => break true,
            StepPause::Tick => {
                if ctrl.take_checkpoint_request() {
                    if let Some(dir) = &config.checkpoint_dir {
                        live.checkpoint_now(dir)
                            .map_err(|e| format!("checkpoint failed: {e}"))?;
                        checkpoints += 1;
                    }
                }
                publish_replay(ctrl, &live, recorder, &policy_name, checkpoints, false);
            }
            StepPause::Yielded => {
                yields += 1;
                if yields.is_multiple_of(YIELD_PUBLISH_PERIOD) {
                    publish_replay(ctrl, &live, recorder, &policy_name, checkpoints, false);
                }
            }
        }
    };
    if !done {
        return Ok(()); // shut down mid-replay; nothing to finalize
    }
    let (report, cluster) = live.finish();
    let digest = report_digest(&report);
    let rec = recorder.borrow();
    let (accepted, buffered, closed) = ctrl.ingest_status();
    let health = views::HealthInfo {
        mode: "replay",
        policy: &policy_name,
        backend: rec.backend().name(),
        now_us: report.duration_us,
        paused: false,
        done: true,
        ingest_accepted: accepted,
        ingest_buffered: buffered as u64,
        ingest_closed: closed,
        skipped_ops: 0,
        rejected_lines: 0,
        checkpoints,
        backend_moves: rec.backend().moves_applied(),
        backend_errors: rec.backend_errors(),
        last_error: rec.last_backend_error(),
    };
    ctrl.publish(Published {
        healthz: views::render_healthz(&health),
        nodes: views::render_nodes(&cluster, report.duration_us),
        plan: views::render_plan(rec.journal()),
        stats: views::render_replay_final(&render_report(&report), digest),
        model: views::render_model(&cluster, report.duration_us),
        metrics: render_prometheus(rec.inner()),
        done: true,
    });
    drop(rec);
    // Keep serving the final views until the client says shutdown.
    while !ctrl.shutdown_requested() {
        std::thread::sleep(IDLE);
    }
    Ok(())
}

fn publish_replay(
    ctrl: &Ctrl,
    live: &LiveRun<'_>,
    recorder: &RefCell<ServeRecorder>,
    policy_name: &str,
    checkpoints: u64,
    done: bool,
) {
    let rec = recorder.borrow();
    let (accepted, buffered, closed) = ctrl.ingest_status();
    let health = views::HealthInfo {
        mode: "replay",
        policy: policy_name,
        backend: rec.backend().name(),
        now_us: live.now_us(),
        paused: ctrl.is_paused(),
        done,
        ingest_accepted: accepted,
        ingest_buffered: buffered as u64,
        ingest_closed: closed,
        skipped_ops: 0,
        rejected_lines: 0,
        checkpoints,
        backend_moves: rec.backend().moves_applied(),
        backend_errors: rec.backend_errors(),
        last_error: rec.last_backend_error(),
    };
    ctrl.publish(Published {
        healthz: views::render_healthz(&health),
        nodes: views::render_nodes(live.cluster(), live.now_us()),
        plan: views::render_plan(rec.journal()),
        stats: views::render_replay_progress(live.now_us(), live.completed_ops(), live.total_ops()),
        model: views::render_model(live.cluster(), live.now_us()),
        metrics: render_prometheus(rec.inner()),
        done,
    });
}

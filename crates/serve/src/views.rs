//! Rendering of the daemon's HTTP views.
//!
//! The session thread renders these strings at safe points (ticks,
//! pauses, completion) and publishes them through
//! [`Ctrl::publish`](crate::state::Ctrl::publish); the server thread
//! serves them verbatim. Rendering therefore never races the simulation
//! — a view is always a consistent cut of the world.
//!
//! The `/stats` body is part of the crash-recovery contract: it carries
//! only *convergent* state, values an interrupted-and-resumed session
//! arrives at bit-identically after being re-fed the same op stream. The
//! incarnation-local bookkeeping (skips, buffered lines, checkpoint
//! counts) lives in `/healthz`, which makes no such promise.

use edm_cluster::{Cluster, OsdId};
use edm_obs::json::{field_bool, field_f64, field_raw, field_str, field_u64};
use edm_obs::{Event, JournalEntry};

use crate::ingest::LiveStats;

/// Inputs for `/healthz` (assembled by the daemon each publish).
pub struct HealthInfo<'a> {
    pub mode: &'a str,
    pub policy: &'a str,
    pub backend: &'a str,
    pub now_us: u64,
    pub paused: bool,
    pub done: bool,
    pub ingest_accepted: u64,
    pub ingest_buffered: u64,
    pub ingest_closed: bool,
    pub skipped_ops: u64,
    pub rejected_lines: u64,
    pub checkpoints: u64,
    pub backend_moves: u64,
    pub backend_errors: u64,
    pub last_error: Option<&'a str>,
}

pub fn render_healthz(h: &HealthInfo<'_>) -> String {
    let mut out = String::from("{");
    field_bool(&mut out, "ok", true);
    field_str(&mut out, "mode", h.mode);
    field_str(&mut out, "policy", h.policy);
    field_str(&mut out, "backend", h.backend);
    field_u64(&mut out, "now_us", h.now_us);
    field_bool(&mut out, "paused", h.paused);
    field_bool(&mut out, "done", h.done);
    field_u64(&mut out, "ingest_accepted", h.ingest_accepted);
    field_u64(&mut out, "ingest_buffered", h.ingest_buffered);
    field_bool(&mut out, "ingest_closed", h.ingest_closed);
    field_u64(&mut out, "skipped_ops", h.skipped_ops);
    field_u64(&mut out, "rejected_lines", h.rejected_lines);
    field_u64(&mut out, "checkpoints", h.checkpoints);
    field_u64(&mut out, "backend_moves", h.backend_moves);
    field_u64(&mut out, "backend_errors", h.backend_errors);
    match h.last_error {
        Some(e) => field_str(&mut out, "last_error", e),
        None => field_raw(&mut out, "last_error", "null"),
    }
    out.push('}');
    out
}

/// `/nodes`: one object per OSD, straight from the policy's own view of
/// the cluster (wear-model inputs included) plus the object count.
pub fn render_nodes(cluster: &Cluster, now_us: u64) -> String {
    let view = cluster.view(now_us);
    let mut out = String::from("{");
    field_u64(&mut out, "now_us", now_us);
    field_u64(&mut out, "osds", view.osds.len() as u64);
    let mut nodes = String::from("[");
    for osd in &view.osds {
        if !nodes.ends_with('[') {
            nodes.push(',');
        }
        let mut n = String::from("{");
        field_u64(&mut n, "osd", osd.osd.0 as u64);
        field_u64(&mut n, "group", osd.group.0 as u64);
        field_f64(&mut n, "utilization", osd.utilization);
        field_u64(&mut n, "free_bytes", osd.free_bytes);
        field_u64(&mut n, "capacity_bytes", osd.capacity_bytes);
        field_u64(&mut n, "wc_pages", osd.wc_pages);
        field_u64(&mut n, "erases", osd.measured_erases);
        field_f64(&mut n, "ewma_latency_us", osd.ewma_latency_us);
        field_u64(
            &mut n,
            "objects",
            cluster.osd(osd.osd).object_count() as u64,
        );
        n.push('}');
        nodes.push_str(&n);
    }
    nodes.push(']');
    field_raw(&mut out, "nodes", &nodes);
    out.push('}');
    out
}

/// `/plan`: the most recent trigger evaluation, chosen plan, and plan
/// assessment from the journal, each rendered with the journal's own
/// field serialization (so `/plan` speaks the same schema as the event
/// log). Requires the daemon to run at the `events` obs level; below it
/// the journal is empty and `/plan` says so.
pub fn render_plan(journal: &[JournalEntry]) -> String {
    let mut trigger: Option<&JournalEntry> = None;
    let mut plan: Option<&JournalEntry> = None;
    let mut assessment: Option<&JournalEntry> = None;
    let mut evaluations = 0u64;
    for entry in journal {
        match entry.event {
            Event::TriggerEval { .. } => {
                evaluations += 1;
                trigger = Some(entry);
            }
            Event::PlanChosen { .. } => plan = Some(entry),
            Event::PlanAssessment { .. } => assessment = Some(entry),
            _ => {}
        }
    }
    let render = |entry: Option<&JournalEntry>| -> String {
        match entry {
            None => "null".to_string(),
            Some(e) => {
                let mut o = String::from("{");
                field_str(&mut o, "kind", e.event.kind());
                field_u64(&mut o, "t_us", e.t_us);
                e.event.write_fields(&mut o);
                o.push('}');
                o
            }
        }
    };
    let mut out = String::from("{");
    field_u64(&mut out, "evaluations", evaluations);
    field_raw(&mut out, "trigger", &render(trigger));
    field_raw(&mut out, "plan", &render(plan));
    field_raw(&mut out, "assessment", &render(assessment));
    out.push('}');
    out
}

/// Ingest-mode `/stats`. Every field is convergent (see module docs);
/// the serve gate diffs this body between an uninterrupted session and a
/// killed-and-resumed one.
pub fn render_live_stats(stats: &LiveStats, now_us: u64, cluster: &Cluster) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "mode", "ingest");
    field_u64(&mut out, "now_us", now_us);
    field_u64(&mut out, "applied_ops", stats.applied_ops);
    field_u64(&mut out, "reads", stats.reads);
    field_u64(&mut out, "writes", stats.writes);
    field_u64(&mut out, "ticks", stats.ticks);
    field_u64(
        &mut out,
        "migration_evaluations",
        stats.migration_evaluations,
    );
    field_u64(&mut out, "migrations_triggered", stats.migrations_triggered);
    field_u64(&mut out, "failed_moves", stats.failed_moves);
    field_u64(&mut out, "moved_objects", stats.moved_objects);
    field_u64(&mut out, "moved_bytes", stats.moved_bytes);
    let view = cluster.view(now_us);
    let mut osds = String::from("[");
    for osd in &view.osds {
        if !osds.ends_with('[') {
            osds.push(',');
        }
        let mut n = String::from("{");
        field_u64(&mut n, "osd", osd.osd.0 as u64);
        field_u64(&mut n, "erases", osd.measured_erases);
        field_u64(&mut n, "free_bytes", osd.free_bytes);
        field_u64(
            &mut n,
            "objects",
            cluster.osd(osd.osd).object_count() as u64,
        );
        field_f64(&mut n, "utilization", osd.utilization);
        n.push('}');
        osds.push_str(&n);
    }
    osds.push(']');
    field_raw(&mut out, "osds", &osds);
    out.push('}');
    out
}

/// Replay-mode `/stats` while the trace is still running.
pub fn render_replay_progress(now_us: u64, completed: u64, total: u64) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "mode", "replay");
    field_bool(&mut out, "done", false);
    field_u64(&mut out, "now_us", now_us);
    field_u64(&mut out, "completed_ops", completed);
    field_u64(&mut out, "total_ops", total);
    out.push('}');
    out
}

/// Replay-mode `/stats` once the trace finished: the batch tool's
/// rendered report plus the frozen digest, so a dilated live replay can
/// be checked against `edm-sim` output directly.
pub fn render_replay_final(report_text: &str, digest: u64) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "mode", "replay");
    field_bool(&mut out, "done", true);
    field_str(&mut out, "digest", &format!("{digest:#018x}"));
    field_str(&mut out, "report", report_text);
    out.push('}');
    out
}

/// `/model`: the analytic mean-field assessment of the live cluster
/// (`edm-model`), rendered from the same view the policies plan with.
/// Per OSD it reports the measured erase count next to the closed-form
/// prediction from that device's own write volume and utilization, so
/// live divergence between the daemon's physics and the model is
/// directly visible — the serving-side counterpart of the
/// `edm-exp model-diff` CI gate.
pub fn render_model(cluster: &Cluster, now_us: u64) -> String {
    let view = cluster.view(now_us);
    let model = edm_model::MeanFieldModel::with_gc(
        view.pages_per_block,
        edm_model::MODEL_SIGMA,
        edm_model::GcPolicy::Greedy,
    );
    // Cumulative host page writes, not the view's windowed `wc_pages`
    // (that counter resets at every wear tick and would predict near
    // zero right after one) — the prediction must cover the same span
    // as the measured erase counts it is shown against.
    let loads: Vec<edm_model::OsdLoad> = view
        .osds
        .iter()
        .map(|o| edm_model::OsdLoad {
            erases: 0.0,
            write_rate: cluster.osd(o.osd).ssd().wear().host_page_writes as f64,
            utilization: o.utilization,
        })
        .collect();
    let prediction = edm_model::ClusterPrediction::predict(&model, &loads);

    let mut out = String::from("{");
    field_u64(&mut out, "now_us", now_us);
    field_str(&mut out, "model", "mean-field");
    field_str(&mut out, "gc", model.gc.label());
    field_f64(&mut out, "sigma", model.sigma);
    field_f64(&mut out, "gc_rate", prediction.gc_rate);
    field_f64(&mut out, "rsd_model", prediction.rsd);
    field_f64(
        &mut out,
        "rsd_measured",
        edm_cluster::metrics::rsd(view.osds.iter().map(|o| o.measured_erases as f64)),
    );
    let mut osds = String::from("[");
    for (i, osd) in view.osds.iter().enumerate() {
        if !osds.ends_with('[') {
            osds.push(',');
        }
        let mut n = String::from("{");
        field_u64(&mut n, "osd", osd.osd.0 as u64);
        field_u64(&mut n, "erases_measured", osd.measured_erases);
        field_f64(
            &mut n,
            "erases_model",
            prediction.erases.get(i).copied().unwrap_or(0.0),
        );
        field_f64(
            &mut n,
            "write_amplification",
            prediction
                .write_amplification
                .get(i)
                .copied()
                .unwrap_or(1.0),
        );
        field_f64(
            &mut n,
            "share",
            prediction.shares.get(i).copied().unwrap_or(0.0),
        );
        n.push('}');
        osds.push_str(&n);
    }
    osds.push(']');
    field_raw(&mut out, "osds", &osds);
    out.push('}');
    out
}

/// Aggregate erase count, for the quick health line the daemon logs.
pub fn total_erases(cluster: &Cluster) -> u64 {
    (0..cluster.config.osds)
        .map(|o| cluster.osd(OsdId(o)).ssd().wear().block_erases)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_obs::json;

    #[test]
    fn healthz_is_valid_json() {
        let h = HealthInfo {
            mode: "ingest",
            policy: "EDM-HDF",
            backend: "mem",
            now_us: 12,
            paused: false,
            done: false,
            ingest_accepted: 3,
            ingest_buffered: 1,
            ingest_closed: false,
            skipped_ops: 0,
            rejected_lines: 0,
            checkpoints: 2,
            backend_moves: 1,
            backend_errors: 0,
            last_error: Some("a \"quoted\" problem"),
        };
        let v = json::parse(&render_healthz(&h)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("checkpoints").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("last_error").unwrap().as_str(),
            Some("a \"quoted\" problem")
        );
    }

    #[test]
    fn plan_view_picks_latest_entries() {
        let mut rec = edm_obs::MemoryRecorder::new(edm_obs::ObsLevel::Events);
        use edm_obs::Recorder;
        rec.set_now(5);
        for round in 0..2u64 {
            rec.event(Event::TriggerEval {
                policy: "EDM-HDF",
                metric: "wear",
                rsd: 0.2 + round as f64,
                lambda: 0.1,
                mean: 1.0,
                triggered: true,
                sources: vec![1],
                destinations: vec![2],
            });
            rec.event(Event::PlanChosen {
                policy: "EDM-HDF",
                moves: round + 1,
                moved_bytes: 4096,
                objects: vec![7],
                sources: vec![1],
                destinations: vec![2],
            });
        }
        let v = json::parse(&render_plan(rec.journal())).unwrap();
        assert_eq!(v.get("evaluations").unwrap().as_u64(), Some(2));
        let trigger = v.get("trigger").unwrap();
        assert_eq!(trigger.get("kind").unwrap().as_str(), Some("trigger_eval"));
        assert_eq!(trigger.get("rsd").unwrap().as_f64(), Some(1.2));
        assert_eq!(
            v.get("plan").unwrap().get("moves").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(v.get("assessment"), Some(&json::JsonValue::Null));
    }

    #[test]
    fn empty_journal_renders_null_plan() {
        let v = json::parse(&render_plan(&[])).unwrap();
        assert_eq!(v.get("evaluations").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("trigger"), Some(&json::JsonValue::Null));
    }

    #[test]
    fn model_view_is_valid_json_with_per_osd_predictions() {
        use crate::ingest::LiveWorld;
        use edm_cluster::MigrationSchedule;
        use edm_scenario::Scenario;
        let scenario = Scenario {
            trace: "random".into(),
            scale: 0.002,
            osds: 8,
            groups: 4,
            schedule: MigrationSchedule::EveryTick,
            ..Scenario::default()
        };
        let mut world = LiveWorld::new(scenario).unwrap();
        let mut obs = edm_obs::MemoryRecorder::new(edm_obs::ObsLevel::Off);
        for file in 0..4u64 {
            let outcome = world.apply_line(&format!("w {file} 0 65536"), &mut obs);
            assert!(
                matches!(outcome, crate::ingest::ApplyOutcome::Applied { .. }),
                "write rejected: {outcome:?}"
            );
        }
        let v = json::parse(&render_model(world.cluster(), world.now_us())).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("mean-field"));
        assert_eq!(v.get("gc").unwrap().as_str(), Some("greedy"));
        let osds = v.get("osds").unwrap().as_arr().unwrap();
        assert_eq!(osds.len(), 8);
        for osd in osds {
            let wa = osd.get("write_amplification").unwrap().as_f64().unwrap();
            assert!(wa >= 1.0, "WA below physical floor: {wa}");
            let share = osd.get("share").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&share), "share out of range: {share}");
        }
        let rsd_model = v.get("rsd_model").unwrap().as_f64().unwrap();
        assert!(rsd_model.is_finite() && rsd_model >= 0.0);
    }

    #[test]
    fn replay_views_are_valid_json() {
        let v = json::parse(&render_replay_progress(10, 3, 9)).unwrap();
        assert_eq!(v.get("total_ops").unwrap().as_u64(), Some(9));
        let v = json::parse(&render_replay_final("line one\nline two", 0xabcd)).unwrap();
        assert_eq!(
            v.get("digest").unwrap().as_str(),
            Some("0x000000000000abcd")
        );
        assert!(v.get("report").unwrap().as_str().unwrap().contains('\n'));
    }
}

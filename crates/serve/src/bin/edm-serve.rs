//! `edm-serve` — live endurance-aware migration daemon.
//!
//! ```text
//! edm-serve <scenario-file> [--mode replay|ingest] [--speed <x>]
//!           [--port <n>] [--port-file <path>]
//!           [--checkpoint-dir <dir>] [--checkpoint-every <virtual-secs>]
//!           [--journal <out.jsonl>] [--obs-level off|metrics|events]
//!           [--backend mem|dir:<root>]
//! edm-serve --resume <snapshot.snap> [same options]
//! edm-serve --dump-ops <scenario-file>
//! ```
//!
//! Replay mode drives the scenario's synthesized trace through the full
//! engine, dilated against the wall clock (`--speed` virtual µs per wall
//! µs; omit it to replay flat out). Ingest mode starts an idle cluster
//! and applies operations POSTed to `/ingest` (`r|w <file> <offset>
//! <len>` lines, `end` to close the stream). Either way the daemon
//! serves `GET /healthz /nodes /plan /stats /metrics` and accepts
//! `POST /pause /resume /checkpoint /shutdown` on a loopback port.
//!
//! `--dump-ops` prints a scenario's trace as ingest protocol lines, so a
//! shell can pipe a corpus scenario straight back into `POST /ingest`.
//!
//! Crash recovery: with `--checkpoint-dir`, `POST /checkpoint` (or the
//! `--checkpoint-every` cadence) cuts `edm-snap` checkpoints at safe
//! points. `--resume <snap>` rebuilds the world from the embedded
//! scenario; in ingest mode, re-feed the *entire* op stream — the
//! resumed daemon skips what the checkpoint already covers and converges
//! on the uninterrupted run's `/stats` bit for bit.

use std::net::TcpListener;
use std::path::PathBuf;

use edm_obs::ObsLevel;
use edm_scenario::Scenario;
use edm_serve::{dump_ops, run_daemon_on, BackendKind, DaemonConfig, Mode};

const USAGE: &str = "usage: edm-serve <scenario-file> [--mode replay|ingest] \
     [--speed <x>] [--port <n>] [--port-file <path>] \
     [--checkpoint-dir <dir>] [--checkpoint-every <virtual-secs>] \
     [--journal <out.jsonl>] [--obs-level off|metrics|events] \
     [--backend mem|dir:<root>] \
     | edm-serve --resume <snapshot.snap> [options] \
     | edm-serve --dump-ops <scenario-file>";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn read_scenario(path: &str) -> Scenario {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: cannot read scenario: {e}")));
    Scenario::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    // edm-audit: allow(det.env_read, "CLI entry point: arguments are the daemon's configuration, not simulation input")
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail(USAGE);
    }
    let mut scenario_path: Option<String> = None;
    let mut dump: Option<String> = None;
    let mut mode = Mode::Replay;
    let mut speed: Option<f64> = None;
    let mut port: u16 = 0;
    let mut port_file: Option<PathBuf> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every_us: Option<u64> = None;
    let mut resume: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut obs_level = ObsLevel::Events;
    let mut backend = BackendKind::Mem;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--dump-ops" => dump = Some(value("--dump-ops")),
            "--mode" => {
                mode = match value("--mode").as_str() {
                    "replay" => Mode::Replay,
                    "ingest" => Mode::Ingest,
                    other => fail(&format!("bad --mode {other:?} (replay|ingest)")),
                }
            }
            "--speed" => {
                let v = value("--speed");
                let x: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --speed value {v:?}")));
                if x.is_nan() || x <= 0.0 {
                    fail("--speed must be positive");
                }
                speed = Some(x);
            }
            "--port" => {
                let v = value("--port");
                port = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --port value {v:?}")));
            }
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            "--checkpoint-dir" => checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir"))),
            "--checkpoint-every" => {
                let v = value("--checkpoint-every");
                let secs: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --checkpoint-every value {v:?}")));
                checkpoint_every_us = Some((secs * 1_000_000.0) as u64);
            }
            "--resume" => resume = Some(PathBuf::from(value("--resume"))),
            "--journal" => journal = Some(PathBuf::from(value("--journal"))),
            "--obs-level" => {
                let v = value("--obs-level");
                obs_level = ObsLevel::parse(&v).unwrap_or_else(|| {
                    fail(&format!("bad --obs-level {v:?} (off|metrics|events)"))
                });
            }
            "--backend" => {
                let v = value("--backend");
                backend = if v == "mem" {
                    BackendKind::Mem
                } else if let Some(root) = v.strip_prefix("dir:") {
                    BackendKind::Dir(PathBuf::from(root))
                } else {
                    fail(&format!("bad --backend {v:?} (mem|dir:<root>)"))
                };
            }
            other if other.starts_with("--") => fail(&format!("unknown option {other}\n{USAGE}")),
            other => {
                if scenario_path.is_some() {
                    fail(USAGE);
                }
                scenario_path = Some(other.to_string());
            }
        }
    }

    if let Some(path) = dump {
        print!("{}", dump_ops(&read_scenario(&path)));
        return;
    }

    let scenario = match (&scenario_path, &resume) {
        (Some(path), _) => read_scenario(path),
        // A pure resume takes its scenario from the checkpoint; this one
        // is a placeholder the daemon never builds from.
        (None, Some(_)) => Scenario::default(),
        (None, None) => fail(USAGE),
    };
    if resume.is_none() && scenario_path.is_none() {
        fail(USAGE);
    }

    let listener = TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| fail(&format!("cannot bind 127.0.0.1:{port}: {e}")));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("cannot read bound address: {e}")));
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{}\n", addr.port()))
            .unwrap_or_else(|e| fail(&format!("{}: cannot write port file: {e}", path.display())));
    }
    println!("edm-serve listening on {addr}");

    let config = DaemonConfig {
        scenario,
        mode,
        speed,
        checkpoint_dir,
        checkpoint_every_us,
        resume,
        journal,
        obs_level,
        backend,
    };
    if let Err(e) = run_daemon_on(listener, config) {
        fail(&e);
    }
}

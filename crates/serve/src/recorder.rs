//! The daemon's recorder: a [`MemoryRecorder`] with a [`Backend`] tap.
//!
//! Every observability hook forwards to the inner recorder unchanged, so
//! journals and metrics are byte-identical to a batch run over the same
//! scenario. On the way through, completed migrations
//! ([`Event::MigrationFinish`]) and rebuilds ([`Event::RebuildFinish`])
//! are applied to the backend — the engine's journal *is* the daemon's
//! replication stream, which is what keeps replay mode and ingest mode
//! on one code path: both drive the cluster, the cluster emits the
//! events, the recorder applies them.
//!
//! Backend failures must not perturb the simulation (observability is
//! read-only by design rule), so they are counted and surfaced through
//! `/healthz`, never propagated.

use edm_cluster::{ObjectId, OsdId};
use edm_obs::{Event, Histogram, JournalEntry, MemoryRecorder, ObsLevel, Recorder};

use crate::backend::Backend;

/// Recorder wrapper that tees completion events into a [`Backend`].
pub struct ServeRecorder {
    inner: MemoryRecorder,
    backend: Box<dyn Backend>,
    backend_errors: u64,
    last_backend_error: Option<String>,
}

impl ServeRecorder {
    pub fn new(level: ObsLevel, backend: Box<dyn Backend>) -> ServeRecorder {
        ServeRecorder {
            inner: MemoryRecorder::new(level),
            backend,
            backend_errors: 0,
            last_backend_error: None,
        }
    }

    pub fn inner(&self) -> &MemoryRecorder {
        &self.inner
    }

    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// Backend apply failures so far (surfaced via `/healthz`).
    pub fn backend_errors(&self) -> u64 {
        self.backend_errors
    }

    pub fn last_backend_error(&self) -> Option<&str> {
        self.last_backend_error.as_deref()
    }

    /// Convenience passthrough for `/stats` and `/metrics` rendering.
    pub fn journal(&self) -> &[JournalEntry] {
        self.inner.journal()
    }

    fn apply(&mut self, event: &Event) {
        let applied = match *event {
            Event::MigrationFinish {
                object,
                source,
                dest,
                bytes,
            } => self
                .backend
                .apply_move(ObjectId(object), OsdId(source), OsdId(dest), bytes),
            Event::RebuildFinish {
                object,
                dest,
                bytes,
            } => self
                .backend
                .apply_rebuild(ObjectId(object), OsdId(dest), bytes),
            _ => return,
        };
        if let Err(e) = applied {
            self.backend_errors += 1;
            self.last_backend_error = Some(e);
        }
    }
}

impl Recorder for ServeRecorder {
    fn level(&self) -> ObsLevel {
        self.inner.level()
    }

    fn set_now(&mut self, now_us: u64) {
        self.inner.set_now(now_us);
    }

    fn set_device(&mut self, device: Option<u32>) {
        self.inner.set_device(device);
    }

    fn set_component(&mut self, component: Option<u32>) {
        self.inner.set_component(component);
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.inner.gauge(name, value);
    }

    fn latency(&mut self, name: &'static str, us: u64) {
        self.inner.latency(name, us);
    }

    fn event(&mut self, event: Event) {
        self.apply(&event);
        self.inner.event(event);
    }

    fn merge_histogram(&mut self, name: &'static str, hist: &Histogram) {
        self.inner.merge_histogram(name, hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn taps_completions_into_backend() {
        let mut r = ServeRecorder::new(ObsLevel::Events, Box::new(MemBackend::new()));
        r.set_now(100);
        r.event(Event::MigrationStart {
            object: 5,
            source: 0,
            dest: 2,
            bytes: 4096,
        });
        r.event(Event::MigrationFinish {
            object: 5,
            source: 0,
            dest: 2,
            bytes: 4096,
        });
        r.event(Event::RebuildFinish {
            object: 6,
            dest: 1,
            bytes: 512,
        });
        assert_eq!(r.backend().moves_applied(), 2);
        assert_eq!(r.backend_errors(), 0);
        // The journal still carries all three events, untouched.
        assert_eq!(r.inner().journal().len(), 3);
    }

    #[test]
    fn taps_even_below_events_level() {
        // At `metrics` level the journal drops events, but completions
        // still reach the backend — the tap is on the hook, not the log.
        let mut r = ServeRecorder::new(ObsLevel::Metrics, Box::new(MemBackend::new()));
        r.event(Event::MigrationFinish {
            object: 1,
            source: 0,
            dest: 1,
            bytes: 1,
        });
        assert_eq!(r.backend().moves_applied(), 1);
        assert!(r.inner().journal().is_empty());
    }

    struct FailingBackend;
    impl Backend for FailingBackend {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn apply_move(
            &mut self,
            _object: ObjectId,
            _source: OsdId,
            _dest: OsdId,
            _bytes: u64,
        ) -> Result<(), String> {
            Err("disk on fire".to_string())
        }
        fn apply_rebuild(
            &mut self,
            _object: ObjectId,
            _dest: OsdId,
            _bytes: u64,
        ) -> Result<(), String> {
            Err("disk on fire".to_string())
        }
        fn moves_applied(&self) -> u64 {
            0
        }
    }

    #[test]
    fn backend_failure_is_counted_not_propagated() {
        let mut r = ServeRecorder::new(ObsLevel::Events, Box::new(FailingBackend));
        r.event(Event::MigrationFinish {
            object: 1,
            source: 0,
            dest: 1,
            bytes: 1,
        });
        assert_eq!(r.backend_errors(), 1);
        assert_eq!(r.last_backend_error(), Some("disk on fire"));
        // Journal is unaffected: observability stays read-only.
        assert_eq!(r.inner().journal().len(), 1);
    }
}

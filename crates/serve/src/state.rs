//! Shared control-plane state between the session thread and the HTTP
//! server thread.
//!
//! The deterministic machinery (cluster, policy, recorder) never crosses
//! a thread boundary: it lives on the session thread's stack. What is
//! shared is this [`Ctrl`] block — admin flags as atomics, plus two
//! small mutex-guarded structures: the ingest queue (server pushes
//! lines, session drains them) and the published views (session renders
//! strings at safe points, server serves them verbatim). The server
//! thread therefore holds a lock only long enough to clone or swap a
//! string, and the simulation's event order can't depend on request
//! timing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

// Shared state is confined to this control block; the session thread owns
// all simulation state and only rendered strings / queued text cross over.
// edm-audit: allow(det.thread_order, "control-plane handoff only; no simulation state is shared")
type Lock<T> = std::sync::Mutex<T>;

/// Cap on buffered, not-yet-applied ingest lines. `POST /ingest` returns
/// 409 above this so a fast client gets backpressure instead of
/// unbounded daemon memory.
pub const MAX_QUEUED_LINES: usize = 1 << 18;

/// Operation lines accepted over HTTP, awaiting the session thread.
#[derive(Debug, Default)]
struct IngestQueue {
    lines: VecDeque<String>,
    /// Total lines ever accepted (for `/healthz`).
    accepted: u64,
    /// An `end` marker has been received: the stream is complete.
    closed: bool,
}

/// Rendered views the session thread publishes at safe points.
#[derive(Debug, Default, Clone)]
pub struct Published {
    pub healthz: String,
    pub nodes: String,
    pub plan: String,
    pub stats: String,
    /// Analytic mean-field assessment of the live cluster (`/model`).
    pub model: String,
    pub metrics: String,
    /// The session finished (trace replay complete, or ingest stream
    /// ended and drained).
    pub done: bool,
}

/// The shared control block (one per daemon, behind an `Arc`).
#[derive(Default)]
pub struct Ctrl {
    paused: AtomicBool,
    shutdown: AtomicBool,
    checkpoint_requested: AtomicBool,
    ingest: Lock<IngestQueue>,
    published: Lock<Published>,
}

impl Ctrl {
    pub fn new() -> Ctrl {
        Ctrl::default()
    }

    // ---- admin flags ---------------------------------------------------

    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
    }

    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub fn request_checkpoint(&self) {
        self.checkpoint_requested.store(true, Ordering::SeqCst);
    }

    /// Consumes a pending checkpoint request (session thread, at a safe
    /// point).
    pub fn take_checkpoint_request(&self) -> bool {
        self.checkpoint_requested.swap(false, Ordering::SeqCst)
    }

    // ---- ingest queue --------------------------------------------------

    /// Enqueues the lines of one `POST /ingest` body. Returns the total
    /// accepted-line count, or an error string (HTTP 409) if the stream
    /// is already closed or the queue is full.
    pub fn push_ingest(&self, body: &str) -> Result<u64, String> {
        let mut q = self.lock_ingest();
        if q.closed {
            return Err("ingest stream already ended".to_string());
        }
        let lines: Vec<&str> = body
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if q.lines.len() + lines.len() > MAX_QUEUED_LINES {
            return Err(format!(
                "ingest queue full ({} lines buffered)",
                q.lines.len()
            ));
        }
        for line in lines {
            if line == "end" {
                q.closed = true;
                break;
            }
            q.lines.push_back(line.to_string());
            q.accepted += 1;
        }
        Ok(q.accepted)
    }

    /// Drains up to `max` queued lines for the session thread.
    pub fn drain_ingest(&self, max: usize) -> Vec<String> {
        let mut q = self.lock_ingest();
        let n = q.lines.len().min(max);
        q.lines.drain(..n).collect()
    }

    /// `(accepted, buffered, closed)` — for `/healthz`.
    pub fn ingest_status(&self) -> (u64, usize, bool) {
        let q = self.lock_ingest();
        (q.accepted, q.lines.len(), q.closed)
    }

    /// True once the stream is closed and every queued line was drained.
    pub fn ingest_complete(&self) -> bool {
        let q = self.lock_ingest();
        q.closed && q.lines.is_empty()
    }

    // ---- published views -----------------------------------------------

    /// Replaces the published views (session thread, at safe points).
    pub fn publish(&self, views: Published) {
        *self.lock_published() = views;
    }

    pub fn published(&self) -> Published {
        self.lock_published().clone()
    }

    pub fn is_done(&self) -> bool {
        self.lock_published().done
    }

    fn lock_ingest(&self) -> std::sync::MutexGuard<'_, IngestQueue> {
        // A poisoned lock means a panicking thread mid-publish; the data
        // is plain strings/queues, safe to keep serving.
        match self.ingest.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn lock_published(&self) -> std::sync::MutexGuard<'_, Published> {
        match self.published.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_flags_toggle() {
        let c = Ctrl::new();
        assert!(!c.is_paused());
        c.pause();
        assert!(c.is_paused());
        c.resume();
        assert!(!c.is_paused());
        c.request_checkpoint();
        assert!(c.take_checkpoint_request());
        assert!(!c.take_checkpoint_request());
        c.request_shutdown();
        assert!(c.shutdown_requested());
    }

    #[test]
    fn ingest_queue_accepts_drains_and_closes() {
        let c = Ctrl::new();
        let n = c
            .push_ingest("w 0 0 4096\nr 1 512 100\n\n# comment\n")
            .unwrap();
        assert_eq!(n, 2);
        assert!(!c.ingest_complete());
        let drained = c.drain_ingest(10);
        assert_eq!(drained, vec!["w 0 0 4096", "r 1 512 100"]);
        c.push_ingest("w 2 0 1\nend\nw 3 0 1\n").unwrap();
        let (accepted, buffered, closed) = c.ingest_status();
        assert_eq!((accepted, buffered, closed), (3, 1, true));
        assert!(c.push_ingest("w 9 0 1").is_err());
        c.drain_ingest(10);
        assert!(c.ingest_complete());
    }

    #[test]
    fn published_views_swap_whole() {
        let c = Ctrl::new();
        assert!(!c.is_done());
        c.publish(Published {
            healthz: "{\"ok\":true}".to_string(),
            done: true,
            ..Published::default()
        });
        assert!(c.is_done());
        assert_eq!(c.published().healthz, "{\"ok\":true}");
    }
}

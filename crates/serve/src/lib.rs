#![forbid(unsafe_code)]
//! # edm-serve — a live endurance-aware migration daemon
//!
//! The batch harness answers "what would EDM have done for this trace";
//! this crate keeps the same deterministic machinery *running*: a
//! long-lived process that ingests an operation stream, runs the wear
//! monitor, trigger evaluation, and Algorithm 1 online, and applies the
//! resulting migrations through a pluggable [`backend::Backend`].
//!
//! Two session modes share one control plane:
//!
//! * **replay** — a scenario's synthesized trace is replayed through the
//!   cluster engine ([`edm_cluster::LiveRun`]) under a wall-clock
//!   [`pacer::DilatedPacer`]: virtual microseconds are scaled onto real
//!   ones, and the engine yields between events so the daemon can
//!   service control traffic without perturbing the replay digest.
//! * **ingest** — operations arrive over HTTP (`POST /ingest`, a
//!   line-per-op text protocol) and drive [`ingest::LiveWorld`], a
//!   serialized live mirror of the engine's op-service path over the
//!   same cluster, policies, and FTL.
//!
//! The HTTP surface ([`http`], [`server`]) is a dependency-free
//! HTTP/1.1 subset: `GET /healthz`, `/nodes`, `/plan`, `/stats`,
//! Prometheus-style `/metrics`, plus `POST /ingest` and the admin verbs
//! `/pause`, `/resume`, `/checkpoint`, `/shutdown`.
//!
//! Crash recovery reuses `edm-snap`: both modes cut checkpoints at wear
//! ticks (the only instant with no mid-decision state), and `--resume`
//! restores cluster + policy state bit-identically — an interrupted
//! ingest session re-fed the same op stream converges to the same
//! `/stats` as an uninterrupted one. Design notes: DESIGN.md §13.

pub mod backend;
pub mod daemon;
pub mod http;
pub mod ingest;
pub mod pacer;
pub mod recorder;
pub mod server;
pub mod state;
pub mod views;

pub use backend::{Backend, DirBackend, MemBackend};
pub use daemon::{run_daemon_on, BackendKind, DaemonConfig, Mode};
pub use ingest::{dump_ops, ApplyOutcome, LiveStats, LiveWorld};
pub use pacer::{DilatedPacer, FlatOut};
pub use recorder::ServeRecorder;
pub use state::Ctrl;

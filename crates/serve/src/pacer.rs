//! Wall-clock time sources for the daemon.
//!
//! [`DilatedPacer`] maps virtual microseconds onto wall time at a
//! configurable speed and holds events back until they are due;
//! [`FlatOut`] dispatches as fast as possible but still yields
//! periodically. Both uphold the [`TimeSource`] contract: they only
//! delay or hand back control, never reorder — so the replay digest is
//! independent of the wall clock, which is also why the wall-clock reads
//! here are the only ones in the crate and carry the audit pragmas
//! arguing exactly that.

use std::time::{Duration, Instant};

use edm_cluster::{TimeSource, TimeStep};

/// Longest single sleep before yielding back to the caller, so control
/// traffic (pause, checkpoint, shutdown) is serviced at least this
/// often even when the next event is far away.
const SLICE: Duration = Duration::from_millis(2);

/// The crate's one wall-clock read, shared by both pacers.
#[allow(clippy::disallowed_methods)]
fn wall_now() -> Instant {
    // edm-audit: allow(det.wallclock, "pacing only: the wall clock dilates event timing, never event order or content")
    Instant::now()
}

/// Replays virtual time against the wall clock, dilated by `speed`
/// virtual microseconds per wall microsecond (so `speed = 1.0` is real
/// time and `speed = 1000.0` replays a virtual second every
/// millisecond).
///
/// The pacer anchors `(wall instant, virtual µs)` once and extrapolates;
/// [`rebase`](DilatedPacer::rebase) re-anchors after a pause so time
/// spent paused is not "owed" as a burst of overdue events.
pub struct DilatedPacer {
    speed: f64,
    anchor_wall: Instant,
    anchor_virtual: u64,
}

impl DilatedPacer {
    /// `speed` is clamped below by a sane minimum so a zero or negative
    /// value cannot stall the daemon forever.
    pub fn new(speed: f64, start_virtual_us: u64) -> DilatedPacer {
        DilatedPacer {
            speed: if speed > 1e-6 { speed } else { 1e-6 },
            anchor_wall: wall_now(),
            anchor_virtual: start_virtual_us,
        }
    }

    /// Re-anchors "now" (wall) to `virtual_now` (virtual). Call after a
    /// pause ends or a resume restores a mid-trace clock.
    pub fn rebase(&mut self, virtual_now: u64) {
        self.anchor_wall = wall_now();
        self.anchor_virtual = virtual_now;
    }

    /// Wall-clock duration until the event at `virtual_us` is due
    /// (zero when overdue).
    fn due_in(&self, virtual_us: u64) -> Duration {
        let ahead_virtual = virtual_us.saturating_sub(self.anchor_virtual);
        let due_wall = Duration::from_micros((ahead_virtual as f64 / self.speed) as u64);
        due_wall.saturating_sub(self.anchor_wall.elapsed())
    }
}

impl TimeSource for DilatedPacer {
    fn wait_until(&mut self, virtual_us: u64) -> TimeStep {
        let remaining = self.due_in(virtual_us);
        if remaining.is_zero() {
            return TimeStep::Proceed;
        }
        if remaining <= SLICE {
            std::thread::sleep(remaining);
            return TimeStep::Proceed;
        }
        std::thread::sleep(SLICE);
        TimeStep::Yield
    }
}

/// Dispatches every event immediately, but yields every `PERIOD` polls
/// so the session loop can still service control traffic during a
/// maximum-speed replay.
#[derive(Debug, Default)]
pub struct FlatOut {
    polls: u64,
}

impl FlatOut {
    const PERIOD: u64 = 4096;

    pub fn new() -> FlatOut {
        FlatOut::default()
    }
}

impl TimeSource for FlatOut {
    fn wait_until(&mut self, _virtual_us: u64) -> TimeStep {
        self.polls += 1;
        if self.polls.is_multiple_of(FlatOut::PERIOD) {
            TimeStep::Yield
        } else {
            TimeStep::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overdue_events_proceed_immediately() {
        let mut p = DilatedPacer::new(1000.0, 0);
        // Virtual time far behind the anchor: always due.
        assert_eq!(p.wait_until(0), TimeStep::Proceed);
        // 1000 virtual µs at 1000x is 1 wall µs — effectively due now.
        assert_eq!(p.wait_until(1000), TimeStep::Proceed);
    }

    #[test]
    fn distant_events_yield() {
        // 10 virtual seconds at 1x: far beyond one slice.
        let mut p = DilatedPacer::new(1.0, 0);
        let t0 = wall_now();
        assert_eq!(p.wait_until(10_000_000), TimeStep::Yield);
        // The pacer slept one slice, not the full deadline.
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn rebase_forgives_paused_time() {
        let mut p = DilatedPacer::new(1.0, 0);
        std::thread::sleep(Duration::from_millis(5));
        p.rebase(1_000_000);
        // An event 10 virtual ms past the new anchor is not yet due,
        // despite the wall time that elapsed before the rebase.
        assert!(!p.due_in(1_010_000).is_zero());
    }

    #[test]
    fn zero_speed_is_clamped() {
        let p = DilatedPacer::new(0.0, 0);
        // At the clamped minimum speed this would be absurdly far out,
        // but it must be finite (no division blow-up).
        assert!(p.due_in(10).as_secs() > 5);
    }

    #[test]
    fn flat_out_yields_periodically() {
        let mut p = FlatOut::new();
        let mut yields = 0;
        for _ in 0..(FlatOut::PERIOD * 3) {
            if p.wait_until(0) == TimeStep::Yield {
                yields += 1;
            }
        }
        assert_eq!(yields, 3);
    }
}

//! A dependency-free HTTP/1.1 subset: exactly what the daemon's control
//! plane needs and nothing more.
//!
//! One request per connection (`Connection: close` semantics, which is
//! also what the shell-side `/dev/tcp` helper in `scripts/check.sh`
//! speaks). The parser is deliberately strict — the daemon shares a
//! process with a deterministic simulation, so malformed input is
//! rejected loudly rather than guessed at — and bounded: header block
//! and body sizes are capped so a stray client cannot balloon memory.

use std::io::{self, BufRead, Write};

/// Maximum accepted request body, bytes. Ingest batches are line
/// protocol text; a megabyte is thousands of ops per request.
pub const MAX_BODY: usize = 1 << 20;

/// Maximum accepted header block (request line + headers), bytes.
pub const MAX_HEADER: usize = 16 * 1024;

/// A parsed request: the subset of HTTP the daemon routes on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected at parse time).
    pub method: String,
    /// Request target as sent, e.g. `/healthz`.
    pub path: String,
    /// Decoded body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; maps onto an HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line/headers, or a method we do not serve.
    BadRequest(&'static str),
    /// `Content-Length` exceeds [`MAX_BODY`] (HTTP 413).
    TooLarge,
    /// The peer closed the connection mid-request (HTTP 400).
    Truncated,
    /// Transport error while reading.
    Io(String),
}

impl ParseError {
    /// The HTTP status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::TooLarge => 413,
            _ => 400,
        }
    }

    /// One-line human explanation for the error body.
    pub fn detail(&self) -> String {
        match self {
            ParseError::BadRequest(what) => format!("bad request: {what}"),
            ParseError::TooLarge => format!("body exceeds {MAX_BODY} bytes"),
            ParseError::Truncated => "connection closed mid-request".to_string(),
            ParseError::Io(e) => format!("transport error: {e}"),
        }
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, bounded by `budget`.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = 0u8;
        match r.read(std::slice::from_mut(&mut byte)) {
            Ok(0) => return Err(ParseError::Truncated),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
        if *budget == 0 {
            return Err(ParseError::BadRequest("header block too large"));
        }
        *budget -= 1;
        if byte == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| ParseError::BadRequest("non-UTF-8 header"));
        }
        line.push(byte);
    }
}

/// Parses one request from the stream.
pub fn parse_request(r: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut budget = MAX_HEADER;
    let request_line = read_line(r, &mut budget)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method != "GET" && method != "POST" {
        return Err(ParseError::BadRequest("method not GET or POST"));
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(ParseError::BadRequest("request target must start with /"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest("not an HTTP/1.x request"));
    }
    let mut content_length: usize = 0;
    loop {
        let line = read_line(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest("header line without a colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::BadRequest("unparseable Content-Length"))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    while read < content_length {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(ParseError::Truncated),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
    Ok(Request { method, path, body })
}

/// Canonical reason phrases for the statuses the daemon emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response (with `Content-Length`, then closes by
/// convention — the daemon serves one request per connection).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        parse_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /ingest HTTP/1.1\r\nContent-Length: 8\r\n\r\nw 3 0 42").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"w 3 0 42");
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let r = parse(b"GET /nodes HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(r.path, "/nodes");
    }

    #[test]
    fn rejects_bad_method() {
        let e = parse(b"DELETE /nodes HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(e, ParseError::BadRequest("method not GET or POST"));
        assert_eq!(e.status(), 400);
        let e = parse(b"complete garbage\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn rejects_oversized_body() {
        let req = format!(
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let e = parse(req.as_bytes()).unwrap_err();
        assert_eq!(e, ParseError::TooLarge);
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn rejects_truncated_request() {
        // Connection drops mid-headers.
        assert_eq!(
            parse(b"GET /healthz HTT").unwrap_err(),
            ParseError::Truncated
        );
        // Connection drops mid-body.
        let e = parse(b"POST /ingest HTTP/1.1\r\nContent-Length: 10\r\n\r\nw 1").unwrap_err();
        assert_eq!(e, ParseError::Truncated);
    }

    #[test]
    fn rejects_header_garbage() {
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nno colon here\r\n\r\n").unwrap_err(),
            ParseError::BadRequest(_)
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: soon\r\n\r\n").unwrap_err(),
            ParseError::BadRequest(_)
        ));
        assert!(matches!(
            parse(b"GET x HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::BadRequest(_)
        ));
        assert!(matches!(
            parse(b"GET /x SPDY/9\r\n\r\n").unwrap_err(),
            ParseError::BadRequest(_)
        ));
    }

    #[test]
    fn bounds_header_block() {
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        req.extend(std::iter::repeat_n(b'a', MAX_HEADER));
        assert!(matches!(
            parse(&req).unwrap_err(),
            ParseError::BadRequest("header block too large")
        ));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

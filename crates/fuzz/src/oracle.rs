//! The differential oracle panel.
//!
//! One scenario is executed several ways that the repo's contracts say
//! must agree exactly:
//!
//! | oracle               | what must hold                                          |
//! |----------------------|---------------------------------------------------------|
//! | `harness`            | a generated (valid) scenario runs without error          |
//! | `ftl_equiv`          | span and per-page FTL calls produce identical wear      |
//! | `obs_transparent`    | report digest identical with obs off vs `events`        |
//! | `policy_invariants`  | trigger/plan/journal/cluster invariants (§III.B–D)      |
//! | `resume_digest`      | checkpoint at a wear tick + resume reproduces the digest |
//! | `snapshot_roundtrip` | snapshot decode→encode is byte-identical                |
//! | `shard_digest`       | group-sharded replay digest identical to sequential     |
//! | `journal_identity`   | group-sharded journal byte-identical to sequential      |
//! | `spec_conformance`   | every journaled event is a legal edm-spec transition    |
//! | `model_assessor`     | mean-field fast path never publishes a worsening plan   |
//!
//! All checks are pure functions of the scenario (the only randomness —
//! which checkpoint to resume from — is seeded from the scenario text),
//! so a failure found at seed S replays from the `.scn` alone.

use std::path::{Path, PathBuf};

use edm_cluster::ClientAffinity;
use edm_harness::{report_digest, resume_snapshot, Scenario};
use edm_obs::{Event, MemoryRecorder, NoopRecorder, ObsLevel};
use edm_snap::SnapshotFile;
use edm_ssd::{Geometry, LatencyModel, Ssd};
use edm_workload::FileOp;

use crate::rng::Rng;

/// A failed oracle: which one, and a one-line diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    pub oracle: &'static str,
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Side statistics of a green battery (for throughput/coverage output).
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    pub checkpoints: usize,
    pub journal_events: usize,
    pub migrations_triggered: u64,
    pub failed_osds: usize,
}

fn fail(oracle: &'static str, detail: impl Into<String>) -> OracleFailure {
    OracleFailure {
        oracle,
        detail: detail.into(),
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the full oracle battery for one scenario. `work_dir` hosts the
/// checkpoint files of the resume oracle (the caller owns cleanup of the
/// directory itself; the battery clears its own subdirectory first).
///
/// An engine panic inside any run is caught and reported as an
/// `engine_panic` oracle failure, so a crashing scenario shrinks like any
/// other instead of killing the fuzzing session.
pub fn check_scenario(s: &Scenario, work_dir: &Path) -> Result<OracleStats, OracleFailure> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check_scenario_impl(s, work_dir)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|m| (*m).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(fail("engine_panic", format!("simulation panicked: {msg}")))
    })
}

fn check_scenario_impl(s: &Scenario, work_dir: &Path) -> Result<OracleStats, OracleFailure> {
    let mut stats = OracleStats::default();

    // Reference run: observability off.
    let base = s
        .run()
        .map_err(|e| fail("harness", format!("baseline run failed: {e}")))?;
    let base_digest = report_digest(&base);

    // Differential run: full event journal on, end-state cluster kept.
    let mut rec = MemoryRecorder::new(ObsLevel::Events);
    let (obs_report, cluster) = s
        .run_with_obs_keep(&mut rec)
        .map_err(|e| fail("harness", format!("events run failed: {e}")))?;
    let obs_digest = report_digest(&obs_report);
    if obs_digest != base_digest {
        return Err(fail(
            "obs_transparent",
            format!(
                "digest {base_digest:#018x} with obs off vs {obs_digest:#018x} with events — \
                 recording perturbed the simulation"
            ),
        ));
    }
    stats.journal_events = rec.journal().len();
    stats.migrations_triggered = obs_report.migrations_triggered;
    stats.failed_osds = obs_report.failed_osds.len();

    check_policy_invariants(s, &rec, &obs_report, &cluster)?;

    check_spec_conformance(&rec)?;

    check_resume_and_roundtrip(s, work_dir, base_digest, &mut stats)?;

    check_ftl_equivalence(s)?;

    check_shard_digest(s)?;

    check_model_assessor(s)?;

    Ok(stats)
}

/// Oracle `model_assessor`: re-run the scenario with the analytic
/// mean-field plan assessor (`edm-model`) in place of the projection
/// loop. The fast path's contract is that it never publishes a plan the
/// projection reference rejects — its trim ends with a reference
/// `assess_plan` guardrail — so under the model assessor every journaled
/// `PlanAssessment` must still predict a non-worsening RSD and the
/// end-state cluster must satisfy its structural invariants. Skipped for
/// CMT, which has no plan assessor, and when the drawn scenario already
/// ran the model path through the main battery.
fn check_model_assessor(s: &Scenario) -> Result<(), OracleFailure> {
    if s.policy == "CMT" || s.assessor == edm_core::Assessor::Model {
        return Ok(());
    }
    let mut m = s.clone();
    m.assessor = edm_core::Assessor::Model;
    let mut rec = MemoryRecorder::new(ObsLevel::Events);
    let (report, cluster) = m
        .run_with_obs_keep(&mut rec)
        .map_err(|e| fail("model_assessor", format!("model-assessor run failed: {e}")))?;
    for entry in rec.journal() {
        if let Event::PlanAssessment {
            rsd_before,
            rsd_after,
            ..
        } = &entry.event
        {
            if rsd_after.is_nan() || *rsd_after > *rsd_before + 1e-9 {
                return Err(fail(
                    "model_assessor",
                    format!(
                        "t={}us model-assessed plan worsens RSD: {rsd_before:.6} -> \
                         {rsd_after:.6} — the fast path published a plan the projection \
                         reference must have rejected",
                        entry.t_us
                    ),
                ));
            }
        }
    }
    cluster
        .check_invariants(&report.failed_osds, true)
        .map_err(|e| fail("model_assessor", format!("end-state cluster: {e}")))?;
    Ok(())
}

/// Oracle `spec_conformance`: the event journal of the obs run must be
/// accepted by the `edm-spec` abstract state machine — every event a
/// legal EDM transition (placement, remap bijection, migration
/// lifecycle, trigger semantics, plan consistency, GC/wear accounting).
fn check_spec_conformance(rec: &MemoryRecorder) -> Result<(), OracleFailure> {
    let text = journal_text(rec, "spec_conformance")?;
    if let Some(v) = edm_spec::verify_journal(&text).violation {
        return Err(fail(
            "spec_conformance",
            format!("journal line {}: {}", v.line, v.message),
        ));
    }
    Ok(())
}

fn journal_text(rec: &MemoryRecorder, oracle: &'static str) -> Result<String, OracleFailure> {
    let mut out = Vec::new();
    rec.write_jsonl(&mut out)
        .map_err(|e| fail(oracle, format!("journal render failed: {e}")))?;
    String::from_utf8(out).map_err(|e| fail(oracle, format!("journal is not UTF-8: {e}")))
}

/// Oracles `shard_digest` and `journal_identity`: the group-sharded
/// engine's contract is a bit-identical replay. The scenario is re-run
/// under component client affinity twice — once sequentially, once
/// sharded across two workers — and both the determinism digests and
/// the rendered event journals must match exactly (per-shard buffers
/// merge in fixed component order, so even the journal bytes may not
/// depend on worker scheduling). The sharded journal must additionally
/// satisfy the edm-spec state machine, exercising its component-tagged
/// path. The sharding gates may legitimately fall back to the
/// sequential path (CMT, midpoint schedule, a single placement
/// component); the checks then hold trivially, and the generator draws
/// inode strides so a share of scenarios genuinely exercise the
/// parallel path.
fn check_shard_digest(s: &Scenario) -> Result<(), OracleFailure> {
    let mut seq = s.clone();
    seq.shards = 0;
    seq.affinity = ClientAffinity::Component;
    let mut par = seq.clone();
    par.shards = 2;
    let mut rec_a = MemoryRecorder::new(ObsLevel::Events);
    let a = seq
        .run_with_obs(&mut rec_a)
        .map_err(|e| fail("shard_digest", format!("sequential run failed: {e}")))?;
    let mut rec_b = MemoryRecorder::new(ObsLevel::Events);
    let b = par
        .run_with_obs(&mut rec_b)
        .map_err(|e| fail("shard_digest", format!("sharded run failed: {e}")))?;
    let (da, db) = (report_digest(&a), report_digest(&b));
    if da != db {
        return Err(fail(
            "shard_digest",
            format!(
                "digest {da:#018x} sequential vs {db:#018x} sharded — \
                 the group-sharded engine diverged from its replay contract"
            ),
        ));
    }
    let ja = journal_text(&rec_a, "journal_identity")?;
    let jb = journal_text(&rec_b, "journal_identity")?;
    if ja != jb {
        let line = ja
            .lines()
            .zip(jb.lines())
            .position(|(x, y)| x != y)
            .map_or_else(|| ja.lines().count().min(jb.lines().count()) + 1, |i| i + 1);
        return Err(fail(
            "journal_identity",
            format!(
                "sequential and sharded journals diverge at line {line} — \
                 shard-aware journaling is not scheduling-independent"
            ),
        ));
    }
    if let Some(v) = edm_spec::verify_journal(&ja).violation {
        return Err(fail(
            "spec_conformance",
            format!("component-affinity journal line {}: {}", v.line, v.message),
        ));
    }
    Ok(())
}

/// Oracle `policy_invariants`: every journaled trigger evaluation is
/// internally consistent with its λ, every EDM plan assessment predicts a
/// non-worsening RSD, the end-state cluster satisfies its structural
/// invariants (capacity, one-to-one remap overlay, directory/catalog
/// agreement, RAID-5 group distinctness — except under CMT, which
/// balances load across group boundaries by design), and the migration
/// counters in the journal reconcile with the report and the erase
/// totals.
fn check_policy_invariants(
    s: &Scenario,
    rec: &MemoryRecorder,
    report: &edm_cluster::RunReport,
    cluster: &edm_cluster::Cluster,
) -> Result<(), OracleFailure> {
    for entry in rec.journal() {
        match &entry.event {
            Event::TriggerEval {
                policy,
                rsd,
                lambda,
                mean,
                triggered,
                sources,
                destinations,
                ..
            } => {
                let decision = edm_core::TriggerDecision {
                    rsd: *rsd,
                    mean: *mean,
                    triggered: *triggered,
                    sources: sources.iter().map(|&d| d as usize).collect(),
                    destinations: destinations.iter().map(|&d| d as usize).collect(),
                };
                decision.validate(*lambda).map_err(|e| {
                    fail(
                        "policy_invariants",
                        format!(
                            "t={}us {policy} trigger evaluation inconsistent: {e}",
                            entry.t_us
                        ),
                    )
                })?;
            }
            Event::PlanAssessment {
                rsd_before,
                rsd_after,
                ..
            } if rsd_after.is_nan() || *rsd_after > *rsd_before + 1e-9 => {
                return Err(fail(
                    "policy_invariants",
                    format!(
                        "t={}us planned RSD worsens: {rsd_before:.6} -> {rsd_after:.6} \
                         (EDM must only migrate towards balance)",
                        entry.t_us
                    ),
                ));
            }
            _ => {}
        }
    }

    cluster
        .check_invariants(&report.failed_osds, s.policy != "CMT")
        .map_err(|e| fail("policy_invariants", format!("end-state cluster: {e}")))?;

    let remap_len = cluster.catalog.remap().len() as u64;
    if report.remap_entries != remap_len {
        return Err(fail(
            "policy_invariants",
            format!(
                "report says {} remap entries but the catalog holds {remap_len}",
                report.remap_entries
            ),
        ));
    }
    let moved = rec.counter_value("sim.moved_objects");
    if moved != report.moved_objects {
        return Err(fail(
            "policy_invariants",
            format!(
                "journal counted {moved} completed moves but the report says {}",
                report.moved_objects
            ),
        ));
    }
    // Migration traffic must be accounted in the erase/write totals: every
    // migrated byte is re-written on its destination device, so host page
    // writes must at least cover the moved bytes.
    let page_size = cluster
        .osds
        .first()
        .map(|o| o.ssd().geometry().page_size)
        .unwrap_or(4096);
    let moved_bytes = rec.counter_value("sim.moved_bytes");
    let written_bytes = report.aggregate_write_pages().saturating_mul(page_size);
    if written_bytes < moved_bytes {
        return Err(fail(
            "policy_invariants",
            format!(
                "{moved_bytes} migrated bytes exceed {written_bytes} host-written bytes — \
                 migration traffic missing from wear accounting (scenario {})",
                s.policy
            ),
        ));
    }
    Ok(())
}

/// Oracles `resume_digest` and `snapshot_roundtrip`: re-run the scenario
/// cutting a checkpoint at every wear tick, resume from one of them
/// (seeded choice), and require the resumed digest — and the checkpointed
/// run's own digest — to equal the uninterrupted one. The chosen
/// checkpoint must also survive decode→encode byte-identically.
fn check_resume_and_roundtrip(
    s: &Scenario,
    work_dir: &Path,
    base_digest: u64,
    stats: &mut OracleStats,
) -> Result<(), OracleFailure> {
    let ckpt_dir = work_dir.join("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| {
        fail(
            "harness",
            format!("cannot create {}: {e}", ckpt_dir.display()),
        )
    })?;

    let ck_report = s
        .run_with_obs_checkpointed(&mut NoopRecorder, Some((0, ckpt_dir.clone())))
        .map_err(|e| fail("harness", format!("checkpointed run failed: {e}")))?;
    let ck_digest = report_digest(&ck_report);
    if ck_digest != base_digest {
        return Err(fail(
            "resume_digest",
            format!(
                "digest {base_digest:#018x} plain vs {ck_digest:#018x} while cutting \
                 checkpoints — checkpointing perturbed the run"
            ),
        ));
    }

    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
        .map_err(|e| {
            fail(
                "harness",
                format!("cannot list {}: {e}", ckpt_dir.display()),
            )
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    snaps.sort();
    stats.checkpoints = snaps.len();
    if snaps.is_empty() {
        // Run too short to cross a wear tick — nothing to resume from.
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        return Ok(());
    }

    // The only randomness of the battery, seeded from the scenario text so
    // a replayed `.scn` picks the same checkpoint.
    let mut pick_rng = Rng::new(fnv1a(&s.to_text()));
    let picked = match snaps.get(pick_rng.below(snaps.len() as u64) as usize) {
        Some(p) => p.clone(),
        None => {
            let _ = std::fs::remove_dir_all(&ckpt_dir);
            return Ok(());
        }
    };

    let bytes = std::fs::read(&picked)
        .map_err(|e| fail("harness", format!("cannot read {}: {e}", picked.display())))?;
    let snap = SnapshotFile::from_bytes(&bytes).map_err(|e| {
        fail(
            "snapshot_roundtrip",
            format!("{} does not decode: {e}", picked.display()),
        )
    })?;
    if snap.to_bytes() != bytes {
        return Err(fail(
            "snapshot_roundtrip",
            format!(
                "{} re-encodes to different bytes — snapshot encoding is not canonical",
                picked.display()
            ),
        ));
    }

    let (embedded, resumed) = resume_snapshot(&picked, &mut NoopRecorder)
        .map_err(|e| fail("resume_digest", format!("resume failed: {e}")))?;
    if embedded != *s {
        return Err(fail(
            "resume_digest",
            format!(
                "embedded scenario round-trips differently:\n{}vs\n{}",
                embedded.to_text(),
                s.to_text()
            ),
        ));
    }
    let resumed_digest = report_digest(&resumed);
    if resumed_digest != base_digest {
        return Err(fail(
            "resume_digest",
            format!(
                "digest {base_digest:#018x} uninterrupted vs {resumed_digest:#018x} resumed \
                 from {} ({} checkpoints)",
                picked.display(),
                snaps.len()
            ),
        ));
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}

/// Oracle `ftl_equiv`: the scenario's write stream, replayed against two
/// identical micro SSDs — one through extent-sized span calls, one split
/// into page-sized calls — must leave bit-identical wear state (the
/// span-batching contract of PR 1, here exercised on fuzzed streams
/// instead of the perf harness's fixed skew).
fn check_ftl_equivalence(s: &Scenario) -> Result<(), OracleFailure> {
    const MAX_EXTENTS: u64 = 20_000;
    let g = Geometry {
        page_size: 4096,
        pages_per_block: 32,
        blocks: 128,
        over_provision_ppt: 80,
    };
    let ps = g.page_size;
    // Keep the live range at ~55 % of exported space so GC has headroom
    // (the same regime the perf harness uses).
    let live_pages = (g.exported_pages() * 11 / 20).max(16);
    let mut span = Ssd::new(g, LatencyModel::PAPER);
    let mut pages = Ssd::new(g, LatencyModel::PAPER);

    let trace = s.synth_trace();
    let mut extents = 0u64;
    for r in &trace.records {
        let FileOp::Write { offset, len } = r.op else {
            continue;
        };
        let span_pages = (len / ps).clamp(1, 8);
        let start = (r.file.0.wrapping_mul(2654435761).wrapping_add(offset / ps))
            % (live_pages - span_pages + 1);
        span.write(start * ps, span_pages * ps)
            .map_err(|e| fail("ftl_equiv", format!("span write failed: {e}")))?;
        for p in 0..span_pages {
            pages
                .write((start + p) * ps, ps)
                .map_err(|e| fail("ftl_equiv", format!("per-page write failed: {e}")))?;
        }
        extents += 1;
        if extents >= MAX_EXTENTS {
            break;
        }
    }

    span.check_invariants()
        .map_err(|e| fail("ftl_equiv", format!("span-side SSD invariants: {e}")))?;
    pages
        .check_invariants()
        .map_err(|e| fail("ftl_equiv", format!("page-side SSD invariants: {e}")))?;
    if span.wear() != pages.wear() {
        return Err(fail(
            "ftl_equiv",
            format!(
                "wear diverged after {extents} extents from trace {}: span {:?} vs per-page {:?}",
                trace.name,
                span.wear(),
                pages.wear()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("edm-fuzz-test-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    #[test]
    fn default_scenario_passes_all_oracles() {
        let s = Scenario {
            scale: 0.002,
            osds: 8,
            ..Scenario::default()
        };
        let dir = tmp_dir("default");
        let stats = check_scenario(&s, &dir).expect("oracles must hold on the default scenario");
        assert!(stats.checkpoints > 0, "run should cross a wear tick");
        assert!(stats.journal_events > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_scenario_passes_all_oracles() {
        let s = Scenario::parse(
            "scale 0.002\nosds 8\npolicy EDM-CDF\nschedule every-tick\nfail 150000 1 rebuild\n",
        )
        .expect("parse");
        let dir = tmp_dir("failure");
        let stats = check_scenario(&s, &dir).expect("oracles must hold under failure injection");
        assert_eq!(stats.failed_osds, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharding_scenario_passes_all_oracles() {
        // The datacenter smoke shape: stride 2 over 4 groups splits the
        // cluster into 2 components, so the battery's shard oracle runs
        // the parallel engine for real rather than falling back.
        let s = Scenario::parse(
            "scale 0.002\nosds 16\ngroups 4\nobjects_per_file 2\nschedule every-tick\n\
             stride 2\nshards 2\naffinity component\n",
        )
        .expect("parse");
        let dir = tmp_dir("sharding");
        check_scenario(&s, &dir).expect("oracles must hold on a sharded scenario");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_failure_renders_its_name() {
        let f = fail("resume_digest", "boom");
        assert_eq!(f.to_string(), "[resume_digest] boom");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so the checkpoint pick (and thus replay behaviour) can
        // never drift silently.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }
}

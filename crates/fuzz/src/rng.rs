//! Seeded splitmix64 PRNG.
//!
//! The fuzzer must be a pure function of its `--seed`: no thread-local
//! RNG, no time-derived entropy. splitmix64 (Steele, Lea & Flood, 2014)
//! is the standard tiny generator for this — one u64 of state, full
//! 64-bit output, passes BigCrush for this use, and trivially portable so
//! a seed printed on one machine replays on any other.

/// A splitmix64 generator. `Rng::new(seed)` defines the entire stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`. The modulo bias
    /// over a 64-bit stream is negligible for the pool sizes used here.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform pick from a slice; `None` on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            items.get(self.below(items.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn pick_covers_the_pool() {
        let pool = [10u32, 20, 30];
        let mut r = Rng::new(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match r.pick(&pool) {
                Some(&10) => seen[0] = true,
                Some(&20) => seen[1] = true,
                Some(&30) => seen[2] = true,
                _ => {}
            }
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u32; 0] = [];
        assert!(r.pick(&empty).is_none());
    }
}

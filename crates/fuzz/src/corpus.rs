//! Repro emission and the regression corpus.
//!
//! Every fuzzer-found failure becomes a small `.scn` file under
//! `fuzz/corpus/`: a comment header (seed, oracle, one-line diagnosis)
//! followed by the *minimal* scenario text — only the keys that differ
//! from [`Scenario::default`], since the parser starts from the default.
//! `tests/fuzz_replay.rs` replays the whole directory under `cargo test`,
//! so once a repro is committed the bug stays fixed.

use std::path::{Path, PathBuf};

use edm_harness::Scenario;

use crate::oracle::OracleFailure;

/// Renders only the keys that differ from the default scenario. Parsing
/// the result reproduces `s` exactly (asserted in tests), because
/// [`Scenario::parse`] starts from the same default.
pub fn minimal_text(s: &Scenario) -> String {
    let d = Scenario::default();
    let mut out = String::new();
    if s.trace != d.trace {
        out.push_str(&format!("trace {}\n", s.trace));
    }
    if s.scale != d.scale {
        out.push_str(&format!("scale {}\n", s.scale));
    }
    if s.osds != d.osds {
        out.push_str(&format!("osds {}\n", s.osds));
    }
    if s.groups != d.groups {
        out.push_str(&format!("groups {}\n", s.groups));
    }
    if s.objects_per_file != d.objects_per_file {
        out.push_str(&format!("objects_per_file {}\n", s.objects_per_file));
    }
    if s.policy != d.policy {
        out.push_str(&format!("policy {}\n", s.policy));
    }
    if s.schedule != d.schedule {
        out.push_str(&format!(
            "schedule {}\n",
            match s.schedule {
                edm_cluster::MigrationSchedule::Never => "never",
                edm_cluster::MigrationSchedule::Midpoint => "midpoint",
                edm_cluster::MigrationSchedule::EveryTick => "every-tick",
            }
        ));
    }
    if s.lambda != d.lambda {
        out.push_str(&format!("lambda {}\n", s.lambda));
    }
    if s.force != d.force {
        out.push_str(&format!("force {}\n", s.force));
    }
    if let Some(cc) = s.client_concurrency {
        out.push_str(&format!("client_concurrency {cc}\n"));
    }
    if s.shards != d.shards {
        out.push_str(&format!("shards {}\n", s.shards));
    }
    if s.affinity != d.affinity {
        out.push_str("affinity component\n");
    }
    if s.stride != d.stride {
        out.push_str(&format!("stride {}\n", s.stride));
    }
    for f in &s.failures {
        out.push_str(&format!("fail {} {}", f.at_us, f.osd.0));
        if f.rebuild {
            out.push_str(" rebuild");
        }
        out.push('\n');
    }
    out
}

/// First line of `detail`, bounded, so the repro header stays one line.
fn one_line(detail: &str) -> String {
    let line = detail.lines().next().unwrap_or("");
    let mut s: String = line.chars().take(160).collect();
    if s.len() < line.len() {
        s.push('…');
    }
    s
}

/// Writes a shrunk failure as a replayable repro under `dir` and returns
/// its path. The header is `#`-commented so the file feeds straight back
/// into `edm-fuzz --replay` (and `Scenario::parse`).
pub fn write_repro(
    dir: &Path,
    seed: u64,
    failure: &OracleFailure,
    shrunk: &Scenario,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("repro-{}-seed{seed}.scn", failure.oracle));
    let text = format!(
        "# edm-fuzz repro: oracle {} failed at seed {seed}\n# {}\n{}",
        failure.oracle,
        one_line(&failure.detail),
        minimal_text(shrunk)
    );
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_text_of_default_is_empty() {
        assert_eq!(minimal_text(&Scenario::default()), "");
    }

    #[test]
    fn minimal_text_round_trips() {
        let texts = [
            "",
            "scale 0.002\n",
            "trace lair62\nosds 8\npolicy CMT\nschedule every-tick\nlambda 0.2\n\
             force false\nclient_concurrency 16\nfail 100000 3 rebuild\nfail 200000 1\n",
            "groups 2\nobjects_per_file 2\n",
            "groups 4\nobjects_per_file 2\nstride 2\nshards 2\naffinity component\n",
        ];
        for t in texts {
            let s = Scenario::parse(t).expect("parse");
            let m = minimal_text(&s);
            let reparsed = Scenario::parse(&m).expect("reparse");
            assert_eq!(reparsed, s, "minimal text {m:?} of {t:?}");
        }
    }

    #[test]
    fn repro_file_replays_and_stays_small() {
        let dir = std::env::temp_dir().join(format!("edm-fuzz-corpus-{}", std::process::id()));
        let failure = OracleFailure {
            oracle: "policy_invariants",
            detail: "t=120us planned RSD worsens: 0.1 -> 0.2\nsecond line dropped".into(),
        };
        let shrunk = Scenario::parse("scale 0.001\npolicy EDM-CDF\n").expect("parse");
        let path = write_repro(&dir, 77, &failure, &shrunk).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.lines().count() <= 8, "repro must stay tiny:\n{text}");
        assert!(!text.contains("second line"));
        let replayed = Scenario::parse(&text).expect("repro must parse");
        assert_eq!(replayed, shrunk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

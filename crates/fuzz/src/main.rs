//! edm-fuzz: deterministic scenario fuzzing for the EDM simulator.
//!
//! ```text
//! edm-fuzz --seed 1 --runs 50            # fixed number of scenarios
//! edm-fuzz --seed 1 --budget-secs 600    # nightly: fuzz until the budget
//! edm-fuzz --replay fuzz/corpus/x.scn    # re-run one repro's oracle battery
//! edm-fuzz --bench                       # fuzz_throughput cell in BENCH_edm.json
//! ```
//!
//! Fuzzing is a pure function of `--seed`: the scenario stream, the
//! oracle battery, and the shrinker contain no ambient randomness, so a
//! failure seen in CI replays locally from the same seed — or, better,
//! from the shrunk `.scn` the run leaves in `fuzz/corpus/`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use edm_fuzz::{check_scenario, generate, shrink, write_repro, OracleFailure, Rng};
use edm_harness::bench::{write_cells, BenchCell};
use edm_harness::Scenario;

struct Args {
    seed: u64,
    runs: Option<u64>,
    budget_secs: Option<u64>,
    replay: Option<PathBuf>,
    corpus_dir: PathBuf,
    bench: bool,
}

const USAGE: &str = "usage: edm-fuzz [--seed N] [--runs N] [--budget-secs N] \
                     [--replay FILE.scn] [--corpus-dir DIR] [--bench]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        runs: None,
        budget_secs: None,
        replay: None,
        corpus_dir: PathBuf::from("fuzz/corpus"),
        bench: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {what}\n{USAGE}"))
        };
        match a.as_str() {
            "--seed" => {
                args.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--runs" => {
                args.runs = Some(
                    val("--runs")?
                        .parse()
                        .map_err(|e| format!("bad runs: {e}"))?,
                )
            }
            "--budget-secs" => {
                args.budget_secs = Some(
                    val("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("bad budget: {e}"))?,
                )
            }
            "--replay" => args.replay = Some(PathBuf::from(val("--replay")?)),
            "--corpus-dir" => args.corpus_dir = PathBuf::from(val("--corpus-dir")?),
            "--bench" => args.bench = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn work_dir() -> PathBuf {
    std::env::temp_dir().join(format!("edm-fuzz-{}", std::process::id()))
}

/// Replays one `.scn` through the oracle battery. Exit 0 iff green.
fn replay(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("edm-fuzz: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let scenario = match Scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("edm-fuzz: {}: {e}", path.display());
            return 2;
        }
    };
    let dir = work_dir();
    let code = match check_scenario(&scenario, &dir) {
        Ok(stats) => {
            println!(
                "{}: all oracles green ({} journal events, {} checkpoints, \
                 {} migration rounds)",
                path.display(),
                stats.journal_events,
                stats.checkpoints,
                stats.migrations_triggered
            );
            0
        }
        Err(f) => {
            eprintln!("{}: FAILED {f}", path.display());
            1
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    code
}

/// One fuzz iteration: generate from the per-scenario seed, run the
/// battery, shrink + emit a repro on failure.
fn fuzz_one(
    scenario_seed: u64,
    dir: &Path,
    corpus_dir: &Path,
    totals: &mut Totals,
) -> Option<OracleFailure> {
    let scenario = generate(&mut Rng::new(scenario_seed));
    match check_scenario(&scenario, dir) {
        Ok(stats) => {
            totals.journal_events += stats.journal_events as u64;
            totals.checkpoints += stats.checkpoints as u64;
            totals.migration_rounds += stats.migrations_triggered;
            totals.injected_failures += stats.failed_osds as u64;
            None
        }
        Err(failure) => {
            eprintln!("seed {scenario_seed}: {failure}");
            eprintln!("  shrinking...");
            let (shrunk, final_failure) =
                shrink(&scenario, &failure, &mut |c| check_scenario(c, dir).err());
            match write_repro(corpus_dir, scenario_seed, &final_failure, &shrunk) {
                Ok(p) => eprintln!(
                    "  minimal repro written to {} — replay with: edm-fuzz --replay {}",
                    p.display(),
                    p.display()
                ),
                Err(e) => eprintln!("  could not write repro: {e}"),
            }
            Some(final_failure)
        }
    }
}

#[derive(Default)]
struct Totals {
    journal_events: u64,
    checkpoints: u64,
    migration_rounds: u64,
    injected_failures: u64,
}

fn fuzz(args: &Args) -> i32 {
    let dir = work_dir();
    let runs_limit = match (args.runs, args.budget_secs) {
        (Some(r), _) => r,
        (None, Some(_)) => u64::MAX,
        (None, None) => 100,
    };
    #[allow(clippy::disallowed_methods)] // wall-clock budget at the process boundary
    let started = Instant::now();
    let mut master = Rng::new(args.seed);
    let mut totals = Totals::default();
    let mut failures = 0u64;
    let mut executed = 0u64;
    while executed < runs_limit {
        if let Some(budget) = args.budget_secs {
            #[allow(clippy::disallowed_methods)] // wall-clock budget at the process boundary
            let elapsed = started.elapsed().as_secs();
            if elapsed >= budget {
                break;
            }
        }
        let scenario_seed = master.next_u64();
        if fuzz_one(scenario_seed, &dir, &args.corpus_dir, &mut totals).is_some() {
            failures += 1;
        }
        executed += 1;
    }
    #[allow(clippy::disallowed_methods)] // wall-clock budget at the process boundary
    let wall = started.elapsed().as_secs_f64();
    println!(
        "edm-fuzz: {executed} scenarios in {wall:.1}s ({:.2}/s), {failures} oracle failures",
        executed as f64 / wall.max(1e-9)
    );
    println!(
        "  coverage: {} journal events, {} checkpoints resumed-from pool, \
         {} migration rounds, {} injected device failures",
        totals.journal_events,
        totals.checkpoints,
        totals.migration_rounds,
        totals.injected_failures
    );
    let _ = std::fs::remove_dir_all(&dir);
    if failures > 0 {
        1
    } else {
        0
    }
}

/// The `fuzz_throughput` cell: scenarios/sec over a fixed smoke batch,
/// merged into `BENCH_edm.json` next to the edm-perf cells.
fn bench() -> i32 {
    const BATCH: u64 = 6;
    let dir = work_dir();
    let mut master = Rng::new(1);
    #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
    let started = Instant::now();
    for _ in 0..BATCH {
        let seed = master.next_u64();
        let scenario = generate(&mut Rng::new(seed));
        if let Err(f) = check_scenario(&scenario, &dir) {
            eprintln!("edm-fuzz --bench: seed {seed}: {f}");
            let _ = std::fs::remove_dir_all(&dir);
            return 1;
        }
    }
    #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
    let wall = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    let cell = BenchCell {
        name: "fuzz_throughput".into(),
        wall_ms: wall * 1e3,
        ops_per_sec: BATCH as f64 / wall.max(1e-9),
        erases: 0,
    };
    println!(
        "fuzz_throughput: {BATCH} scenario batteries in {:.1} ms ({:.2} scenarios/s)",
        cell.wall_ms, cell.ops_per_sec
    );
    if let Err(e) = write_cells("BENCH_edm.json", &[cell]) {
        eprintln!("edm-fuzz --bench: writing BENCH_edm.json failed: {e}");
        return 1;
    }
    println!("merged fuzz_throughput into BENCH_edm.json");
    0
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("edm-fuzz: {e}");
            std::process::exit(2);
        }
    };
    // Engine panics are caught by the oracle battery and reported as
    // `engine_panic` failures; keep the default hook from dumping a
    // backtrace for every caught panic while shrinking.
    std::panic::set_hook(Box::new(|_| {}));
    let code = if let Some(path) = &args.replay {
        replay(path)
    } else if args.bench {
        bench()
    } else {
        fuzz(&args)
    };
    std::process::exit(code);
}

//! Greedy scenario shrinking.
//!
//! Given a scenario that fails an oracle, repeatedly try simpler variants
//! — halve the scale, drop a failure event, narrow the cluster, reset a
//! field to its default — and keep a variant only if it still fails the
//! *same* oracle (a different failure is a different bug; chasing it
//! would make the repro misleading). Runs to a fixpoint, so the emitted
//! repro is locally minimal: no single simplification can be applied to
//! it without losing the bug.

use edm_harness::Scenario;

use crate::oracle::OracleFailure;

/// Widths tried when narrowing the cluster, widest first.
const OSD_STEPS: [u32; 5] = [16, 12, 8, 6, 4];
/// Upper bound on greedy passes; each pass either shrinks or stops, and
/// the candidate set is finite, so this is belt-and-braces only.
const MAX_PASSES: usize = 40;

/// Returns true when `s` still satisfies the placement constraint the
/// cluster enforces (`objects_per_file ≤ groups ≤ osds`).
fn valid(s: &Scenario) -> bool {
    s.objects_per_file <= s.groups
        && s.groups <= s.osds
        && s.failures.iter().all(|f| f.osd.0 < s.osds)
}

/// All one-step simplifications of `s`, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let d = Scenario::default();
    let mut out = Vec::new();
    let mut push = |c: Scenario| {
        if c != *s && valid(&c) {
            out.push(c);
        }
    };

    // Drop failure events one at a time (fewer events beats anything).
    for i in 0..s.failures.len() {
        let mut c = s.clone();
        c.failures.remove(i);
        push(c);
    }
    // Halve the workload.
    if s.scale > 0.001 {
        let mut c = s.clone();
        c.scale = (s.scale / 2.0).max(0.001);
        push(c);
    }
    // Narrow the cluster one step.
    if let Some(&next) = OSD_STEPS.iter().find(|&&w| w < s.osds) {
        let mut c = s.clone();
        c.osds = next;
        push(c);
    }
    // Reset each field to its default, one at a time, so the repro text
    // (which omits default-valued keys) keeps only what matters.
    let resets: [fn(&mut Scenario, &Scenario); 11] = [
        |c, d| c.trace = d.trace.clone(),
        |c, d| c.policy = d.policy.clone(),
        |c, d| c.schedule = d.schedule,
        |c, d| c.lambda = d.lambda,
        |c, d| c.force = d.force,
        |c, d| c.client_concurrency = d.client_concurrency,
        |c, d| c.groups = d.groups,
        |c, d| c.objects_per_file = d.objects_per_file,
        |c, d| c.shards = d.shards,
        |c, d| c.affinity = d.affinity,
        |c, d| c.stride = d.stride,
    ];
    for f in resets {
        let mut c = s.clone();
        f(&mut c, &d);
        push(c);
    }
    out
}

/// Shrinks `s`, which fails with `original`, to a locally minimal
/// scenario still failing the same oracle. `check` runs the oracle
/// battery (`None` = all green). Returns the shrunk scenario and its
/// (possibly re-worded) failure.
pub fn shrink(
    s: &Scenario,
    original: &OracleFailure,
    check: &mut dyn FnMut(&Scenario) -> Option<OracleFailure>,
) -> (Scenario, OracleFailure) {
    let mut best = s.clone();
    let mut best_failure = original.clone();
    for _ in 0..MAX_PASSES {
        let mut improved = false;
        for c in candidates(&best) {
            if let Some(f) = check(&c) {
                if f.oracle == best_failure.oracle {
                    best = c;
                    best_failure = f;
                    improved = true;
                    break; // restart the candidate scan from the new best
                }
            }
        }
        if !improved {
            break;
        }
    }
    (best, best_failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleFailure;

    fn boom() -> OracleFailure {
        OracleFailure {
            oracle: "policy_invariants",
            detail: "synthetic".into(),
        }
    }

    #[test]
    fn shrinks_to_default_when_everything_fails() {
        // An oracle that always fails shrinks all the way to the default
        // scenario at minimum scale — the fixpoint of the candidate set.
        let s = Scenario::parse(
            "trace lair62\nscale 0.003\nosds 16\ngroups 3\nobjects_per_file 3\n\
             policy CMT\nschedule every-tick\nlambda 0.4\nforce false\n\
             client_concurrency 4\nfail 100000 1 rebuild\nfail 200000 2\n",
        )
        .expect("parse");
        let (shrunk, f) = shrink(&s, &boom(), &mut |_| Some(boom()));
        assert_eq!(f.oracle, "policy_invariants");
        assert!(shrunk.failures.is_empty());
        assert_eq!(shrunk.scale, 0.001);
        assert_eq!(shrunk.osds, 4);
        assert_eq!(shrunk.policy, "EDM-HDF");
        assert_eq!(shrunk.client_concurrency, None);
    }

    #[test]
    fn keeps_the_part_that_matters() {
        // Failure only reproduces while the CMT policy is in play: the
        // shrinker must keep the policy but simplify the rest.
        let s = Scenario::parse(
            "trace lair62\nscale 0.003\nosds 16\npolicy CMT\nlambda 0.4\nfail 100000 1\n",
        )
        .expect("parse");
        let (shrunk, _) = shrink(&s, &boom(), &mut |c| (c.policy == "CMT").then(boom));
        assert_eq!(shrunk.policy, "CMT");
        assert!(shrunk.failures.is_empty());
        assert_eq!(shrunk.scale, 0.001);
        assert_eq!(shrunk.trace, "home02");
    }

    #[test]
    fn does_not_adopt_a_different_oracles_failure() {
        let other = OracleFailure {
            oracle: "ftl_equiv",
            detail: "different bug".into(),
        };
        let s = Scenario::parse("scale 0.002\nosds 8\n").expect("parse");
        // Every candidate fails, but with a different oracle: no shrink.
        let (shrunk, f) = shrink(&s, &boom(), &mut |_| Some(other.clone()));
        assert_eq!(shrunk, s);
        assert_eq!(f.oracle, "policy_invariants");
    }

    #[test]
    fn candidates_respect_placement_validity() {
        let s = Scenario::parse("osds 4\ngroups 4\nobjects_per_file 4\n").expect("parse");
        for c in candidates(&s) {
            assert!(valid(&c), "{c:?}");
        }
    }
}

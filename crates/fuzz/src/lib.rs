#![forbid(unsafe_code)]
//! # edm-fuzz — deterministic scenario fuzzing with differential oracles
//!
//! The repo's correctness story (PRs 1–4) is built on redundancy: the
//! same run can be executed per-page or span-batched, with observability
//! on or off, straight through or checkpoint-and-resumed — and every
//! variant must agree bit-for-bit. This crate turns that redundancy into
//! an automated correctness engine:
//!
//! * [`rng`] — a tiny splitmix64 PRNG, so fuzzing is a pure function of
//!   the seed (no ambient randomness, replayable anywhere);
//! * [`gen`] — draws random-but-valid [`edm_harness::Scenario`]s from a
//!   constrained grammar (trace × scale × cluster shape × policy ×
//!   schedule × failure/rebuild events);
//! * [`oracle`] — the differential oracle panel each scenario must pass;
//! * [`shrink`] — greedy minimization of a failing scenario, preserving
//!   the failing oracle;
//! * [`corpus`] — repro `.scn` emission and the regression corpus layout
//!   replayed by `tests/fuzz_replay.rs`.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use corpus::{minimal_text, write_repro};
pub use gen::generate;
pub use oracle::{check_scenario, OracleFailure, OracleStats};
pub use rng::Rng;
pub use shrink::shrink;

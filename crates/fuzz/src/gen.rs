//! Scenario generator: random-but-valid draws from the scenario grammar.
//!
//! Every draw satisfies the placement constraint the cluster enforces
//! (`objects_per_file ≤ groups ≤ osds`, `Placement::validate`) and keeps
//! failure injections on distinct, existing OSDs — the fuzzer explores
//! *behaviour*, not input validation. Scales are kept small so one
//! scenario's full oracle battery (four end-to-end runs plus a resume)
//! lands in well under a second.

use edm_cluster::{ClientAffinity, FailureSpec, MigrationSchedule, OsdId};
use edm_core::{Assessor, POLICY_NAMES};
use edm_harness::Scenario;
use edm_workload::harvard::TRACE_NAMES;

use crate::rng::Rng;

/// Footprint scales small enough that a battery of runs stays fast, large
/// enough that migration rounds and GC actually happen.
const SCALES: [f64; 4] = [0.001, 0.0015, 0.002, 0.003];
/// Cluster widths, including non-multiples of the group count so the
/// group-first placement fallback is exercised.
const OSDS: [u32; 5] = [4, 6, 8, 12, 16];
const GROUPS: [u32; 3] = [2, 3, 4];
const LAMBDAS: [f64; 4] = [0.05, 0.1, 0.2, 0.4];
const CONCURRENCY: [u32; 3] = [4, 16, 64];

/// Draws one valid scenario. Pure function of the generator state.
pub fn generate(rng: &mut Rng) -> Scenario {
    let mut s = Scenario::default();

    // Workload: the seven Harvard presets plus the Fig. 3 synthetic.
    let trace_pool: Vec<&str> = TRACE_NAMES.iter().copied().chain(["random"]).collect();
    if let Some(&t) = rng.pick(&trace_pool) {
        s.trace = t.to_string();
    }
    if let Some(&scale) = rng.pick(&SCALES) {
        s.scale = scale;
    }

    // Cluster shape, honouring objects_per_file ≤ groups ≤ osds.
    if let Some(&osds) = rng.pick(&OSDS) {
        s.osds = osds;
    }
    let group_pool: Vec<u32> = GROUPS.iter().copied().filter(|&g| g <= s.osds).collect();
    if let Some(&g) = rng.pick(&group_pool) {
        s.groups = g;
    }
    s.objects_per_file = 2 + rng.below(u64::from(s.groups) - 1) as u32;

    if let Some(&p) = rng.pick(&POLICY_NAMES) {
        s.policy = p.to_string();
    }
    s.schedule = match rng.below(3) {
        0 => MigrationSchedule::Never,
        1 => MigrationSchedule::Midpoint,
        _ => MigrationSchedule::EveryTick,
    };
    if let Some(&l) = rng.pick(&LAMBDAS) {
        s.lambda = l;
    }
    // A share of draws plan with the analytic mean-field assessor
    // (edm-model) instead of the projection loop, so the fast path's
    // guardrail — never publish a plan the projection rejects — is
    // fuzzed directly as well as via the `model_assessor` oracle.
    if rng.below(4) == 0 {
        s.assessor = Assessor::Model;
    }
    s.force = rng.coin();
    s.client_concurrency = if rng.coin() {
        rng.pick(&CONCURRENCY).copied()
    } else {
        None
    };

    // Inode stride / sharded replay: a share of draws opts into the
    // datacenter shape — a stride dividing the group count with
    // objects_per_file ≤ stride splits placement into ≥ 2 independent
    // components, which two worker shards then own under component
    // affinity. The rest keep the sequential default, so the
    // `shard_digest` oracle covers both the parallel path and the
    // fallback gates.
    let strides: Vec<u64> = (2..u64::from(s.groups))
        .filter(|&t| u64::from(s.groups).is_multiple_of(t) && u64::from(s.objects_per_file) <= t)
        .collect();
    if !strides.is_empty() && rng.below(3) == 0 {
        if let Some(&t) = rng.pick(&strides) {
            s.stride = t;
            s.affinity = ClientAffinity::Component;
            s.shards = 2;
        }
    }

    // 0–2 failures on distinct OSDs, mid-run (after warm traffic exists,
    // before the tail), each with or without RAID-5 rebuild.
    let failures = rng.below(3);
    let mut failed: Vec<u32> = Vec::new();
    for _ in 0..failures {
        let osd = rng.below(u64::from(s.osds)) as u32;
        if failed.contains(&osd) {
            continue;
        }
        failed.push(osd);
        s.failures.push(FailureSpec {
            at_us: 50_000 + rng.below(400_000),
            osd: OsdId(osd),
            rebuild: rng.coin(),
        });
    }
    s.failures.sort_by_key(|f| (f.at_us, f.osd.0));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_are_valid_and_round_trip() {
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let s = generate(&mut rng);
            assert!(s.objects_per_file <= s.groups, "{s:?}");
            assert!(s.groups <= s.osds, "{s:?}");
            assert!(s.scale > 0.0 && s.scale <= 1.0);
            for f in &s.failures {
                assert!(f.osd.0 < s.osds);
            }
            let mut osds: Vec<u32> = s.failures.iter().map(|f| f.osd.0).collect();
            osds.dedup();
            assert_eq!(osds.len(), s.failures.len(), "duplicate failure OSD");
            let reparsed = Scenario::parse(&s.to_text()).expect("round trip");
            assert_eq!(reparsed, s);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a: Vec<String> = {
            let mut rng = Rng::new(99);
            (0..20).map(|_| generate(&mut rng).to_text()).collect()
        };
        let b: Vec<String> = {
            let mut rng = Rng::new(99);
            (0..20).map(|_| generate(&mut rng).to_text()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn generator_reaches_the_interesting_corners() {
        let mut rng = Rng::new(3);
        let scenarios: Vec<Scenario> = (0..300).map(|_| generate(&mut rng)).collect();
        assert!(scenarios.iter().any(|s| !s.failures.is_empty()));
        assert!(scenarios
            .iter()
            .any(|s| s.failures.iter().any(|f| f.rebuild)));
        assert!(scenarios.iter().any(|s| s.osds % s.groups != 0));
        assert!(scenarios.iter().any(|s| s.policy == "CMT"));
        assert!(scenarios
            .iter()
            .any(|s| s.schedule == MigrationSchedule::EveryTick));
        assert!(scenarios.iter().any(|s| s.trace == "random"));
        assert!(scenarios.iter().any(|s| s.assessor == Assessor::Model));
        assert!(scenarios.iter().any(|s| s.assessor == Assessor::Projection));
        // The datacenter shape must come up: stride > 1 with component
        // affinity and worker shards, so the parallel engine is fuzzed.
        assert!(scenarios
            .iter()
            .any(|s| s.stride > 1 && s.shards > 0 && s.affinity == ClientAffinity::Component));
    }
}

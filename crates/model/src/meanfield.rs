//! The per-device mean-field model: victim valid-page ratio, write
//! amplification, and erase counts under greedy or FIFO garbage
//! collection.
//!
//! ## Greedy GC
//!
//! Under greedy victim selection the classic log-structured cleaning
//! analysis relates the victim's valid-page ratio `v` to the disk
//! utilization `u`:
//!
//! > u = (v − 1) / ln v
//!
//! Real (skewed) workloads segregate hot and cold data, so victims hold
//! fewer valid pages than the uniform analysis predicts; the EDM paper
//! corrects with an empirical offset σ = 0.28:
//!
//! > u = (v − 1) / ln v + σ
//!
//! ## FIFO GC
//!
//! Under FIFO (oldest-block-first) cleaning a block filled at the write
//! frontier is reclaimed after the frontier traverses the whole device
//! once. With uniform writes over the live set, a page survives that
//! traversal with probability `exp(−H/U)` where `H` is the host writes
//! per traversal and `U` the live pages — which closes into the
//! Desnoyers-style fixed point
//!
//! > v = exp(−(1 − v) / u)
//!
//! whose smallest root in `[0, 1)` is the victim valid ratio. The same
//! σ offset models skew (FIFO cannot exploit skew as well as greedy, but
//! hot/cold segregation at the frontier still lowers `v`).
//!
//! ## Erases and write amplification
//!
//! Each reclaimed block returns `Np·(1 − v)` net free pages, so
//!
//! > erases(Wc, u) = Wc / (Np · (1 − v(u)))
//! > WA(u)         = 1 / (1 − v(u))
//!
//! tying the two by the identity `erases · Np = Wc · WA` (each erase
//! rewrites `Np·v` valid pages, and physical writes are host writes plus
//! relocations).

/// The empirical skew offset σ of the EDM paper (§III.B.1, Fig. 3).
pub const MODEL_SIGMA: f64 = 0.28;

/// Victim-ratio ceiling: above this GC reclaims almost nothing and the
/// erase count diverges; clamping keeps every prediction finite.
const V_MAX: f64 = 0.999;

/// Bisection steps for the victim-ratio inversions: interval width ends
/// below 1e-18, far under f64 noise on these curves.
const BISECT_STEPS: u32 = 60;

/// Garbage-collection victim policy, mirroring the FTL modes in
/// `crates/ssd` (`VictimPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// Fewest-valid-pages victim (the FTL default).
    Greedy,
    /// Oldest-block victim (wear-leveling-friendly round-robin).
    Fifo,
}

impl GcPolicy {
    /// Maps an FTL victim-policy label to its analytic counterpart.
    /// Cost-benefit selects near-greedy victims at steady state, so it
    /// shares the greedy curve.
    pub fn from_label(label: &str) -> Option<GcPolicy> {
        match label {
            "greedy" | "cost_benefit" => Some(GcPolicy::Greedy),
            "fifo" => Some(GcPolicy::Fifo),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            GcPolicy::Greedy => "greedy",
            GcPolicy::Fifo => "fifo",
        }
    }
}

/// The analytic per-device model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanFieldModel {
    /// Pages per erase block (`Np`); the paper's geometry gives 32.
    pub pages_per_block: u32,
    /// Skew offset σ; 0 recovers the uniform-workload curves.
    pub sigma: f64,
    /// GC victim policy the device runs.
    pub gc: GcPolicy,
}

/// Forward greedy relation: utilization implied by a victim ratio,
/// `u = (v − 1)/ln v`, continuously extended to the endpoints.
fn greedy_u_of_v(v: f64) -> f64 {
    if v <= f64::EPSILON {
        return 0.0;
    }
    if v >= 1.0 - 1e-12 {
        return 1.0;
    }
    (v - 1.0) / v.ln()
}

impl MeanFieldModel {
    /// The paper's configuration: σ = 0.28 over greedy GC.
    pub fn paper(pages_per_block: u32) -> Self {
        MeanFieldModel {
            pages_per_block,
            sigma: MODEL_SIGMA,
            gc: GcPolicy::Greedy,
        }
    }

    /// Same σ, explicit GC policy.
    pub fn with_gc(pages_per_block: u32, sigma: f64, gc: GcPolicy) -> Self {
        MeanFieldModel {
            pages_per_block,
            sigma,
            gc,
        }
    }

    /// Victim valid-page ratio `v(u)` predicted for disk utilization `u`.
    ///
    /// Both curves are strictly increasing in `v` on the relevant branch,
    /// so bisection finds the unique root. Utilizations at or below σ
    /// clamp to 0 (victims entirely invalid); the top end clamps to
    /// [`V_MAX`] so the erase count stays finite.
    pub fn victim_valid_ratio(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "utilization must be in [0, 1]");
        let ueff = u - self.sigma;
        if ueff <= 0.0 {
            return 0.0;
        }
        match self.gc {
            GcPolicy::Greedy => {
                if ueff >= greedy_u_of_v(V_MAX) {
                    return V_MAX;
                }
                // Root of greedy_u_of_v(v) = ueff.
                let (mut lo, mut hi) = (0.0f64, V_MAX);
                for _ in 0..BISECT_STEPS {
                    let mid = 0.5 * (lo + hi);
                    if greedy_u_of_v(mid) < ueff {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            }
            GcPolicy::Fifo => {
                // Smallest fixed point of g(v) = exp(−(1−v)/ueff).
                // h(v) = v − g(v) has h(0) < 0; the first upward crossing
                // is the stable root (v = 1 is the unstable one). g is
                // convex increasing, so below the root h < 0 and between
                // the two roots h > 0 — bisection on the crossing works.
                let g = |v: f64| (-(1.0 - v) / ueff).exp();
                if V_MAX - g(V_MAX) <= 0.0 {
                    // ueff so high the stable root collides with 1.
                    return V_MAX;
                }
                let (mut lo, mut hi) = (0.0f64, V_MAX);
                for _ in 0..BISECT_STEPS {
                    let mid = 0.5 * (lo + hi);
                    if mid - g(mid) < 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            }
        }
    }

    /// Write amplification `1 / (1 − v(u))`: physical page writes per
    /// host page write, relocations included.
    pub fn write_amplification(&self, u: f64) -> f64 {
        1.0 / (1.0 - self.victim_valid_ratio(u))
    }

    /// Predicted block erases for `wc_pages` host page writes at
    /// utilization `u`: `Wc / (Np · (1 − v(u)))`.
    pub fn erase_count(&self, wc_pages: f64, u: f64) -> f64 {
        assert!(wc_pages >= 0.0, "write pages must be non-negative");
        wc_pages / (self.pages_per_block as f64 * (1.0 - self.victim_valid_ratio(u)))
    }

    /// Erases per host page write at utilization `u` — the device's GC
    /// rate, `WA(u) / Np`.
    pub fn gc_rate(&self, u: f64) -> f64 {
        self.write_amplification(u) / self.pages_per_block as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_inverts_the_forward_relation() {
        let m = MeanFieldModel::with_gc(32, 0.0, GcPolicy::Greedy);
        for v in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let u = greedy_u_of_v(v);
            assert!((m.victim_valid_ratio(u) - v).abs() < 1e-9, "v {v}");
        }
    }

    #[test]
    fn fifo_satisfies_its_fixed_point() {
        let m = MeanFieldModel::with_gc(32, 0.0, GcPolicy::Fifo);
        for u in [0.3, 0.5, 0.7, 0.9] {
            let v = m.victim_valid_ratio(u);
            let back = (-(1.0 - v) / u).exp();
            assert!((v - back).abs() < 1e-9, "u {u}: v {v} vs g(v) {back}");
        }
    }

    #[test]
    fn fifo_picks_the_stable_root_not_v_equals_one() {
        let m = MeanFieldModel::with_gc(32, 0.0, GcPolicy::Fifo);
        // At u = 0.5 the stable root sits near 0.2, well below 1.
        let v = m.victim_valid_ratio(0.5);
        assert!(v > 0.15 && v < 0.25, "v = {v}");
    }

    #[test]
    fn fifo_never_beats_greedy() {
        // Greedy picks the emptiest victim; FIFO takes whatever is
        // oldest. The mean-field curves must preserve that ordering.
        let greedy = MeanFieldModel::with_gc(32, 0.0, GcPolicy::Greedy);
        let fifo = MeanFieldModel::with_gc(32, 0.0, GcPolicy::Fifo);
        for u in [0.3, 0.5, 0.7, 0.9] {
            assert!(
                fifo.victim_valid_ratio(u) >= greedy.victim_valid_ratio(u) - 1e-12,
                "at u = {u}"
            );
        }
    }

    #[test]
    fn sigma_lowers_the_victim_ratio() {
        for gc in [GcPolicy::Greedy, GcPolicy::Fifo] {
            let uniform = MeanFieldModel::with_gc(32, 0.0, gc);
            let skewed = MeanFieldModel::with_gc(32, MODEL_SIGMA, gc);
            for u in [0.5, 0.7, 0.9] {
                assert!(
                    skewed.victim_valid_ratio(u) < uniform.victim_valid_ratio(u),
                    "{gc:?} at u = {u}"
                );
            }
        }
    }

    #[test]
    fn below_sigma_gc_is_free() {
        let m = MeanFieldModel::paper(32);
        assert_eq!(m.victim_valid_ratio(0.0), 0.0);
        assert_eq!(m.victim_valid_ratio(MODEL_SIGMA), 0.0);
        assert!((m.write_amplification(0.2) - 1.0).abs() < 1e-12);
        assert!((m.erase_count(3200.0, 0.2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn predictions_stay_finite_at_full_utilization() {
        for gc in [GcPolicy::Greedy, GcPolicy::Fifo] {
            let m = MeanFieldModel::with_gc(32, MODEL_SIGMA, gc);
            let e = m.erase_count(10_000.0, 1.0);
            assert!(e.is_finite() && e > 0.0, "{gc:?}: {e}");
        }
    }

    #[test]
    fn erase_count_is_linear_in_writes_and_monotone_in_u() {
        let m = MeanFieldModel::paper(32);
        assert!((m.erase_count(2e4, 0.6) / m.erase_count(1e4, 0.6) - 2.0).abs() < 1e-9);
        let mut prev = 0.0;
        for u in [0.3, 0.5, 0.7, 0.9, 0.99] {
            let e = m.erase_count(1e4, u);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn labels_round_trip_with_the_ftl() {
        assert_eq!(GcPolicy::from_label("greedy"), Some(GcPolicy::Greedy));
        assert_eq!(GcPolicy::from_label("fifo"), Some(GcPolicy::Fifo));
        assert_eq!(GcPolicy::from_label("cost_benefit"), Some(GcPolicy::Greedy));
        assert_eq!(GcPolicy::from_label("lru"), None);
        assert_eq!(GcPolicy::Fifo.label(), "fifo");
    }

    #[test]
    fn agrees_with_the_paper_twin_on_greedy() {
        // Not a code-sharing shortcut — a pinned value check that the
        // independent inversion lands on the same curve the EDM paper
        // fits: u = 0.5/ln 2 + 0 maps back to v = 0.5 under σ = 0.
        let m = MeanFieldModel::with_gc(32, 0.0, GcPolicy::Greedy);
        let u = 0.5 / std::f64::consts::LN_2;
        assert!((m.victim_valid_ratio(u) - 0.5).abs() < 1e-9);
    }
}

#![forbid(unsafe_code)]
//! # edm-model — analytic mean-field wear model
//!
//! A fast, closed-form counterpart to the event-driven simulator, in the
//! spirit of Li/Lee/Lui's stochastic modeling of large-scale SSD systems:
//! per-device erase counts, garbage-collection cost, and cluster-level
//! wear imbalance are predicted from a handful of aggregates (host write
//! volume, write rate, disk utilization, over-provisioning, GC policy)
//! instead of being measured by replaying every request.
//!
//! The crate serves two roles:
//!
//! * **Scale-out planner** — `O(1)` per-device evaluation lets a planner
//!   assess a migration plan against thousands of devices without the
//!   one-window projection loop (see `edm-core`'s `ModelAssessor`).
//! * **Standing differential oracle** — `edm-exp model-diff` runs the
//!   same parameters through simulator and model and gates CI on their
//!   divergence ([`divergence`]), so every future engine refactor is
//!   checked against an independent quantitative prediction.
//!
//! Independence is deliberate: this crate re-derives the victim-ratio
//! inversion from scratch and shares no code with `edm-core`'s
//! [`WearModel`](https://en.wikipedia.org/wiki/Flash_memory) twin — a bug
//! would have to be reinvented twice to escape the differential gate.
//!
//! See `DESIGN.md` §15 for the equations, assumptions, and where model
//! and simulator are *expected* to diverge.

pub mod cluster;
pub mod divergence;
pub mod meanfield;

pub use cluster::{ClusterPrediction, OsdLoad, RsdCurve, Trajectory};
pub use divergence::{ks_statistic, max_rel_error, normalize, rel_error};
pub use meanfield::{GcPolicy, MeanFieldModel, MODEL_SIGMA};

//! Divergence measures between a simulated and a predicted erase
//! distribution — the quantitative half of the differential gate.
//!
//! Both sides are per-OSD vectors indexed the same way, so the measures
//! here compare paired samples rather than unordered empirical CDFs: the
//! KS statistic is the maximum gap between the two cumulative share
//! curves walked in OSD order, which detects mass shifted between
//! devices even when totals agree.

/// Scales a non-negative vector to sum to 1. A zero (or empty) vector
/// comes back as all zeros rather than NaN so callers can gate on
/// degenerate runs explicitly.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / total).collect()
}

/// Kolmogorov–Smirnov statistic between two paired distributions: the
/// maximum absolute difference of their cumulative sums, walked in index
/// order. Inputs are normalized first, so absolute scale drops out and
/// only the *shape* of the wear distribution is compared.
pub fn ks_statistic(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "KS statistic needs paired per-OSD vectors"
    );
    let obs = normalize(observed);
    let pred = normalize(predicted);
    let mut cum_obs = 0.0;
    let mut cum_pred = 0.0;
    let mut worst: f64 = 0.0;
    for (o, p) in obs.iter().zip(pred.iter()) {
        cum_obs += o;
        cum_pred += p;
        worst = worst.max((cum_obs - cum_pred).abs());
    }
    worst
}

/// Relative error of a prediction against an observation, symmetric in
/// scale: `|obs − pred| / max(|obs|, floor)`. The floor guards the
/// all-idle case where an OSD saw no erases at all.
pub fn rel_error(observed: f64, predicted: f64, floor: f64) -> f64 {
    assert!(floor > 0.0, "relative-error floor must be positive");
    (observed - predicted).abs() / observed.abs().max(floor)
}

/// Largest paired relative error across two per-OSD vectors.
pub fn max_rel_error(observed: &[f64], predicted: &[f64], floor: f64) -> f64 {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "relative error needs paired per-OSD vectors"
    );
    observed
        .iter()
        .zip(predicted.iter())
        .map(|(&o, &p)| rel_error(o, p, floor))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sums_to_one() {
        let n = normalize(&[1.0, 3.0, 4.0]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[1] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn normalize_of_zeros_is_zeros() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
    }

    #[test]
    fn ks_zero_for_identical_shapes() {
        // Same shape at different scales: KS compares shares only.
        let a = [2.0, 4.0, 6.0];
        let b = [1.0, 2.0, 3.0];
        assert!(ks_statistic(&a, &b) < 1e-12);
    }

    #[test]
    fn ks_catches_shifted_mass() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
        let c = [0.6, 0.4];
        let d = [0.5, 0.5];
        assert!((ks_statistic(&c, &d) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rel_error_floors_small_observations() {
        assert!((rel_error(100.0, 90.0, 1.0) - 0.1).abs() < 1e-12);
        // Observed 0: error is measured against the floor, not infinity.
        assert!((rel_error(0.0, 0.5, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_rel_error_picks_the_worst_pair() {
        let obs = [100.0, 200.0, 50.0];
        let pred = [101.0, 150.0, 50.0];
        assert!((max_rel_error(&obs, &pred, 1.0) - 0.25).abs() < 1e-12);
    }
}

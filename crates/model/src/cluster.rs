//! Cluster-level predictions: per-OSD erase trajectories and the
//! closed-form RSD curve the EDM trigger would observe over time.
//!
//! With per-device loads held steady over a window, each device's erase
//! count grows affinely, `E_i(t) = b_i + r_i·t`, where `r_i` comes from
//! the mean-field model ([`MeanFieldModel`]). Mean and variance of an
//! affine family are quadratic in `t`, so the cluster RSD trajectory
//!
//! > RSD(t) = √(v0 + v1·t + v2·t²) / (m0 + m1·t)
//!
//! is closed-form: six scalars ([`RsdCurve`]) summarise the entire
//! future of the imbalance metric, replacing per-window projection.

use crate::divergence::normalize;
use crate::meanfield::MeanFieldModel;

/// One device's aggregate load, as seen by the planner or harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsdLoad {
    /// Erase count already accumulated (the trajectory's intercept).
    pub erases: f64,
    /// Host page writes per unit time (or, for end-of-run totals, the
    /// whole window's host page writes with the horizon set to 1).
    pub write_rate: f64,
    /// Live-data fraction of the device's physical capacity.
    pub utilization: f64,
}

/// Affine per-OSD erase trajectories under steady load.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Erase counts at `t = 0`.
    pub base: Vec<f64>,
    /// Predicted erases per unit time for each OSD.
    pub rate: Vec<f64>,
}

impl Trajectory {
    /// Builds trajectories by pushing each load through the mean-field
    /// model: `r_i = erase_count(write_rate_i, u_i)` per unit time.
    pub fn new(model: &MeanFieldModel, loads: &[OsdLoad]) -> Self {
        let base = loads.iter().map(|l| l.erases).collect();
        let rate = loads
            .iter()
            .map(|l| model.erase_count(l.write_rate, l.utilization.clamp(0.0, 1.0)))
            .collect();
        Trajectory { base, rate }
    }

    /// Per-OSD erase counts at time `t`.
    pub fn erases_at(&self, t: f64) -> Vec<f64> {
        assert!(t >= 0.0, "trajectory time must be non-negative");
        self.base
            .iter()
            .zip(self.rate.iter())
            .map(|(b, r)| b + r * t)
            .collect()
    }

    /// Normalized erase shares at time `t` (sums to 1 when any device
    /// has worn at all).
    pub fn distribution_at(&self, t: f64) -> Vec<f64> {
        normalize(&self.erases_at(t))
    }

    /// The `t → ∞` limit of [`Self::distribution_at`]: shares converge
    /// to the rate shares (intercepts wash out). Falls back to the
    /// base-erase shares when every device is idle.
    pub fn steady_distribution(&self) -> Vec<f64> {
        if self.rate.iter().sum::<f64>() > 0.0 {
            normalize(&self.rate)
        } else {
            normalize(&self.base)
        }
    }

    /// Collapses the trajectories into the six-scalar RSD curve.
    ///
    /// With `E_i(t) = b_i + r_i·t`:
    /// mean(t) = m0 + m1·t, var(t) = v0 + v1·t + v2·t²
    /// where `v0 = Var(b)`, `v1 = 2·Cov(b, r)`, `v2 = Var(r)`
    /// (population moments, matching `edm-core`'s trigger RSD).
    pub fn rsd(&self) -> RsdCurve {
        let n = self.base.len();
        assert!(n > 0, "RSD of an empty cluster is undefined");
        let nf = n as f64;
        let m0 = self.base.iter().sum::<f64>() / nf;
        let m1 = self.rate.iter().sum::<f64>() / nf;
        let mut v0 = 0.0;
        let mut v1 = 0.0;
        let mut v2 = 0.0;
        for (b, r) in self.base.iter().zip(self.rate.iter()) {
            let db = b - m0;
            let dr = r - m1;
            v0 += db * db;
            v1 += 2.0 * db * dr;
            v2 += dr * dr;
        }
        RsdCurve {
            n,
            m0,
            m1,
            v0: v0 / nf,
            v1: v1 / nf,
            v2: v2 / nf,
        }
    }
}

/// Closed-form RSD trajectory `√(v0 + v1·t + v2·t²) / (m0 + m1·t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsdCurve {
    /// Cluster size the moments were taken over.
    pub n: usize,
    /// Mean erase count at `t = 0`.
    pub m0: f64,
    /// Mean erase rate.
    pub m1: f64,
    /// Variance at `t = 0`.
    pub v0: f64,
    /// Twice the base/rate covariance (linear variance term).
    pub v1: f64,
    /// Variance of the rates (quadratic variance term).
    pub v2: f64,
}

impl RsdCurve {
    /// RSD at time `t`; 0 when the cluster has not worn at all yet.
    pub fn rsd_at(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "trajectory time must be non-negative");
        let mean = self.m0 + self.m1 * t;
        if mean <= 0.0 {
            return 0.0;
        }
        // The quadratic is a population variance by construction, but
        // the three accumulated terms can cancel to a tiny negative
        // under rounding — clamp before the square root.
        let var = (self.v0 + self.v1 * t + self.v2 * t * t).max(0.0);
        var.sqrt() / mean
    }

    /// The `t → ∞` limit, `√v2 / m1`: the imbalance the cluster settles
    /// into under these rates. An idle cluster keeps its current RSD.
    pub fn steady(&self) -> f64 {
        if self.m1 > 0.0 {
            self.v2.max(0.0).sqrt() / self.m1
        } else {
            self.rsd_at(0.0)
        }
    }
}

/// End-of-window cluster prediction — the `/model` endpoint payload and
/// the `model-diff` comparator. Built from per-OSD *total* host writes
/// over a window (horizon folded into `write_rate`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPrediction {
    /// Predicted erase count per OSD at the end of the window.
    pub erases: Vec<f64>,
    /// Predicted write amplification per OSD.
    pub write_amplification: Vec<f64>,
    /// Normalized predicted erase shares.
    pub shares: Vec<f64>,
    /// Cluster GC rate: predicted new erases per host page written.
    pub gc_rate: f64,
    /// Predicted end-of-window RSD of the erase counts.
    pub rsd: f64,
}

impl ClusterPrediction {
    pub fn predict(model: &MeanFieldModel, loads: &[OsdLoad]) -> Self {
        let traj = Trajectory::new(model, loads);
        let erases = traj.erases_at(1.0);
        let write_amplification = loads
            .iter()
            .map(|l| model.write_amplification(l.utilization.clamp(0.0, 1.0)))
            .collect();
        let shares = normalize(&erases);
        let host_pages: f64 = loads.iter().map(|l| l.write_rate).sum();
        let new_erases: f64 = traj.rate.iter().sum();
        let gc_rate = if host_pages > 0.0 {
            new_erases / host_pages
        } else {
            0.0
        };
        let rsd = if erases.is_empty() {
            0.0
        } else {
            traj.rsd().rsd_at(1.0)
        };
        ClusterPrediction {
            erases,
            write_amplification,
            shares,
            gc_rate,
            rsd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meanfield::GcPolicy;

    fn model() -> MeanFieldModel {
        MeanFieldModel::with_gc(32, 0.0, GcPolicy::Greedy)
    }

    fn loads() -> Vec<OsdLoad> {
        vec![
            OsdLoad {
                erases: 100.0,
                write_rate: 3200.0,
                utilization: 0.5,
            },
            OsdLoad {
                erases: 140.0,
                write_rate: 1600.0,
                utilization: 0.5,
            },
            OsdLoad {
                erases: 60.0,
                write_rate: 6400.0,
                utilization: 0.7,
            },
        ]
    }

    #[test]
    fn erases_grow_affinely() {
        let t = Trajectory::new(&model(), &loads());
        let e0 = t.erases_at(0.0);
        let e1 = t.erases_at(1.0);
        let e2 = t.erases_at(2.0);
        for i in 0..3 {
            assert!((e2[i] - e1[i] - (e1[i] - e0[i])).abs() < 1e-9);
            assert!(e1[i] > e0[i]);
        }
        assert_eq!(e0, vec![100.0, 140.0, 60.0]);
    }

    #[test]
    fn curve_matches_pointwise_rsd() {
        // The six-scalar curve must agree with computing mean/var from
        // the full erase vector at arbitrary times.
        let t = Trajectory::new(&model(), &loads());
        let curve = t.rsd();
        for time in [0.0, 0.5, 1.0, 7.0, 100.0] {
            let e = t.erases_at(time);
            let mean = e.iter().sum::<f64>() / e.len() as f64;
            let var = e.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / e.len() as f64;
            let direct = var.sqrt() / mean;
            assert!(
                (curve.rsd_at(time) - direct).abs() < 1e-9,
                "t = {time}: {} vs {direct}",
                curve.rsd_at(time)
            );
        }
    }

    #[test]
    fn steady_rsd_is_the_long_run_limit() {
        let t = Trajectory::new(&model(), &loads());
        let curve = t.rsd();
        assert!((curve.rsd_at(1e9) - curve.steady()).abs() < 1e-6);
    }

    #[test]
    fn equal_rates_drive_rsd_toward_zero() {
        // Perfect leveling: uneven intercepts, identical rates. RSD must
        // decay monotonically toward 0 as the shared rate dominates.
        let base = vec![10.0, 50.0, 90.0];
        let t = Trajectory {
            base,
            rate: vec![4.0, 4.0, 4.0],
        };
        let curve = t.rsd();
        let mut prev = f64::INFINITY;
        for time in [0.0, 1.0, 10.0, 100.0, 1000.0] {
            let r = curve.rsd_at(time);
            assert!(r <= prev + 1e-12, "t = {time}");
            prev = r;
        }
        assert!(curve.steady() < 1e-12);
    }

    #[test]
    fn distributions_sum_to_one() {
        let t = Trajectory::new(&model(), &loads());
        for time in [0.0, 1.0, 42.0] {
            let d = t.distribution_at(time);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        let s = t.steady_distribution();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steady_distribution_follows_rates() {
        let t = Trajectory::new(&model(), &loads());
        let s = t.steady_distribution();
        let far = t.distribution_at(1e12);
        for (a, b) in s.iter().zip(far.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn idle_cluster_keeps_its_rsd() {
        let t = Trajectory {
            base: vec![10.0, 20.0],
            rate: vec![0.0, 0.0],
        };
        let curve = t.rsd();
        assert!((curve.steady() - curve.rsd_at(0.0)).abs() < 1e-12);
        assert!(curve.rsd_at(0.0) > 0.0);
        assert_eq!(t.steady_distribution(), normalize(&[10.0, 20.0]));
    }

    #[test]
    fn unworn_cluster_reports_zero_rsd() {
        let t = Trajectory {
            base: vec![0.0, 0.0],
            rate: vec![0.0, 0.0],
        };
        assert_eq!(t.rsd().rsd_at(0.0), 0.0);
    }

    #[test]
    fn prediction_is_consistent_with_the_trajectory() {
        let m = model();
        let ls = loads();
        let p = ClusterPrediction::predict(&m, &ls);
        let t = Trajectory::new(&m, &ls);
        assert_eq!(p.erases, t.erases_at(1.0));
        assert!((p.rsd - t.rsd().rsd_at(1.0)).abs() < 1e-12);
        assert!((p.shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // GC rate must sit at WA/Np between the per-OSD extremes.
        let lo = p
            .write_amplification
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let hi = p.write_amplification.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(p.gc_rate >= lo / 32.0 - 1e-12 && p.gc_rate <= hi / 32.0 + 1e-12);
    }

    #[test]
    fn empty_cluster_prediction_is_all_zero() {
        let p = ClusterPrediction::predict(&model(), &[]);
        assert!(p.erases.is_empty());
        assert_eq!(p.gc_rate, 0.0);
        assert_eq!(p.rsd, 0.0);
    }
}

//! Property-based tests of the closed-form invariants the analytic model
//! promises its consumers: distributions are proper, the modeled leveling
//! drives RSD down monotonically, and erase counts respect the write
//! amplification identity.

use edm_model::{GcPolicy, MeanFieldModel, OsdLoad, Trajectory};
use proptest::prelude::*;

fn load_strategy() -> impl Strategy<Value = OsdLoad> {
    (0.0f64..5_000.0, 1.0f64..100_000.0, 0.05f64..0.98).prop_map(|(erases, write_rate, u)| {
        OsdLoad {
            erases,
            write_rate,
            utilization: u,
        }
    })
}

fn gc_strategy() -> impl Strategy<Value = GcPolicy> {
    prop_oneof![Just(GcPolicy::Greedy), Just(GcPolicy::Fifo)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The predicted erase distribution is a proper distribution at any
    /// point along the trajectory: every share in [0, 1], summing to 1.
    #[test]
    fn distribution_sums_to_one(
        loads in prop::collection::vec(load_strategy(), 1..24),
        gc in gc_strategy(),
        sigma in 0.0f64..0.4,
        t in 0.0f64..1_000.0,
    ) {
        let model = MeanFieldModel::with_gc(32, sigma, gc);
        let traj = Trajectory::new(&model, &loads);
        for dist in [traj.distribution_at(t), traj.steady_distribution()] {
            let total: f64 = dist.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
            for share in dist {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&share));
            }
        }
    }

    /// Modeled leveling — every device erasing at the same rate — can
    /// only shrink the cluster RSD as wear accumulates: the curve is
    /// monotone non-increasing in time.
    #[test]
    fn rsd_monotone_under_modeled_leveling(
        bases in prop::collection::vec(0.0f64..10_000.0, 2..24),
        shared_rate in 0.1f64..500.0,
        times in prop::collection::vec(0.0f64..100_000.0, 2..16),
    ) {
        let n = bases.len();
        let traj = Trajectory {
            base: bases,
            rate: vec![shared_rate; n],
        };
        let curve = traj.rsd();
        let mut sorted = times;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let mut prev = f64::INFINITY;
        for t in sorted {
            let r = curve.rsd_at(t);
            prop_assert!(r <= prev + 1e-9, "RSD rose to {r} from {prev} at t = {t}");
            prev = r;
        }
    }

    /// Write amplification identity: predicted erases times pages per
    /// block equal host writes times WA — GC relocations are accounted
    /// exactly once, for either GC policy.
    #[test]
    fn erase_mean_matches_wa_identity(
        wc in 0.0f64..1e9,
        u in 0.0f64..1.0,
        np in prop_oneof![Just(16u32), Just(32u32), Just(64u32), Just(256u32)],
        gc in gc_strategy(),
        sigma in 0.0f64..0.4,
    ) {
        let model = MeanFieldModel::with_gc(np, sigma, gc);
        let erases = model.erase_count(wc, u);
        let physical = wc * model.write_amplification(u);
        prop_assert!(
            (erases * np as f64 - physical).abs() <= 1e-9 * physical.max(1.0),
            "erases·Np = {} vs Wc·WA = {physical}",
            erases * np as f64
        );
        // And the identity survives aggregation: summing erases over a
        // cluster equals summing amplified writes over it.
        let mean_gc_rate = model.gc_rate(u);
        prop_assert!((mean_gc_rate * wc - erases).abs() <= 1e-9 * erases.max(1.0));
    }
}

//! Property-based tests of the EDM core: Algorithm 1 conservation and
//! improvement properties, wear-model monotonicity, temperature decay
//! bounds, and trigger set consistency.

use edm_core::{calculate_cdf, calculate_hdf, trigger, u_of_ur, Alg1Config, WearModel};
use proptest::prelude::*;

fn wc_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..200_000.0, n..=n)
}

fn u_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..0.95, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// HDF's ΔWc sums to ~0 (moved writes are conserved) and never
    /// exceeds a device's own writes.
    #[test]
    fn hdf_conserves_and_bounds_deltas(
        wc in wc_strategy(6),
        u in u_strategy(6),
    ) {
        let out = calculate_hdf(&wc, &u, &WearModel::paper(32), &Alg1Config::default());
        let total: f64 = out.delta.iter().sum();
        prop_assert!(total.abs() < 1e-6, "ΔWc sum {total}");
        for (i, d) in out.delta.iter().enumerate() {
            prop_assert!(-d <= wc[i] + 1e-6, "device {i} sheds more than it wrote");
        }
    }

    /// HDF never increases the spread of the model erase counts.
    #[test]
    fn hdf_never_worsens_imbalance(
        wc in wc_strategy(5),
        u in u_strategy(5),
    ) {
        let model = WearModel::paper(32);
        let before: Vec<f64> = wc.iter().zip(&u).map(|(&w, &uu)| model.erase_count(w, uu)).collect();
        let out = calculate_hdf(&wc, &u, &model, &Alg1Config::default());
        let spread = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            if mean == 0.0 { return 0.0; }
            (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64).sqrt() / mean
        };
        prop_assert!(
            spread(&out.final_erases) <= spread(&before) + 1e-9,
            "imbalance grew: {} -> {}",
            spread(&before),
            spread(&out.final_erases)
        );
    }

    /// CDF conserves utilization, respects the 50 % source floor, the
    /// per-round shed cap, and the destination ceiling.
    #[test]
    fn cdf_respects_all_guard_rails(
        wc in wc_strategy(6),
        u in u_strategy(6),
    ) {
        let cfg = Alg1Config::default();
        let out = calculate_cdf(&wc, &u, &WearModel::paper(32), &cfg);
        let total: f64 = out.delta.iter().sum();
        prop_assert!(total.abs() < 1e-6, "Δu sum {total}");
        for (i, d) in out.delta.iter().enumerate() {
            let after = u[i] + d;
            if *d < 0.0 {
                prop_assert!(after >= cfg.min_source_utilization - 1e-9,
                    "source {i} drained below floor: {after}");
                prop_assert!(-d <= cfg.max_shed_per_device + 1e-9,
                    "source {i} exceeded round cap: {d}");
            } else if *d > 0.0 {
                prop_assert!(after <= cfg.dest_util_cap + 1e-9,
                    "dest {i} overfilled: {after}");
            }
        }
    }

    /// The wear model is monotone: more writes or higher utilization never
    /// predict fewer erases.
    #[test]
    fn wear_model_monotone(
        w1 in 0.0f64..1e6, w2 in 0.0f64..1e6,
        ua in 0.0f64..1.0, ub in 0.0f64..1.0,
    ) {
        let m = WearModel::paper(32);
        let (wlo, whi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let (ulo, uhi) = if ua <= ub { (ua, ub) } else { (ub, ua) };
        prop_assert!(m.erase_count(wlo, ulo) <= m.erase_count(whi, ulo) + 1e-9);
        prop_assert!(m.erase_count(wlo, ulo) <= m.erase_count(wlo, uhi) + 1e-9);
    }

    /// F(u) inverts u_of_ur on the valid range for any σ.
    #[test]
    fn f_of_u_is_inverse(ur in 0.01f64..0.95, sigma in 0.0f64..0.5) {
        let m = WearModel { pages_per_block: 32, sigma };
        let u = u_of_ur(ur) + sigma;
        if u <= 1.0 {
            let back = m.f_of_u(u);
            prop_assert!((back - ur).abs() < 1e-6, "ur {ur} -> {back}");
        }
    }

    /// Trigger partition: sources and destinations never overlap, sources
    /// all exceed the λ margin, destinations all sit below the mean.
    #[test]
    fn trigger_partition_is_consistent(
        ecs in prop::collection::vec(0.0f64..10_000.0, 1..30),
        lambda in 0.0f64..1.0,
    ) {
        let d = trigger::evaluate(&ecs, lambda);
        for &s in &d.sources {
            prop_assert!(ecs[s] - d.mean > d.mean * lambda - 1e-9);
            prop_assert!(!d.destinations.contains(&s));
        }
        for &t in &d.destinations {
            prop_assert!(ecs[t] < d.mean);
        }
        if d.triggered {
            prop_assert!(d.rsd > lambda);
        }
    }
}

mod temperature_props {
    use edm_cluster::{AccessEvent, AccessKind, ObjectId};
    use edm_core::AccessTracker;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The incremental recurrence (Eq. 6) matches the closed form
        /// (Eq. 5) for arbitrary per-interval access counts.
        #[test]
        fn recurrence_matches_closed_form(counts in prop::collection::vec(0u32..20, 1..12)) {
            let interval = 1_000u64;
            let mut t = AccessTracker::new(interval);
            for (i, &a) in counts.iter().enumerate() {
                for _ in 0..a {
                    t.record(AccessEvent {
                        now_us: i as u64 * interval + 1,
                        object: ObjectId(7),
                        kind: AccessKind::Write,
                        pages: 1,
                    });
                }
            }
            let k = counts.len() as u64 - 1;
            let now = k * interval + 500;
            let measured = t.heat(ObjectId(7), now).write_temp;
            // Eq. 5: T_k = sum_i A_i / 2^(k - i), with i, k 0-based here.
            let expected: f64 = counts
                .iter()
                .enumerate()
                .map(|(i, &a)| a as f64 / 2f64.powi((k - i as u64) as i32))
                .sum();
            prop_assert!(
                (measured - expected).abs() < 1e-9,
                "measured {measured}, closed form {expected}"
            );
        }

        /// Temperatures are non-negative, finite, and monotone under
        /// additional accesses within one interval.
        #[test]
        fn temperature_sane_under_random_streams(
            events in prop::collection::vec((0u64..1_000_000, 0u64..50, any::<bool>(), 1u64..16), 1..300)
        ) {
            let mut t = AccessTracker::new(10_000);
            let mut sorted = events;
            sorted.sort_by_key(|e| e.0);
            for (now, obj, is_write, pages) in sorted {
                t.record(AccessEvent {
                    now_us: now,
                    object: ObjectId(obj),
                    kind: if is_write { AccessKind::Write } else { AccessKind::Read },
                    pages,
                });
                let h = t.heat(ObjectId(obj), now);
                prop_assert!(h.total_temp.is_finite() && h.total_temp >= 1.0);
                prop_assert!(h.write_temp <= h.total_temp);
            }
        }

        /// A bounded tracker never exceeds ~1.25× its cap.
        #[test]
        fn bounded_tracker_respects_cap(
            cap in 4usize..64,
            objects in prop::collection::vec(0u64..10_000, 1..500),
        ) {
            let mut t = AccessTracker::with_capacity(1_000, cap);
            for (i, obj) in objects.iter().enumerate() {
                t.record(AccessEvent {
                    now_us: i as u64,
                    object: ObjectId(*obj),
                    kind: AccessKind::Read,
                    pages: 1,
                });
                prop_assert!(t.tracked_objects() <= cap + cap / 4 + 1);
            }
        }
    }
}

//! Migration trigger condition (§III.B.2) — the wear monitor of Fig. 4.
//!
//! Every minute EDM computes each SSD's model erase count via Eq. 4.
//! Migration is desirable when there is *significant wear imbalance*:
//! `σₑ / Ēc (relative standard deviation) > λ`. Devices with
//! `Ecᵢ − Ēc > Ēc · λ` are migration sources; devices below the
//! cluster-wide average form the destination set.

use serde::{Deserialize, Serialize};

/// The trigger verdict and the source/destination partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerDecision {
    /// Relative standard deviation σₑ/Ēc of the per-device erase counts.
    pub rsd: f64,
    pub mean: f64,
    /// True when rsd > λ.
    pub triggered: bool,
    /// Indices of source devices (Ecᵢ − Ēc > Ēc·λ), descending by Ec.
    pub sources: Vec<usize>,
    /// Indices of destination devices (Ecᵢ < Ēc), ascending by Ec.
    pub destinations: Vec<usize>,
}

impl TriggerDecision {
    /// Internal-consistency check of a decision against the λ it was
    /// evaluated with — the fuzzer's trigger oracle. §III.B.2 fixes the
    /// semantics: `triggered ⇔ rsd > λ`, sources sit strictly above the
    /// λ-margin (so never below the mean), destinations strictly below
    /// the mean, and the two sets cannot overlap.
    pub fn validate(&self, lambda: f64) -> Result<(), String> {
        if !(self.rsd.is_finite() && self.rsd >= 0.0) {
            return Err(format!(
                "rsd {} is not a finite non-negative value",
                self.rsd
            ));
        }
        if !(self.mean.is_finite() && self.mean >= 0.0) {
            return Err(format!(
                "mean {} is not a finite non-negative value",
                self.mean
            ));
        }
        if self.triggered != (self.rsd > lambda) {
            return Err(format!(
                "triggered = {} but rsd {} vs lambda {lambda}",
                self.triggered, self.rsd
            ));
        }
        if let Some(overlap) = self.sources.iter().find(|s| self.destinations.contains(s)) {
            return Err(format!(
                "device {overlap} is both a migration source and a destination"
            ));
        }
        Ok(())
    }
}

/// [`evaluate`] with an observability sink: journals the evaluation as a
/// [`edm_obs::Event::TriggerEval`] (policy and metric label the caller)
/// before returning the identical decision. Recording is read-only.
pub fn evaluate_obs(
    erase_counts: &[f64],
    lambda: f64,
    policy: &'static str,
    metric: &'static str,
    obs: &mut dyn edm_obs::Recorder,
) -> TriggerDecision {
    let decision = evaluate(erase_counts, lambda);
    if obs.events_on() {
        obs.event(edm_obs::Event::TriggerEval {
            policy,
            metric,
            rsd: decision.rsd,
            lambda,
            mean: decision.mean,
            triggered: decision.triggered,
            sources: decision.sources.iter().map(|&i| i as u64).collect(),
            destinations: decision.destinations.iter().map(|&i| i as u64).collect(),
        });
    }
    decision
}

/// Evaluates the trigger over per-device (model) erase counts.
pub fn evaluate(erase_counts: &[f64], lambda: f64) -> TriggerDecision {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    assert!(
        erase_counts.iter().all(|e| e.is_finite() && *e >= 0.0),
        "erase counts must be finite and non-negative"
    );
    let n = erase_counts.len();
    if n == 0 {
        return TriggerDecision {
            rsd: 0.0,
            mean: 0.0,
            triggered: false,
            sources: vec![],
            destinations: vec![],
        };
    }
    let mean = erase_counts.iter().sum::<f64>() / n as f64;
    let rsd = if mean > 0.0 {
        let var = erase_counts
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    } else {
        0.0
    };
    let triggered = rsd > lambda;
    let mut sources: Vec<usize> = (0..n)
        .filter(|&i| erase_counts[i] - mean > mean * lambda)
        .collect();
    sources.sort_by(|&a, &b| {
        erase_counts[b]
            .partial_cmp(&erase_counts[a])
            // edm-audit: allow(panic.expect, "wear values are finite by construction")
            .expect("finite")
    });
    let mut destinations: Vec<usize> = (0..n).filter(|&i| erase_counts[i] < mean).collect();
    destinations.sort_by(|&a, &b| {
        erase_counts[a]
            .partial_cmp(&erase_counts[b])
            // edm-audit: allow(panic.expect, "wear values are finite by construction")
            .expect("finite")
    });
    TriggerDecision {
        rsd,
        mean,
        triggered,
        sources,
        destinations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cluster_does_not_trigger() {
        let d = evaluate(&[100.0, 101.0, 99.0, 100.0], 0.1);
        assert!(!d.triggered);
        assert!(d.rsd < 0.1);
        assert!(d.sources.is_empty());
        // Devices below the mean are still listed as potential dests.
        assert!(!d.destinations.is_empty());
    }

    #[test]
    fn imbalanced_cluster_triggers_and_partitions() {
        let ecs = [300.0, 100.0, 100.0, 100.0];
        let d = evaluate(&ecs, 0.1);
        assert!(d.triggered);
        assert_eq!(d.mean, 150.0);
        assert_eq!(d.sources, vec![0]);
        assert_eq!(d.destinations, vec![1, 2, 3]);
    }

    #[test]
    fn sources_sorted_descending_dests_ascending() {
        let ecs = [500.0, 400.0, 10.0, 50.0];
        let d = evaluate(&ecs, 0.1);
        assert_eq!(d.sources, vec![0, 1]);
        assert_eq!(d.destinations, vec![2, 3]);
    }

    #[test]
    fn source_needs_excess_beyond_lambda_margin() {
        // mean = 110, lambda 0.2 → threshold 132: only devices above it.
        let ecs = [120.0, 100.0, 110.0, 110.0];
        let d = evaluate(&ecs, 0.2);
        assert!(d.sources.is_empty());
        let d = evaluate(&[140.0, 100.0, 100.0, 100.0], 0.05);
        assert_eq!(d.sources, vec![0]);
    }

    #[test]
    fn zero_wear_cluster_is_quiet() {
        let d = evaluate(&[0.0, 0.0, 0.0], 0.1);
        assert!(!d.triggered);
        assert_eq!(d.rsd, 0.0);
        assert!(d.sources.is_empty());
        assert!(d.destinations.is_empty());
    }

    #[test]
    fn empty_input_is_quiet() {
        let d = evaluate(&[], 0.1);
        assert!(!d.triggered);
    }

    #[test]
    fn lambda_zero_triggers_on_any_variance() {
        let d = evaluate(&[100.0, 101.0], 0.0);
        assert!(d.triggered);
        let d = evaluate(&[100.0, 100.0], 0.0);
        assert!(!d.triggered);
    }
}

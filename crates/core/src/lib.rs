#![forbid(unsafe_code)]
//! # edm-core — the EDM endurance-aware data migration scheme
//!
//! From-scratch reproduction of *EDM: an Endurance-aware Data Migration
//! Scheme for Load Balancing in SSD Storage Clusters* (Ou, Shu, Lu, Yi,
//! Wang — IPDPS 2014). EDM balances load in an SSD cluster by balancing
//! *wear*, moving as little data as possible so the migration itself does
//! not burn flash lifetime:
//!
//! * [`wear_model`] — the SSD wear model of Eq. 1–4: erase count as a
//!   function of host write pages `Wc` and disk utilization `u`, with the
//!   skew-corrected uᵣ relation (σ = 0.28, Fig. 3);
//! * [`temperature`] — object temperature (Definition 1, Eq. 5/6) and the
//!   access tracker of the EDM architecture (Fig. 4);
//! * [`trigger`] — the wear-imbalance trigger: relative standard deviation
//!   of per-device model erase counts vs. λ (§III.B.2);
//! * [`alg1`] — Algorithm 1: iterative max/min pairing that computes how
//!   many page writes (HDF) or how much utilization (CDF) each device
//!   should shed or absorb;
//! * [`policy`] — the [`EdmHdf`] (Hot-Data-First) and [`EdmCdf`]
//!   (Cold-Data-First) policies plus the [`Cmt`] conventional-migration
//!   baseline, all implementing [`edm_cluster::Migrator`];
//! * [`plan`] — distributing selected objects over destinations "in
//!   proportion to ΔWc" under free-space budgets;
//! * [`config`] — the paper's tunables (λ, σ, 500 iterations, ε = 0.001,
//!   the 50 % CDF floor).
//!
//! The remapping-table manager and data mover of Fig. 4 live in
//! `edm-cluster` (`remap`, `sim`), where the moved objects are actually
//! tracked and shuffled.
//!
//! ```
//! use edm_core::wear_model::WearModel;
//!
//! // Eq. 4: a device with 100k page writes at 70 % utilization.
//! let model = WearModel::paper(32);
//! let erases = model.erase_count(100_000.0, 0.70);
//! assert!(erases > 100_000.0 / 32.0); // GC overhead makes it worse than ideal
//! ```

pub mod alg1;
pub mod config;
pub mod evaluate;
pub mod lifetime;
pub mod plan;
pub mod policy;
pub mod temperature;
pub mod trigger;
pub mod wear_model;

pub use alg1::{calculate_cdf, calculate_hdf, Alg1Config, MovementAmounts};
pub use config::{Assessor, EdmConfig};
pub use evaluate::{assess_plan, trim_to_improvement_model, PlanAssessment};
pub use lifetime::{DeviceLifetime, EnduranceSpec, Staggering};
pub use policy::{Cmt, CmtConfig, EdmCdf, EdmHdf};
pub use temperature::{AccessTracker, ObjectHeat};
pub use trigger::TriggerDecision;
pub use wear_model::{u_of_ur, WearModel, PAPER_SIGMA};

use edm_cluster::{Migrator, NoMigration};

/// All four systems of the evaluation (§V): Baseline, CMT, EDM-HDF,
/// EDM-CDF — in the paper's plotting order.
pub const POLICY_NAMES: [&str; 4] = ["Baseline", "CMT", "EDM-HDF", "EDM-CDF"];

/// Instantiates a policy by its evaluation name.
///
/// # Panics
/// Panics on an unknown name; see [`POLICY_NAMES`].
pub fn make_policy(name: &str) -> Box<dyn Migrator> {
    match name {
        "Baseline" => Box::new(NoMigration),
        "CMT" => Box::new(Cmt::default()),
        "EDM-HDF" => Box::new(EdmHdf::default()),
        "EDM-CDF" => Box::new(EdmCdf::default()),
        // edm-audit: allow(panic.panic, "CLI-facing parse: rejecting an unknown policy name loudly is the contract")
        other => panic!("unknown policy {other:?}; see POLICY_NAMES"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_policy_covers_all_names() {
        for name in POLICY_NAMES {
            assert_eq!(make_policy(name).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        make_policy("nope");
    }
}

//! Flash lifetime projection (§III.D).
//!
//! Each NAND cell endures a limited number of program/erase cycles; the
//! paper's reliability discussion turns on *when* SSDs reach that limit:
//! perfectly balanced wear means the whole cluster wears out together
//! (the Diff-RAID problem), while EDM's uneven groups stagger group
//! worn-out times. This module projects, from measured erase counts over
//! a measurement period, when each device exhausts its endurance, and
//! quantifies the staggering margin between groups.

use serde::{Deserialize, Serialize};

/// Endurance parameters of one SSD model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceSpec {
    /// Rated program/erase cycles per block (MLC-era NAND: ~3 000).
    pub pe_cycles: u64,
    /// Number of erase blocks on the device.
    pub blocks: u64,
}

impl EnduranceSpec {
    /// Total block erases the device can absorb before rated wear-out,
    /// assuming device-internal wear leveling spreads erases evenly.
    pub fn total_erase_budget(&self) -> u64 {
        self.pe_cycles * self.blocks
    }
}

/// Lifetime projection of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceLifetime {
    pub device: u32,
    /// Erases consumed during the measurement period.
    pub erases_in_period: u64,
    /// Projected periods until rated wear-out (∞ if no wear observed).
    pub periods_to_wearout: f64,
}

/// Projects lifetimes for a set of devices from their per-period erase
/// counts.
pub fn project(
    spec: &EnduranceSpec,
    erases_in_period: impl IntoIterator<Item = u64>,
    already_consumed: impl IntoIterator<Item = u64>,
) -> Vec<DeviceLifetime> {
    let consumed: Vec<u64> = already_consumed.into_iter().collect();
    erases_in_period
        .into_iter()
        .enumerate()
        .map(|(i, e)| {
            let used = consumed.get(i).copied().unwrap_or(0);
            let remaining = spec.total_erase_budget().saturating_sub(used);
            DeviceLifetime {
                device: i as u32,
                erases_in_period: e,
                periods_to_wearout: if e == 0 {
                    f64::INFINITY
                } else {
                    remaining as f64 / e as f64
                },
            }
        })
        .collect()
}

/// Staggering analysis: how far apart in time device wear-outs land.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Staggering {
    /// Projected wear-out times, ascending (periods).
    pub wearout_order: Vec<f64>,
    /// Smallest gap between consecutive wear-outs (periods).
    pub min_gap: f64,
    /// Time from first to last wear-out (periods).
    pub total_span: f64,
}

/// Computes the wear-out staggering of a set of projections. At least two
/// finite projections are required for a meaningful gap; otherwise gaps
/// are reported as infinite.
pub fn staggering(lifetimes: &[DeviceLifetime]) -> Staggering {
    let mut order: Vec<f64> = lifetimes
        .iter()
        .map(|l| l.periods_to_wearout)
        .filter(|p| p.is_finite())
        .collect();
    // edm-audit: allow(panic.expect, "erase counts come from wear stats and are always finite")
    order.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min_gap = order
        .windows(2)
        // edm-audit: allow(panic.slice_index, "windows(2) yields exactly two elements per window")
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min);
    let total_span = match (order.first(), order.last()) {
        (Some(first), Some(last)) if order.len() > 1 => last - first,
        _ => f64::INFINITY,
    };
    Staggering {
        wearout_order: order,
        min_gap,
        total_span,
    }
}

/// The §III.D risk metric: the probability window for simultaneous
/// failures is governed by how many devices of the *same RAID-relevant
/// set* wear out within `window` periods of each other. Returns the
/// largest simultaneous cohort.
pub fn max_simultaneous_wearouts(lifetimes: &[DeviceLifetime], window: f64) -> usize {
    let mut order: Vec<f64> = lifetimes
        .iter()
        .map(|l| l.periods_to_wearout)
        .filter(|p| p.is_finite())
        .collect();
    // edm-audit: allow(panic.expect, "erase counts come from wear stats and are always finite")
    order.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut best = usize::from(!order.is_empty());
    for i in 0..order.len() {
        let cohort = order[i..]
            .iter()
            .take_while(|&&t| t - order[i] <= window)
            .count();
        best = best.max(cohort);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> EnduranceSpec {
        EnduranceSpec {
            pe_cycles: 3_000,
            blocks: 1_000,
        }
    }

    #[test]
    fn budget_is_cycles_times_blocks() {
        assert_eq!(spec().total_erase_budget(), 3_000_000);
    }

    #[test]
    fn projection_divides_remaining_budget() {
        let l = project(&spec(), [1_000, 2_000, 0], [0, 1_000_000, 0]);
        assert_eq!(l.len(), 3);
        assert!((l[0].periods_to_wearout - 3_000.0).abs() < 1e-9);
        assert!((l[1].periods_to_wearout - 1_000.0).abs() < 1e-9);
        assert!(l[2].periods_to_wearout.is_infinite());
    }

    #[test]
    fn balanced_wear_means_simultaneous_wearout() {
        // The Diff-RAID hazard: perfectly balanced wear ⇒ everything dies
        // together.
        let l = project(&spec(), [1_000, 1_000, 1_000, 1_000], []);
        let s = staggering(&l);
        assert_eq!(s.min_gap, 0.0);
        assert_eq!(s.total_span, 0.0);
        assert_eq!(max_simultaneous_wearouts(&l, 1.0), 4);
    }

    #[test]
    fn differentiated_wear_staggers_wearout() {
        // §III.D: groups with different wear speeds die at different
        // times.
        let l = project(&spec(), [1_500, 1_200, 1_000, 800], []);
        let s = staggering(&l);
        assert!(s.min_gap > 100.0, "gap {}", s.min_gap);
        assert_eq!(max_simultaneous_wearouts(&l, 100.0), 1);
        assert!(s.total_span > 1_000.0);
    }

    #[test]
    fn staggering_of_single_device_is_infinite() {
        let l = project(&spec(), [100], []);
        let s = staggering(&l);
        assert!(s.min_gap.is_infinite());
        assert!(s.total_span.is_infinite());
        assert_eq!(max_simultaneous_wearouts(&l, 10.0), 1);
    }

    #[test]
    fn consumed_budget_shortens_life() {
        let fresh = project(&spec(), [1_000], [0]);
        let worn = project(&spec(), [1_000], [2_900_000]);
        assert!(worn[0].periods_to_wearout < fresh[0].periods_to_wearout / 10.0);
    }

    #[test]
    fn overconsumed_budget_saturates_at_zero() {
        let l = project(&spec(), [1_000], [9_999_999]);
        assert_eq!(l[0].periods_to_wearout, 0.0);
    }
}

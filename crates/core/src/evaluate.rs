//! Plan-quality evaluation: what a migration plan is *predicted* to do to
//! the cluster's wear balance, before any data moves.
//!
//! Algorithm 1 computes per-device deltas; the policies then approximate
//! those deltas with whole objects. This module closes the loop by
//! projecting the wear model one temperature window ahead: each device's
//! erase estimate is `Ec(wc + rate, u)`, where `rate` is the window write
//! pages of the objects resident on it (last window as the predictor for
//! the next, the same estimate the policies plan with). The plan shifts
//! each move's rate and byte footprint to its destination and the
//! projection is re-evaluated — so tests (and operators) can check that a
//! plan actually improves the imbalance it was asked to fix, and by how
//! much. Erases already incurred (`wc`) stay where they physically
//! happened on both sides of the comparison; only *future* writes move.
//!
//! The one-time write cost of copying the data itself is deliberately
//! excluded: it is a transient the policies already budget separately,
//! and the fuzz battery accounts for it in the erase totals oracle.
//! Including it here would veto every cold-data (CDF) plan, whose payoff
//! accrues over many future windows.

use std::collections::HashMap;

use edm_cluster::{ClusterView, MoveAction, ObjectId};
use serde::{Deserialize, Serialize};

use crate::temperature::AccessTracker;
use crate::trigger;
use crate::wear_model::WearModel;

/// Predicted effect of a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanAssessment {
    /// Projected model erase counts per OSD one window ahead, without the
    /// plan: `Ec(wc + resident write rate, u)`.
    pub erases_before: Vec<f64>,
    /// The same projection with the plan applied (each move's write rate
    /// and byte footprint shifted to its destination).
    pub erases_after: Vec<f64>,
    /// Relative standard deviation before / after.
    pub rsd_before: f64,
    pub rsd_after: f64,
    /// Total bytes the plan transfers.
    pub moved_bytes: u64,
    /// Total window write pages the plan shifts between devices.
    pub moved_write_pages: u64,
}

impl PlanAssessment {
    /// True when the predicted imbalance does not grow.
    pub fn is_improvement(&self) -> bool {
        self.rsd_after <= self.rsd_before + 1e-9
    }

    /// Predicted relative reduction of the wear imbalance (0 when the
    /// cluster was already balanced).
    pub fn rsd_reduction(&self) -> f64 {
        if self.rsd_before == 0.0 {
            0.0
        } else {
            1.0 - self.rsd_after / self.rsd_before
        }
    }
}

/// [`assess_plan`] with an observability sink: journals the prediction as
/// a [`edm_obs::Event::PlanAssessment`] before returning it unchanged.
pub fn assess_plan_obs(
    view: &ClusterView,
    plan: &[MoveAction],
    tracker: &AccessTracker,
    model: &WearModel,
    obs: &mut dyn edm_obs::Recorder,
) -> PlanAssessment {
    let assessment = assess_plan(view, plan, tracker, model);
    if obs.events_on() {
        obs.event(edm_obs::Event::PlanAssessment {
            rsd_before: assessment.rsd_before,
            rsd_after: assessment.rsd_after,
            moved_bytes: assessment.moved_bytes,
            moved_write_pages: assessment.moved_write_pages,
        });
    }
    assessment
}

/// Drops trailing moves until the plan's predicted RSD no longer grows
/// (§III.B.2: EDM migrates only towards balance).
///
/// The policies approximate Algorithm 1's continuous deltas with whole
/// objects, and the last object selected against a demand can overshoot
/// it — on a mildly imbalanced cluster a single write-hot object can
/// flip the imbalance's sign with a larger magnitude, making the planned
/// state *worse* than doing nothing. Trimming from the tail removes the
/// most marginal selections first; the empty plan trivially qualifies.
pub fn trim_to_improvement(
    view: &ClusterView,
    mut plan: Vec<MoveAction>,
    tracker: &AccessTracker,
    model: &WearModel,
) -> Vec<MoveAction> {
    while !plan.is_empty() {
        if assess_plan(view, &plan, tracker, model).is_improvement() {
            break;
        }
        plan.pop();
    }
    plan
}

/// Per-device projection inputs shared by the reference assessment and
/// the `edm-model` fast path: write counts, capacities, live bytes, next
/// window write rates, and each object's (size, write pages) footprint.
struct ProjectionInputs {
    wc: Vec<f64>,
    capacity: Vec<f64>,
    live_bytes: Vec<f64>,
    rate: Vec<f64>,
    footprint: HashMap<ObjectId, (u64, u64)>,
}

fn projection_inputs(view: &ClusterView, tracker: &AccessTracker) -> ProjectionInputs {
    let n = view.osds.len();
    let wc = view.osds.iter().map(|o| o.wc_pages as f64).collect();
    let capacity = view.osds.iter().map(|o| o.capacity_bytes as f64).collect();
    let live_bytes = view
        .osds
        .iter()
        .map(|o| o.utilization * o.capacity_bytes as f64)
        .collect();
    // Per-device write rate for the next window, and each object's
    // (size, window write pages) footprint for applying the moves.
    let mut rate = vec![0.0f64; n];
    let mut footprint: HashMap<ObjectId, (u64, u64)> = HashMap::new();
    for o in &view.objects {
        let pages = tracker.heat(o.object, view.now_us).window_write_pages;
        rate[o.osd.0 as usize] += pages as f64;
        footprint.insert(o.object, (o.size_bytes, pages));
    }
    ProjectionInputs {
        wc,
        capacity,
        live_bytes,
        rate,
        footprint,
    }
}

/// Drop-in replacement for [`trim_to_improvement`] backed by the
/// closed-form mean-field model (`edm-model`), selected with
/// [`crate::config::Assessor::Model`].
///
/// The reference loop re-projects every device for every candidate plan
/// length — O(plan² + plan·cluster). Here each device's projected erase
/// count comes from the analytic model once, running sums of the first
/// two moments are maintained incrementally, and undoing a trailing move
/// touches exactly two devices — O(1) per trimmed move after the O(n)
/// setup.
///
/// The published plan is still vetted by the reference projection before
/// being returned: if the two engines ever disagree on "does this plan
/// improve balance", the reference wins and the reference trim runs —
/// so this function can never publish a plan [`trim_to_improvement`]
/// would reject, regardless of how the analytic curves drift from the
/// projection's.
pub fn trim_to_improvement_model(
    view: &ClusterView,
    plan: Vec<MoveAction>,
    tracker: &AccessTracker,
    model: &WearModel,
) -> Vec<MoveAction> {
    if plan.is_empty() {
        return plan;
    }
    let n = view.osds.len();
    let mf = edm_model::MeanFieldModel::with_gc(
        model.pages_per_block,
        model.sigma,
        edm_model::GcPolicy::Greedy,
    );
    let mut inp = projection_inputs(view, tracker);

    let project_one = |inp: &ProjectionInputs, i: usize| -> f64 {
        mf.erase_count(
            inp.wc[i] + inp.rate[i].max(0.0),
            (inp.live_bytes[i] / inp.capacity[i]).clamp(0.0, 1.0),
        )
    };
    let rsd_of = |sum: f64, sumsq: f64| -> f64 {
        let mean = sum / n as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        (sumsq / n as f64 - mean * mean).max(0.0).sqrt() / mean
    };

    let erases_before: Vec<f64> = (0..n).map(|i| project_one(&inp, i)).collect();
    let rsd_before = rsd_of(
        erases_before.iter().sum(),
        erases_before.iter().map(|e| e * e).sum(),
    );

    // Apply the whole plan, then project once and walk backwards.
    for m in &plan {
        let (size, pages) = inp.footprint.get(&m.object).copied().unwrap_or((0, 0));
        let (s, d) = (m.source.0 as usize, m.dest.0 as usize);
        inp.rate[s] -= pages as f64;
        inp.rate[d] += pages as f64;
        inp.live_bytes[s] -= size as f64;
        inp.live_bytes[d] += size as f64;
    }
    let mut erases: Vec<f64> = (0..n).map(|i| project_one(&inp, i)).collect();
    let mut sum: f64 = erases.iter().sum();
    let mut sumsq: f64 = erases.iter().map(|e| e * e).sum();

    let mut trimmed = plan;
    while rsd_of(sum, sumsq) > rsd_before + 1e-9 {
        let Some(m) = trimmed.pop() else {
            break;
        };
        // Undo the move: only its two endpoints re-project.
        let (size, pages) = inp.footprint.get(&m.object).copied().unwrap_or((0, 0));
        let (s, d) = (m.source.0 as usize, m.dest.0 as usize);
        inp.rate[s] += pages as f64;
        inp.rate[d] -= pages as f64;
        inp.live_bytes[s] += size as f64;
        inp.live_bytes[d] -= size as f64;
        for i in [s, d] {
            let fresh = project_one(&inp, i);
            sum += fresh - erases[i];
            sumsq += fresh * fresh - erases[i] * erases[i];
            erases[i] = fresh;
        }
    }

    // Reference guardrail: the journaled invariant (`rsd_after <=
    // rsd_before + 1e-9` under the projection) must hold for whatever we
    // publish, so the reference engine has the last word.
    if assess_plan(view, &trimmed, tracker, model).is_improvement() {
        trimmed
    } else {
        trim_to_improvement(view, trimmed, tracker, model)
    }
}

/// Assesses `plan` against `view`, using `tracker` for per-object write
/// footprints (the same estimates the policies plan with).
pub fn assess_plan(
    view: &ClusterView,
    plan: &[MoveAction],
    tracker: &AccessTracker,
    model: &WearModel,
) -> PlanAssessment {
    let n = view.osds.len();
    let ProjectionInputs {
        wc,
        capacity,
        mut live_bytes,
        mut rate,
        footprint,
    } = projection_inputs(view, tracker);

    let project = |rate: &[f64], live: &[f64]| -> Vec<f64> {
        (0..n)
            .map(|i| {
                model.erase_count(
                    wc[i] + rate[i].max(0.0),
                    (live[i] / capacity[i]).clamp(0.0, 1.0),
                )
            })
            .collect()
    };
    let erases_before = project(&rate, &live_bytes);

    let mut moved_bytes = 0u64;
    let mut moved_write_pages = 0u64;
    for m in plan {
        let (size, pages) = footprint.get(&m.object).copied().unwrap_or((0, 0));
        moved_bytes += size;
        moved_write_pages += pages;
        let (s, d) = (m.source.0 as usize, m.dest.0 as usize);
        rate[s] -= pages as f64;
        rate[d] += pages as f64;
        live_bytes[s] -= size as f64;
        live_bytes[d] += size as f64;
    }

    let erases_after = project(&rate, &live_bytes);

    PlanAssessment {
        rsd_before: trigger::evaluate(&erases_before, 0.0).rsd,
        rsd_after: trigger::evaluate(&erases_after, 0.0).rsd,
        erases_before,
        erases_after,
        moved_bytes,
        moved_write_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::{AccessEvent, AccessKind, GroupId, ObjectView, OsdId, OsdView};

    fn view() -> ClusterView {
        ClusterView {
            now_us: 1_000,
            page_size: 4096,
            pages_per_block: 32,
            osds: (0..4)
                .map(|i| OsdView {
                    osd: OsdId(i),
                    group: GroupId(i % 2),
                    wc_pages: if i == 0 { 80_000 } else { 10_000 },
                    utilization: 0.6,
                    measured_erases: 0,
                    ewma_latency_us: 0.0,
                    free_bytes: 1 << 29,
                    capacity_bytes: 1 << 30,
                })
                .collect(),
            objects: vec![
                ObjectView {
                    object: ObjectId(1),
                    osd: OsdId(0),
                    size_bytes: 4 << 20,
                    remapped: false,
                },
                ObjectView {
                    object: ObjectId(2),
                    osd: OsdId(0),
                    size_bytes: 1 << 20,
                    remapped: false,
                },
            ],
        }
    }

    fn hot_tracker() -> AccessTracker {
        let mut t = AccessTracker::new(60_000_000);
        for _ in 0..100 {
            t.record(AccessEvent {
                now_us: 500,
                object: ObjectId(1),
                kind: AccessKind::Write,
                pages: 350,
            });
        }
        t
    }

    #[test]
    fn moving_the_hot_object_improves_balance() {
        let v = view();
        let t = hot_tracker();
        let model = WearModel::paper(32);
        let plan = vec![MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(2),
        }];
        let a = assess_plan(&v, &plan, &t, &model);
        assert!(a.rsd_before > 0.5, "initial imbalance: {}", a.rsd_before);
        assert!(a.is_improvement(), "{a:?}");
        assert!(a.rsd_reduction() > 0.3, "{a:?}");
        assert_eq!(a.moved_bytes, 4 << 20);
        assert_eq!(a.moved_write_pages, 35_000);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let v = view();
        let t = hot_tracker();
        let a = assess_plan(&v, &[], &t, &WearModel::paper(32));
        assert_eq!(a.erases_before, a.erases_after);
        assert_eq!(a.moved_bytes, 0);
        assert!((a.rsd_reduction()).abs() < 1e-12);
    }

    #[test]
    fn moving_a_cold_object_to_the_hot_device_hurts() {
        let v = view();
        let mut t = AccessTracker::new(60_000_000);
        t.record(AccessEvent {
            now_us: 500,
            object: ObjectId(2),
            kind: AccessKind::Write,
            pages: 10,
        });
        // Shifting extra writes ONTO the already-hottest device.
        let plan = vec![MoveAction {
            object: ObjectId(2),
            source: OsdId(0),
            dest: OsdId(1),
        }];
        // Object 2 moves off osd0 — that slightly helps; construct the
        // reverse by assessing a plan targeting the hot device instead:
        let v2 = {
            let mut v2 = v.clone();
            v2.objects[1].osd = OsdId(1);
            v2
        };
        let plan_bad = vec![MoveAction {
            object: ObjectId(2),
            source: OsdId(1),
            dest: OsdId(0),
        }];
        let good = assess_plan(&v, &plan, &t, &WearModel::paper(32));
        let bad = assess_plan(&v2, &plan_bad, &t, &WearModel::paper(32));
        assert!(good.rsd_after <= good.rsd_before);
        assert!(bad.rsd_after >= bad.rsd_before);
    }

    #[test]
    fn trim_drops_overshooting_tail_moves() {
        // A mildly imbalanced cluster where moving object 1's write rate
        // off the busiest device helps slightly, but the trailing move of
        // a huge cold object drives the destination's utilization towards
        // full — the projection's GC amplification makes it the new
        // outlier and the pair assesses worse than doing nothing.
        let mut v = view();
        for (osd, wc) in v.osds.iter_mut().zip([30_000u64, 28_000, 22_000, 28_000]) {
            osd.wc_pages = wc;
        }
        v.objects[1].size_bytes = 380 << 20; // cold, ~37% of the device
        let model = WearModel::paper(32);
        let mut t = AccessTracker::new(60_000_000);
        for _ in 0..40 {
            t.record(AccessEvent {
                now_us: 500,
                object: ObjectId(1),
                kind: AccessKind::Write,
                pages: 100,
            });
        }
        let good = MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(2),
        };
        let overshoot = MoveAction {
            object: ObjectId(2),
            source: OsdId(0),
            dest: OsdId(2),
        };
        let pair = assess_plan(&v, &[good, overshoot], &t, &model);
        assert!(
            !pair.is_improvement(),
            "test premise: pair overshoots {pair:?}"
        );
        let trimmed = trim_to_improvement(&v, vec![good, overshoot], &t, &model);
        assert_eq!(trimmed, vec![good]);
        // An already-improving plan passes through untouched...
        let trimmed = trim_to_improvement(&v, vec![good], &t, &model);
        assert_eq!(trimmed, vec![good]);
        // ...and the empty plan is a fixed point.
        assert!(trim_to_improvement(&v, Vec::new(), &t, &model).is_empty());
    }

    #[test]
    fn model_trim_agrees_with_the_reference() {
        // Same fixture as trim_drops_overshooting_tail_moves: the fast
        // path must keep the good move, drop the overshooting tail, and
        // never publish anything the projection reference rejects.
        let mut v = view();
        for (osd, wc) in v.osds.iter_mut().zip([30_000u64, 28_000, 22_000, 28_000]) {
            osd.wc_pages = wc;
        }
        v.objects[1].size_bytes = 380 << 20;
        let model = WearModel::paper(32);
        let mut t = AccessTracker::new(60_000_000);
        for _ in 0..40 {
            t.record(AccessEvent {
                now_us: 500,
                object: ObjectId(1),
                kind: AccessKind::Write,
                pages: 100,
            });
        }
        let good = MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(2),
        };
        let overshoot = MoveAction {
            object: ObjectId(2),
            source: OsdId(0),
            dest: OsdId(2),
        };
        for plan in [
            vec![good, overshoot],
            vec![good],
            vec![overshoot],
            Vec::new(),
        ] {
            let fast = trim_to_improvement_model(&v, plan.clone(), &t, &model);
            let reference = trim_to_improvement(&v, plan, &t, &model);
            assert_eq!(fast, reference);
            assert!(assess_plan(&v, &fast, &t, &model).is_improvement());
        }
    }

    /// The EDM policies' plans must always assess as improvements on the
    /// views they were planned against.
    #[test]
    fn hdf_plans_assess_as_improvements() {
        use crate::policy::EdmHdf;
        use edm_cluster::Migrator;
        let mut v = view();
        // Give the hot device some movable objects with real heat.
        v.objects = (0..8)
            .map(|i| ObjectView {
                object: ObjectId(i),
                osd: OsdId((i % 2) as u32 * 2), // osds 0 and 2 (same group)
                size_bytes: 1 << 20,
                remapped: false,
            })
            .collect();
        let mut p = EdmHdf::default();
        for i in 0..8u64 {
            let writes = if i % 2 == 0 { 200 } else { 2 };
            for _ in 0..writes {
                p.on_access(AccessEvent {
                    now_us: 500,
                    object: ObjectId(i),
                    kind: AccessKind::Write,
                    pages: 50,
                });
            }
        }
        let plan = p.plan(&v);
        assert!(!plan.is_empty());
        let a = assess_plan(&v, &plan, p.tracker(), &WearModel::paper(32));
        assert!(a.is_improvement(), "{a:?}");
    }
}

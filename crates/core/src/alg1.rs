//! Algorithm 1 (§III.B.5): calculate the amount of data movement on each
//! source or destination device.
//!
//! A well-balanced wear is approached by iteratively balancing the pair of
//! devices with maximum and minimum model erase count (Eq. 4). Each outer
//! iteration sweeps ε upward in steps of 0.001 until shifting
//! `Δw = Wc_max · ε` pages (HDF) — or `Δu = u_max · ε` utilization (CDF) —
//! from the max device to the min device equalizes their erase estimates
//! (`Δe ≤ 0`), then commits that shift. The paper runs 500 iterations.
//!
//! The HDF variant holds the utilization array fixed ("the impact of
//! migration on disk utilization is ignored for HDF"); the CDF variant
//! symmetrically holds the write-page array fixed (§III.B.5).

use serde::{Deserialize, Serialize};

use crate::wear_model::WearModel;

/// Tunables of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alg1Config {
    /// Outer iteration count ("total iteration step is set to 500").
    pub iterations: usize,
    /// ε grid step of the inner sweep (0.001 in the paper).
    pub eps_step: f64,
    /// CDF only: never raise a destination's utilization beyond this.
    pub dest_util_cap: f64,
    /// CDF only: never lower a source below 50 % utilization — below the
    /// knee of Fig. 3, "further reduction of the disk utilization has
    /// almost no effect on the wear frequency" (§III.B.5).
    pub min_source_utilization: f64,
    /// Stop iterating once the relative standard deviation of the model
    /// erase counts falls below this — the same "significant wear
    /// imbalance" criterion as the trigger (§III.B.2); further shuffling
    /// would move data for no wear benefit.
    pub stop_rsd: f64,
    /// CDF only: utilization a single migration round may shed from one
    /// device. When write intensities differ strongly, equalizing Eq. 4
    /// through utilization alone would drain hot sources straight to the
    /// 50 % floor — tens of percent of capacity in one round; this cap
    /// bounds the round (the same disk-saturation reasoning as §III.B.5's
    /// destination threshold) and leaves the rest to later rounds.
    pub max_shed_per_device: f64,
}

impl Default for Alg1Config {
    fn default() -> Self {
        Alg1Config {
            iterations: 500,
            eps_step: 0.001,
            stop_rsd: 0.05,
            dest_util_cap: 0.95,
            min_source_utilization: 0.50,
            max_shed_per_device: 0.015,
        }
    }
}

/// Result of the movement calculation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovementAmounts {
    /// Per-device delta. HDF: ΔWc in pages (negative ⇒ shift that many
    /// page writes away). CDF: Δu as a utilization fraction (negative ⇒
    /// shed that share of capacity).
    pub delta: Vec<f64>,
    /// Model erase counts after the hypothetical rebalance (diagnostics).
    pub final_erases: Vec<f64>,
    /// Outer iterations actually used before convergence.
    pub iterations_used: usize,
}

/// HDF variant: returns ΔWc per device (pages).
pub fn calculate_hdf(
    wc_pages: &[f64],
    utilization: &[f64],
    model: &WearModel,
    cfg: &Alg1Config,
) -> MovementAmounts {
    validate_inputs(wc_pages, utilization);
    let n = wc_pages.len();
    let mut wc = wc_pages.to_vec();
    let mut delta = vec![0.0; n];
    let mut used = 0;
    for _ in 0..cfg.iterations {
        let ec: Vec<f64> = (0..n)
            .map(|i| model.erase_count(wc[i], utilization[i]))
            .collect();
        if rsd(&ec) < cfg.stop_rsd {
            break;
        }
        let Some((x, y)) = max_min_pair(&ec, |_| true) else {
            break;
        };
        // Inner ε sweep: smallest shift that equalizes the pair.
        let mut shift = 0.0;
        let mut eps = 0.0;
        while eps < 1.0 {
            let dw = wc[x] * eps;
            let de = model.erase_count(wc[x] - dw, utilization[x])
                - model.erase_count(wc[y] + dw, utilization[y]);
            if de <= 0.0 {
                shift = dw;
                break;
            }
            eps += cfg.eps_step;
        }
        if shift <= 0.0 {
            break; // pair already balanced ⇒ whole array converged
        }
        delta[x] -= shift;
        delta[y] += shift;
        wc[x] -= shift;
        wc[y] += shift;
        used += 1;
    }
    let final_erases = (0..n)
        .map(|i| model.erase_count(wc[i], utilization[i]))
        .collect();
    MovementAmounts {
        delta,
        final_erases,
        iterations_used: used,
    }
}

/// CDF variant: returns Δu per device (utilization fraction). Sources are
/// restricted to devices at or above `min_source_utilization`, and no
/// destination is pushed past `dest_util_cap`.
pub fn calculate_cdf(
    wc_pages: &[f64],
    utilization: &[f64],
    model: &WearModel,
    cfg: &Alg1Config,
) -> MovementAmounts {
    validate_inputs(wc_pages, utilization);
    let n = wc_pages.len();
    let mut u = utilization.to_vec();
    let mut delta = vec![0.0; n];
    let mut used = 0;
    for _ in 0..cfg.iterations {
        let ec: Vec<f64> = (0..n)
            .map(|i| model.erase_count(wc_pages[i], u[i]))
            .collect();
        if rsd(&ec) < cfg.stop_rsd {
            break;
        }
        // A source must sit above the 50 % floor and still have round
        // budget left.
        let Some((x, y)) = max_min_pair(&ec, |i| {
            u[i] >= cfg.min_source_utilization && -delta[i] < cfg.max_shed_per_device
        }) else {
            break;
        };
        // Per-device floor for this round: the 50 % rule or the shed cap,
        // whichever binds first.
        let floor = cfg
            .min_source_utilization
            .max(utilization[x] - cfg.max_shed_per_device);
        let mut shift = 0.0;
        let mut eps = 0.0;
        while eps < 1.0 {
            let du = u[x] * eps;
            if u[x] - du < floor || u[y] + du > cfg.dest_util_cap {
                // Hit a guard rail before equalizing: commit the largest
                // admissible shift.
                shift = (u[x] - floor).min(cfg.dest_util_cap - u[y]).max(0.0);
                break;
            }
            let de = model.erase_count(wc_pages[x], u[x] - du)
                - model.erase_count(wc_pages[y], u[y] + du);
            if de <= 0.0 {
                shift = du;
                break;
            }
            eps += cfg.eps_step;
        }
        if shift <= 1e-9 {
            break;
        }
        delta[x] -= shift;
        delta[y] += shift;
        u[x] -= shift;
        u[y] += shift;
        used += 1;
    }
    let final_erases = (0..n)
        .map(|i| model.erase_count(wc_pages[i], u[i]))
        .collect();
    MovementAmounts {
        delta,
        final_erases,
        iterations_used: used,
    }
}

fn validate_inputs(wc: &[f64], u: &[f64]) {
    assert_eq!(wc.len(), u.len(), "wc and u arrays must align");
    assert!(
        wc.iter().all(|w| w.is_finite() && *w >= 0.0),
        "write pages must be finite and non-negative"
    );
    assert!(
        u.iter().all(|x| (0.0..=1.0).contains(x)),
        "utilizations must be in [0, 1]"
    );
}

/// Relative standard deviation of a slice (0 for empty/zero-mean input).
fn rsd(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / values.len() as f64;
    var.sqrt() / mean
}

/// Indices of the devices with maximal and minimal erase count; the source
/// must additionally satisfy `source_ok`. `None` when no distinct
/// admissible pair with a strict gap exists.
fn max_min_pair(ec: &[f64], source_ok: impl Fn(usize) -> bool) -> Option<(usize, usize)> {
    let mut x: Option<usize> = None;
    let mut y: Option<usize> = None;
    for i in 0..ec.len() {
        if source_ok(i) && x.is_none_or(|x| ec[i] > ec[x]) {
            x = Some(i);
        }
        if y.is_none_or(|y| ec[i] < ec[y]) {
            y = Some(i);
        }
    }
    match (x, y) {
        (Some(x), Some(y)) if x != y && ec[x] > ec[y] => Some((x, y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_cluster::metrics::rsd;

    fn model() -> WearModel {
        WearModel::paper(32)
    }

    #[test]
    fn hdf_reduces_wear_imbalance() {
        let wc = [100_000.0, 20_000.0, 30_000.0, 10_000.0];
        let u = [0.7, 0.6, 0.65, 0.5];
        let m = model();
        let before: Vec<f64> = (0..4).map(|i| m.erase_count(wc[i], u[i])).collect();
        let out = calculate_hdf(&wc, &u, &m, &Alg1Config::default());
        assert!(
            rsd(out.final_erases.iter().copied()) < rsd(before.iter().copied()) * 0.2,
            "imbalance must shrink dramatically: {:?} -> {:?}",
            before,
            out.final_erases
        );
    }

    #[test]
    fn hdf_deltas_conserve_write_pages() {
        let wc = [50_000.0, 10_000.0, 5_000.0];
        let u = [0.7, 0.7, 0.7];
        let out = calculate_hdf(&wc, &u, &model(), &Alg1Config::default());
        let total: f64 = out.delta.iter().sum();
        assert!(total.abs() < 1e-6, "ΔWc must sum to zero, got {total}");
        // The hottest device sheds, the coldest gains.
        assert!(out.delta[0] < 0.0);
        assert!(out.delta[2] > 0.0);
    }

    #[test]
    fn equal_utilization_hdf_equalizes_wc() {
        let wc = [40_000.0, 0.0];
        let u = [0.6, 0.6];
        let out = calculate_hdf(&wc, &u, &model(), &Alg1Config::default());
        // With equal u, balance means equal Wc: each ends near 20 000.
        assert!((out.delta[0] + 20_000.0).abs() < 1_000.0, "{:?}", out.delta);
        assert!((out.delta[1] - 20_000.0).abs() < 1_000.0);
    }

    #[test]
    fn balanced_input_is_a_fixed_point() {
        let wc = [10_000.0; 4];
        let u = [0.6; 4];
        let out = calculate_hdf(&wc, &u, &model(), &Alg1Config::default());
        assert!(out.delta.iter().all(|d| *d == 0.0));
        assert_eq!(out.iterations_used, 0);
        let out = calculate_cdf(&wc, &u, &model(), &Alg1Config::default());
        assert!(out.delta.iter().all(|d| *d == 0.0));
    }

    #[test]
    fn hdf_respects_utilization_in_the_model() {
        // Same writes everywhere, but one device is much fuller: it has
        // the highest model wear, so HDF shifts writes away from it.
        let wc = [20_000.0; 3];
        let u = [0.95, 0.5, 0.5];
        let out = calculate_hdf(&wc, &u, &model(), &Alg1Config::default());
        assert!(out.delta[0] < 0.0, "{:?}", out.delta);
    }

    #[test]
    fn cdf_deltas_conserve_utilization() {
        let wc = [30_000.0, 30_000.0, 30_000.0];
        let u = [0.9, 0.6, 0.55];
        let out = calculate_cdf(&wc, &u, &model(), &Alg1Config::default());
        let total: f64 = out.delta.iter().sum();
        assert!(total.abs() < 1e-9);
        assert!(
            out.delta[0] < 0.0,
            "fullest device must shed: {:?}",
            out.delta
        );
    }

    #[test]
    fn cdf_never_drains_source_below_half() {
        let wc = [80_000.0, 10_000.0];
        let u = [0.55, 0.30];
        let cfg = Alg1Config::default();
        let out = calculate_cdf(&wc, &u, &model(), &cfg);
        assert!(u[0] + out.delta[0] >= cfg.min_source_utilization - 1e-9);
    }

    #[test]
    fn cdf_skips_sources_already_below_half() {
        // The wear-hottest device sits below 50 % utilization: CDF cannot
        // help it (§III.B.5), so no movement is planned from it.
        let wc = [90_000.0, 10_000.0];
        let u = [0.40, 0.60];
        let out = calculate_cdf(&wc, &u, &model(), &Alg1Config::default());
        assert!(out.delta[0] >= 0.0, "{:?}", out.delta);
    }

    #[test]
    fn cdf_respects_destination_cap() {
        let wc = [50_000.0, 50_000.0];
        let u = [0.94, 0.93];
        let cfg = Alg1Config::default();
        let out = calculate_cdf(&wc, &u, &model(), &cfg);
        assert!(u[1] + out.delta[1] <= cfg.dest_util_cap + 1e-9);
    }

    #[test]
    fn single_device_is_a_noop() {
        let out = calculate_hdf(&[1e5], &[0.7], &model(), &Alg1Config::default());
        assert_eq!(out.delta, vec![0.0]);
        let out = calculate_cdf(&[1e5], &[0.7], &model(), &Alg1Config::default());
        assert_eq!(out.delta, vec![0.0]);
    }

    #[test]
    fn iteration_budget_limits_work() {
        let wc = [100_000.0, 10.0, 20.0, 30.0];
        let u = [0.7; 4];
        let cfg = Alg1Config {
            iterations: 3,
            ..Default::default()
        };
        let out = calculate_hdf(&wc, &u, &model(), &cfg);
        assert!(out.iterations_used <= 3);
    }

    #[test]
    fn coarser_epsilon_still_converges_roughly() {
        let wc = [60_000.0, 10_000.0, 5_000.0];
        let u = [0.7, 0.6, 0.6];
        let fine = calculate_hdf(&wc, &u, &model(), &Alg1Config::default());
        let coarse = calculate_hdf(
            &wc,
            &u,
            &model(),
            &Alg1Config {
                eps_step: 0.01,
                ..Default::default()
            },
        );
        let r_fine = rsd(fine.final_erases.iter().copied());
        let r_coarse = rsd(coarse.final_erases.iter().copied());
        assert!(
            r_coarse < 0.15,
            "coarse grid should still balance: {r_coarse}"
        );
        assert!(r_fine <= r_coarse + 0.05);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_arrays_panic() {
        calculate_hdf(&[1.0], &[0.5, 0.5], &model(), &Alg1Config::default());
    }
}

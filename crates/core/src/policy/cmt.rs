//! CMT — the conventional migration technique the paper compares against
//! (§V intro), derived from Sorrento \[20\].
//!
//! CMT "measures the load factor of an SSD by EWMA of the I/O latency"
//! and "dynamically balances both the load and storage usage". It does
//! not know about flash wear, does not differentiate reads from writes,
//! and is not bound by SSD groups — which is why it moves the most data
//! (Fig. 8) and often *increases* cluster-wide erases (Fig. 6).

use edm_cluster::{AccessEvent, ClusterView, Migrator, MoveAction};
use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use crate::plan::{dest_budget_bytes, distribute, Destination, Selected};
use crate::policy::emit_plan_chosen;
use crate::temperature::AccessTracker;
use crate::trigger;

/// CMT tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmtConfig {
    /// Load-imbalance threshold (RSD of EWMA latencies).
    pub lambda: f64,
    /// Skip the trigger check (forced shuffle at the trace midpoint,
    /// matching how the experiments drive every policy).
    pub force: bool,
    /// Temperature interval of the access tracker.
    pub temperature_interval_us: u64,
    /// Storage-usage balancing kicks in above `mean + margin` utilization.
    pub storage_margin: f64,
    /// Planning-time free-space reserve on destinations.
    pub dest_free_reserve: f64,
}

impl Default for CmtConfig {
    fn default() -> Self {
        CmtConfig {
            lambda: 0.10,
            force: true,
            temperature_interval_us: AccessTracker::DEFAULT_INTERVAL_US,
            storage_margin: 0.005,
            dest_free_reserve: 0.05,
        }
    }
}

/// The conventional (Sorrento-style) migration technique.
pub struct Cmt {
    cfg: CmtConfig,
    tracker: AccessTracker,
}

impl Cmt {
    pub fn new(cfg: CmtConfig) -> Self {
        assert!(cfg.lambda >= 0.0, "lambda must be non-negative");
        assert!(cfg.temperature_interval_us > 0);
        Cmt {
            tracker: AccessTracker::new(cfg.temperature_interval_us),
            cfg,
        }
    }

    pub fn config(&self) -> &CmtConfig {
        &self.cfg
    }

    /// Load-balancing component: shed access volume (reads + writes,
    /// undifferentiated) from over-loaded OSDs via a greedy
    /// longest-processing-time pass — the hottest object goes to the OSD
    /// with the smallest projected load, but only when the move actually
    /// reduces the source's projected load below its current level, so the
    /// balancer never manufactures a worse hotspot.
    fn plan_load(
        &self,
        view: &ClusterView,
        moved: &mut std::collections::HashSet<edm_cluster::ObjectId>,
        budgets: &mut [i64],
        obs: &mut dyn edm_obs::Recorder,
    ) -> Vec<MoveAction> {
        let loads: Vec<f64> = view.osds.iter().map(|o| o.ewma_latency_us).collect();
        let decision =
            trigger::evaluate_obs(&loads, self.cfg.lambda, "CMT", "ewma_latency_us", obs);
        if !self.cfg.force && !decision.triggered {
            return Vec::new();
        }
        // Projected per-OSD load, in window access pages (the EWMA latency
        // triggers, the access volume is what a move actually shifts).
        let mut pages: Vec<f64> = vec![0.0; view.osds.len()];
        let mut heats: Vec<(Selected, f64)> = Vec::new();
        for o in &view.objects {
            let heat = self.tracker.heat(o.object, view.now_us);
            pages[o.osd.0 as usize] += heat.window_access_pages as f64;
            if heat.window_access_pages > 0 && !moved.contains(&o.object) {
                heats.push((
                    Selected {
                        object: o.object,
                        source: o.osd,
                        weight: heat.window_access_pages as f64,
                        size_bytes: o.size_bytes,
                    },
                    heat.total_temp,
                ));
            }
        }
        let mean = pages.iter().sum::<f64>() / pages.len().max(1) as f64;
        if mean <= 0.0 {
            return Vec::new();
        }
        // Hottest objects first (total temperature, read/write agnostic).
        heats.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                // edm-audit: allow(panic.expect, "temperatures are finite by construction (sums of decayed counters)")
                .expect("finite")
                .then(a.0.object.cmp(&b.0.object))
        });
        // Balance tightly: Sorrento keeps shuffling segments while any
        // provider sits meaningfully above the mean, which is why CMT
        // moves the most data of the three schemes (Fig. 8).
        let threshold = mean * (1.0 + self.cfg.lambda / 4.0);
        let mut plan = Vec::new();
        for (s, _) in heats {
            let src = s.source.0 as usize;
            if pages[src] <= threshold {
                continue; // source no longer overloaded
            }
            // Destination: smallest projected load with byte budget left.
            let Some(dst) = (0..pages.len())
                .filter(|&d| d != src && budgets[d] >= s.size_bytes as i64)
                // edm-audit: allow(panic.expect, "page tallies are finite counters")
                .min_by(|&a, &b| pages[a].partial_cmp(&pages[b]).expect("finite"))
            else {
                break;
            };
            // Only move if the destination stays below the source's
            // current level — otherwise the move would just relocate the
            // hotspot.
            if pages[dst] + s.weight >= pages[src] {
                continue;
            }
            pages[src] -= s.weight;
            pages[dst] += s.weight;
            budgets[dst] -= s.size_bytes as i64;
            budgets[src] += s.size_bytes as i64;
            moved.insert(s.object);
            plan.push(MoveAction {
                object: s.object,
                source: s.source,
                dest: view.osds[dst].osd,
            });
        }
        plan
    }

    /// Storage-usage balancing component: drain over-utilized devices to
    /// under-utilized ones, largest objects first (Sorrento also weights
    /// storage usage; this is what makes CMT move the most data, Fig. 8).
    fn plan_storage(
        &self,
        view: &ClusterView,
        moved: &mut std::collections::HashSet<edm_cluster::ObjectId>,
        budgets: &mut [i64],
    ) -> Vec<MoveAction> {
        let utils: Vec<f64> = view.osds.iter().map(|o| o.utilization).collect();
        let mean = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
        let mut plan = Vec::new();
        for (i, &u) in utils.iter().enumerate() {
            if u <= mean + self.cfg.storage_margin {
                continue;
            }
            let source = view.osds[i].osd;
            let needed_bytes = (u - mean) * view.osds[i].capacity_bytes as f64;
            let mut candidates: Vec<Selected> = view
                .objects_on(source)
                .filter(|o| !moved.contains(&o.object))
                .map(|o| Selected {
                    object: o.object,
                    source,
                    weight: o.size_bytes as f64,
                    size_bytes: o.size_bytes,
                })
                .collect();
            candidates.sort_by(|a, b| {
                b.size_bytes
                    .cmp(&a.size_bytes)
                    .then(a.object.cmp(&b.object))
            });
            let mut selected = Vec::new();
            let mut cum = 0.0;
            for s in candidates {
                if cum >= needed_bytes {
                    break;
                }
                cum += s.weight;
                selected.push(s);
            }
            let mut dests: Vec<(usize, Destination)> = utils
                .iter()
                .enumerate()
                .filter(|&(j, &du)| du < mean && j != i)
                .map(|(j, &du)| {
                    (
                        j,
                        Destination {
                            osd: view.osds[j].osd,
                            demand: (mean - du) * view.osds[j].capacity_bytes as f64,
                            budget_bytes: budgets[j],
                        },
                    )
                })
                .collect();
            let mut ds: Vec<Destination> = dests.iter().map(|(_, d)| *d).collect();
            let actions = distribute(&selected, &mut ds);
            for ((j, _), d) in dests.iter_mut().zip(ds.iter()) {
                budgets[*j] = d.budget_bytes;
            }
            moved.extend(actions.iter().map(|a| a.object));
            plan.extend(actions);
        }
        plan
    }
}

impl Default for Cmt {
    fn default() -> Self {
        Cmt::new(CmtConfig::default())
    }
}

impl Migrator for Cmt {
    fn name(&self) -> &str {
        "CMT"
    }

    /// Sorrento migrates segments lazily while continuing to serve from
    /// the source; it does not block foreground requests.
    fn blocking_moves(&self) -> bool {
        false
    }

    fn on_access(&mut self, event: AccessEvent) {
        self.tracker.record(event);
    }

    fn on_window_reset(&mut self) {
        self.tracker.reset_window();
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.tracker.save(w);
    }

    fn load_state(&mut self, r: &mut SnapReader) {
        self.tracker = AccessTracker::load(r);
    }

    fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
        self.plan_obs(view, &mut edm_obs::NoopRecorder)
    }

    // CMT journals its trigger (over EWMA latencies, not wear estimates)
    // and the chosen plan; it emits no wear-model events because the
    // conventional technique is wear-oblivious by construction.
    fn plan_obs(&mut self, view: &ClusterView, obs: &mut dyn edm_obs::Recorder) -> Vec<MoveAction> {
        let mut moved = std::collections::HashSet::new();
        // Sorrento weighs storage usage alongside load: a destination may
        // be filled only up to the cluster-mean utilization plus margin,
        // never into GC-thrash territory.
        let mean_util =
            view.osds.iter().map(|o| o.utilization).sum::<f64>() / view.osds.len().max(1) as f64;
        let mut budgets: Vec<i64> = view
            .osds
            .iter()
            .map(|o| {
                let by_free = dest_budget_bytes(view, o.osd, self.cfg.dest_free_reserve);
                let by_util = ((mean_util + self.cfg.storage_margin - o.utilization)
                    * o.capacity_bytes as f64) as i64;
                by_free.min(by_util)
            })
            .collect();
        let mut plan = self.plan_load(view, &mut moved, &mut budgets, obs);
        plan.extend(self.plan_storage(view, &mut moved, &mut budgets));
        emit_plan_chosen("CMT", view, &plan, obs);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::view;
    use edm_cluster::{AccessKind, ObjectId, OsdId};

    fn touch(p: &mut Cmt, obj: u64, times: u64, kind: AccessKind) {
        for _ in 0..times {
            p.on_access(AccessEvent {
                now_us: 500_000,
                object: ObjectId(obj),
                kind,
                pages: 4,
            });
        }
    }

    /// OSD 0 has triple the latency of the others; objects 0..3 live on it.
    fn loaded_view() -> edm_cluster::ClusterView {
        view(
            2,
            &[
                (50_000, 0.65, 3_000.0),
                (10_000, 0.60, 1_000.0),
                (10_000, 0.62, 1_000.0),
                (10_000, 0.61, 1_000.0),
            ],
            &[(0, 1 << 20), (0, 1 << 20), (0, 1 << 20), (1, 1 << 20)],
        )
    }

    #[test]
    fn sheds_load_from_high_latency_osd() {
        let mut p = Cmt::default();
        touch(&mut p, 0, 100, AccessKind::Read);
        touch(&mut p, 1, 50, AccessKind::Write);
        touch(&mut p, 2, 2, AccessKind::Read);
        let plan = p.plan(&loaded_view());
        assert!(!plan.is_empty());
        assert!(plan.iter().all(|m| m.source == OsdId(0)));
        // Read-hot object 0 is the top pick: CMT is read/write agnostic.
        assert_eq!(plan[0].object, ObjectId(0));
    }

    #[test]
    fn cmt_ignores_group_boundaries() {
        let mut p = Cmt::default();
        touch(&mut p, 0, 100, AccessKind::Read);
        touch(&mut p, 1, 100, AccessKind::Read);
        touch(&mut p, 2, 100, AccessKind::Read);
        let plan = p.plan(&loaded_view());
        // With three equally hot objects and three equal destinations,
        // at least one move crosses the (round-robin) group boundary.
        assert!(
            plan.iter().any(|m| m.source.0 % 2 != m.dest.0 % 2),
            "expected a cross-group move: {plan:?}"
        );
    }

    #[test]
    fn trigger_check_respects_balanced_load() {
        let cfg = CmtConfig {
            force: false,
            ..CmtConfig::default()
        };
        let mut p = Cmt::new(cfg);
        touch(&mut p, 0, 100, AccessKind::Read);
        let v = view(
            2,
            &[(10_000, 0.6, 1_000.0); 4],
            &[(0, 1 << 20), (1, 1 << 20)],
        );
        assert!(p.plan(&v).is_empty());
    }

    #[test]
    fn storage_component_drains_full_osds() {
        let mut p = Cmt::default();
        // No load signal at all; only utilization is skewed.
        let v = view(
            2,
            &[
                (10_000, 0.80, 1_000.0),
                (10_000, 0.55, 1_000.0),
                (10_000, 0.55, 1_000.0),
                (10_000, 0.55, 1_000.0),
            ],
            &[(0, 64 << 20), (0, 32 << 20), (1, 1 << 20)],
        );
        let plan = p.plan(&v);
        assert!(!plan.is_empty(), "storage imbalance must drive moves");
        assert!(plan.iter().all(|m| m.source == OsdId(0)));
        // Largest object first.
        assert_eq!(plan[0].object, ObjectId(0));
    }

    #[test]
    fn no_object_moved_twice_across_components() {
        let mut p = Cmt::default();
        touch(&mut p, 0, 100, AccessKind::Read);
        touch(&mut p, 1, 80, AccessKind::Read);
        let v = view(
            2,
            &[
                (50_000, 0.80, 3_000.0),
                (10_000, 0.55, 1_000.0),
                (10_000, 0.55, 1_000.0),
                (10_000, 0.55, 1_000.0),
            ],
            &[(0, 32 << 20), (0, 16 << 20), (1, 1 << 20)],
        );
        let plan = p.plan(&v);
        let mut seen = std::collections::HashSet::new();
        for m in &plan {
            assert!(seen.insert(m.object), "object {m:?} moved twice");
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Cmt::default().name(), "CMT");
    }

    #[test]
    fn plan_obs_journals_latency_trigger_and_plan() {
        use edm_obs::{Event, MemoryRecorder, ObsLevel};
        let v = loaded_view();
        let baseline = {
            let mut p = Cmt::default();
            touch(&mut p, 0, 100, AccessKind::Read);
            p.plan(&v)
        };
        let mut p = Cmt::default();
        touch(&mut p, 0, 100, AccessKind::Read);
        let mut rec = MemoryRecorder::new(ObsLevel::Events);
        let plan = p.plan_obs(&v, &mut rec);
        assert_eq!(plan, baseline, "recording must be read-only");
        let (policy, metric) = rec
            .journal()
            .iter()
            .find_map(|e| match &e.event {
                Event::TriggerEval { policy, metric, .. } => Some((*policy, *metric)),
                _ => None,
            })
            .expect("trigger evaluation journaled");
        assert_eq!(policy, "CMT");
        assert_eq!(metric, "ewma_latency_us");
        // CMT is wear-oblivious: no wear-model events in its trace.
        assert_eq!(rec.count_kind("wear_model_input"), 0);
        assert_eq!(rec.count_kind("plan_chosen"), 1);
    }
}

//! The migration policies: EDM-HDF, EDM-CDF (§III.B) and the
//! Sorrento-derived conventional migration technique CMT (§V intro).

mod cdf;
mod cmt;
mod hdf;

pub use cdf::EdmCdf;
pub use cmt::{Cmt, CmtConfig};
pub use hdf::EdmHdf;

use edm_cluster::{ClusterView, GroupId, MoveAction, OsdId};

/// Group members (OSD indices into `view.osds`), keyed by group, each
/// ascending. EDM plans per group because migration is intra-group only
/// (§III.A).
pub(crate) fn members_by_group(view: &ClusterView) -> Vec<(GroupId, Vec<OsdId>)> {
    let mut groups: std::collections::BTreeMap<GroupId, Vec<OsdId>> =
        std::collections::BTreeMap::new();
    for o in &view.osds {
        groups.entry(o.group).or_default().push(o.osd);
    }
    groups.into_iter().collect()
}

/// Journals each OSD's wear-model operands (Eq. 4: `Wc`, `u`) together
/// with the resulting erase estimate. No-op unless events are enabled.
pub(crate) fn emit_wear_inputs(view: &ClusterView, ecs: &[f64], obs: &mut dyn edm_obs::Recorder) {
    if !obs.events_on() {
        return;
    }
    for (o, &ec) in view.osds.iter().zip(ecs) {
        obs.event(edm_obs::Event::WearModelInput {
            osd: o.osd.0,
            wc_pages: o.wc_pages,
            utilization: o.utilization,
            erase_estimate: ec,
        });
    }
}

/// Journals the plan a policy settled on: move count, byte volume, and
/// the involved object/source/destination sets. No-op unless events are
/// enabled.
pub(crate) fn emit_plan_chosen(
    policy: &'static str,
    view: &ClusterView,
    plan: &[MoveAction],
    obs: &mut dyn edm_obs::Recorder,
) {
    if !obs.events_on() {
        return;
    }
    let sizes: std::collections::HashMap<_, _> = view
        .objects
        .iter()
        .map(|o| (o.object, o.size_bytes))
        .collect();
    let moved_bytes = plan
        .iter()
        .map(|m| sizes.get(&m.object).copied().unwrap_or(0))
        .sum();
    let mut sources: Vec<u64> = plan.iter().map(|m| m.source.0 as u64).collect();
    sources.sort_unstable();
    sources.dedup();
    let mut destinations: Vec<u64> = plan.iter().map(|m| m.dest.0 as u64).collect();
    destinations.sort_unstable();
    destinations.dedup();
    obs.event(edm_obs::Event::PlanChosen {
        policy,
        moves: plan.len() as u64,
        moved_bytes,
        objects: plan.iter().map(|m| m.object.0).collect(),
        sources,
        destinations,
    });
}

#[cfg(test)]
pub(crate) mod testutil {
    use edm_cluster::{ClusterView, GroupId, ObjectId, ObjectView, OsdId, OsdView};

    /// A hand-built view: `osds[i] = (wc_pages, utilization, ewma)`,
    /// groups assigned round-robin over `m`, and `objects[j] = (osd,
    /// size)` with ids 0..len.
    pub fn view(m: u32, osds: &[(u64, f64, f64)], objects: &[(u32, u64)]) -> ClusterView {
        let capacity = 1u64 << 30;
        ClusterView {
            now_us: 1_000_000,
            page_size: 4096,
            pages_per_block: 32,
            osds: osds
                .iter()
                .enumerate()
                .map(|(i, &(wc, u, ewma))| OsdView {
                    // edm-audit: allow(num.lossy_cast, "OSD index is bounded by the validated u32 OSD count")
                    osd: OsdId(i as u32),
                    // edm-audit: allow(num.lossy_cast, "OSD index is bounded by the validated u32 OSD count")
                    group: GroupId(i as u32 % m),
                    wc_pages: wc,
                    utilization: u,
                    measured_erases: 0,
                    ewma_latency_us: ewma,
                    free_bytes: ((1.0 - u) * capacity as f64) as u64,
                    capacity_bytes: capacity,
                })
                .collect(),
            objects: objects
                .iter()
                .enumerate()
                .map(|(j, &(osd, size))| ObjectView {
                    object: ObjectId(j as u64),
                    osd: OsdId(osd),
                    size_bytes: size,
                    remapped: false,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_by_group_partitions_osds() {
        let view = testutil::view(2, &[(0, 0.5, 0.0); 6], &[]);
        let groups = members_by_group(&view);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, vec![OsdId(0), OsdId(2), OsdId(4)]);
        assert_eq!(groups[1].1, vec![OsdId(1), OsdId(3), OsdId(5)]);
    }
}

//! EDM-HDF: Hot-Data-First migration (§III.B.4–5).
//!
//! HDF rebalances wear by moving the most write-frequently accessed
//! objects from hot devices to cold ones: Eq. 4 says fewer pages written
//! means fewer erases, and thanks to workload skew a small number of
//! write-hot objects carries most of the write volume, so HDF minimizes
//! the data moved (and hence the write amplification of migration itself).

use edm_cluster::{AccessEvent, ClusterView, Migrator, MoveAction};
use edm_snap::{SnapReader, SnapWriter, Snapshot};

use crate::alg1::calculate_hdf;
use crate::config::{Assessor, EdmConfig};
use crate::evaluate::{assess_plan_obs, trim_to_improvement, trim_to_improvement_model};
use crate::plan::{dest_budget_bytes, distribute, Destination, Selected};
use crate::policy::{emit_plan_chosen, emit_wear_inputs, members_by_group};
use crate::temperature::AccessTracker;
use crate::trigger;
use crate::wear_model::WearModel;

/// The Hot-Data-First policy.
pub struct EdmHdf {
    cfg: EdmConfig,
    tracker: AccessTracker,
}

impl EdmHdf {
    pub fn new(cfg: EdmConfig) -> Self {
        // edm-audit: allow(panic.expect, "constructor contract: callers pass validated EDM configuration")
        cfg.validate().expect("invalid EDM configuration");
        let tracker = match cfg.tracker_capacity {
            Some(cap) => AccessTracker::with_capacity(cfg.temperature_interval_us, cap),
            None => AccessTracker::new(cfg.temperature_interval_us),
        };
        EdmHdf { tracker, cfg }
    }

    pub fn config(&self) -> &EdmConfig {
        &self.cfg
    }

    pub fn tracker(&self) -> &AccessTracker {
        &self.tracker
    }
}

impl Default for EdmHdf {
    fn default() -> Self {
        EdmHdf::new(EdmConfig::default())
    }
}

impl Migrator for EdmHdf {
    fn name(&self) -> &str {
        "EDM-HDF"
    }

    fn on_access(&mut self, event: AccessEvent) {
        self.tracker.record(event);
    }

    fn on_window_reset(&mut self) {
        self.tracker.reset_window();
    }

    fn parallel_safe(&self) -> bool {
        // Plans only intra-group moves (§III.A) and the unbounded tracker's
        // per-object counters commute across placement components, so
        // component-ordered replay reproduces the sequential state. A
        // capacity-bounded tracker does not qualify: its eviction points
        // depend on the global arrival order of accesses.
        self.cfg.tracker_capacity.is_none()
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.tracker.save(w);
    }

    fn load_state(&mut self, r: &mut SnapReader) {
        self.tracker = AccessTracker::load(r);
    }

    fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
        self.plan_obs(view, &mut edm_obs::NoopRecorder)
    }

    fn plan_obs(&mut self, view: &ClusterView, obs: &mut dyn edm_obs::Recorder) -> Vec<MoveAction> {
        let model = WearModel {
            pages_per_block: view.pages_per_block,
            sigma: self.cfg.sigma,
        };
        // Cluster-wide wear-imbalance trigger (§III.B.2), computed from the
        // model, not from device-internal counters the MDS cannot see.
        let ecs: Vec<f64> = view
            .osds
            .iter()
            .map(|o| model.erase_count(o.wc_pages as f64, o.utilization))
            .collect();
        emit_wear_inputs(view, &ecs, obs);
        let decision =
            trigger::evaluate_obs(&ecs, self.cfg.lambda, "EDM-HDF", "erase_estimate", obs);
        if !self.cfg.force && !decision.triggered {
            return Vec::new();
        }
        // §III.B.2: sources are the devices with Ec − Ēc > Ēc·λ;
        // destinations are the devices below the cluster-wide average.
        // Algorithm 1 runs over whole groups, but only trigger-qualified
        // devices actually shed or absorb objects.
        let is_source = |o: &edm_cluster::OsdId| decision.sources.contains(&(o.0 as usize));
        let is_dest = |o: &edm_cluster::OsdId| decision.destinations.contains(&(o.0 as usize));

        let mut plan = Vec::new();
        for (_, members) in members_by_group(view) {
            if members.len() < 2 {
                continue;
            }
            let wc: Vec<f64> = members
                .iter()
                .map(|&m| view.osd(m).wc_pages as f64)
                .collect();
            let u: Vec<f64> = members.iter().map(|&m| view.osd(m).utilization).collect();
            // Algorithm 1 (HDF variant): how many page writes to shift.
            let amounts = calculate_hdf(&wc, &u, &model, &self.cfg.alg1);

            let mut dests: Vec<Destination> = members
                .iter()
                .zip(&amounts.delta)
                .filter(|(m, &d)| d > 0.0 && is_dest(m))
                .map(|(&m, &d)| Destination {
                    osd: m,
                    demand: d,
                    budget_bytes: dest_budget_bytes(view, m, self.cfg.dest_free_reserve),
                })
                .collect();
            if dests.is_empty() {
                continue;
            }

            for (&source, &delta) in members.iter().zip(&amounts.delta) {
                if delta >= 0.0 || !is_source(&source) {
                    continue;
                }
                let needed = -delta;
                // Candidates: objects on the source that actually received
                // writes this window, hottest (write temperature) first;
                // ties prefer already-remapped objects so the remapping
                // table does not grow (§III.C).
                let mut candidates: Vec<(Selected, f64, bool)> = view
                    .objects_on(source)
                    .filter_map(|o| {
                        let heat = self.tracker.heat(o.object, view.now_us);
                        if heat.window_write_pages == 0 {
                            return None;
                        }
                        Some((
                            Selected {
                                object: o.object,
                                source,
                                weight: heat.window_write_pages as f64,
                                size_bytes: o.size_bytes,
                            },
                            heat.write_temp,
                            o.remapped,
                        ))
                    })
                    .collect();
                candidates.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        // edm-audit: allow(panic.expect, "temperatures are finite by construction (sums of decayed counters)")
                        .expect("temperatures are finite")
                        .then(b.2.cmp(&a.2))
                        .then(a.0.object.cmp(&b.0.object))
                });
                let mut selected = Vec::new();
                let mut cum = 0.0;
                for (s, _, _) in candidates {
                    if cum >= needed {
                        break;
                    }
                    cum += s.weight;
                    selected.push(s);
                }
                plan.extend(distribute(&selected, &mut dests));
            }
        }
        // Whole-object selection can overshoot Algorithm 1's demand; never
        // publish a plan the model predicts makes the imbalance worse.
        let plan = match self.cfg.assessor {
            Assessor::Projection => trim_to_improvement(view, plan, &self.tracker, &model),
            Assessor::Model => trim_to_improvement_model(view, plan, &self.tracker, &model),
        };
        emit_plan_chosen("EDM-HDF", view, &plan, obs);
        if obs.events_on() {
            assess_plan_obs(view, &plan, &self.tracker, &model, obs);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::view;
    use edm_cluster::{AccessKind, ObjectId, OsdId};

    fn heat_object(p: &mut EdmHdf, obj: u64, writes: u64, pages: u64) {
        for _ in 0..writes {
            p.on_access(AccessEvent {
                now_us: 500_000,
                object: ObjectId(obj),
                kind: AccessKind::Write,
                pages,
            });
        }
    }

    /// 4 OSDs in 2 groups; OSD 0 is write-hot, OSD 2 (same group) is cold.
    fn hot_cold_view() -> edm_cluster::ClusterView {
        view(
            2,
            &[
                (100_000, 0.7, 0.0),
                (20_000, 0.6, 0.0),
                (5_000, 0.6, 0.0),
                (20_000, 0.6, 0.0),
            ],
            // Objects 0..4 on OSD 0, 4..6 on OSD 2.
            &[
                (0, 1 << 20),
                (0, 1 << 20),
                (0, 1 << 20),
                (0, 1 << 20),
                (2, 1 << 20),
                (2, 1 << 20),
            ],
        )
    }

    #[test]
    fn moves_hottest_written_objects_from_hot_to_cold() {
        let mut p = EdmHdf::default();
        heat_object(&mut p, 0, 50, 100); // hottest
        heat_object(&mut p, 1, 30, 100);
        heat_object(&mut p, 2, 5, 100);
        let plan = p.plan(&hot_cold_view());
        assert!(!plan.is_empty());
        // All moves intra-group: 0 -> 2 only.
        for m in &plan {
            assert_eq!(m.source, OsdId(0));
            assert_eq!(m.dest, OsdId(2));
        }
        // The hottest object moves first.
        assert_eq!(plan[0].object, ObjectId(0));
    }

    #[test]
    fn moves_are_intra_group_always() {
        let mut p = EdmHdf::default();
        for obj in 0..4 {
            heat_object(&mut p, obj, 10, 50);
        }
        let v = hot_cold_view();
        for m in p.plan(&v) {
            assert_eq!(m.source.0 % 2, m.dest.0 % 2, "cross-group move {m:?}");
        }
    }

    #[test]
    fn cold_objects_never_selected() {
        let mut p = EdmHdf::default();
        heat_object(&mut p, 0, 50, 100);
        // Objects 1..4 never written ⇒ not candidates even though the
        // source must shed a lot.
        let plan = p.plan(&hot_cold_view());
        assert!(plan.iter().all(|m| m.object == ObjectId(0)));
    }

    #[test]
    fn balanced_cluster_with_trigger_check_stays_put() {
        let cfg = EdmConfig {
            force: false,
            ..EdmConfig::default()
        };
        let mut p = EdmHdf::new(cfg);
        heat_object(&mut p, 0, 10, 10);
        let v = view(2, &[(10_000, 0.6, 0.0); 4], &[(0, 1 << 20), (1, 1 << 20)]);
        assert!(p.plan(&v).is_empty());
    }

    #[test]
    fn forced_plan_on_balanced_cluster_is_empty_anyway() {
        // Algorithm 1 finds nothing to shift when wear is equal.
        let mut p = EdmHdf::default();
        heat_object(&mut p, 0, 10, 10);
        let v = view(2, &[(10_000, 0.6, 0.0); 4], &[(0, 1 << 20)]);
        assert!(p.plan(&v).is_empty());
    }

    #[test]
    fn selection_stops_once_demand_met() {
        let mut p = EdmHdf::default();
        // Object 0 alone covers the needed shift (without overshooting it
        // so far that the improvement guard would drop the move).
        heat_object(&mut p, 0, 60, 1000);
        heat_object(&mut p, 1, 1, 1);
        let plan = p.plan(&hot_cold_view());
        assert_eq!(plan.len(), 1, "one object suffices: {plan:?}");
        assert_eq!(plan[0].object, ObjectId(0));
    }

    #[test]
    fn plans_that_overfill_the_destination_are_trimmed_to_empty() {
        let mut p = EdmHdf::default();
        // The only movable object is a 350 MB near-cold blob on the most
        // worn device. It fits the destination's free-space budget, but
        // the projection prices the destination at ~94% utilization —
        // GC amplification there outweighs the small rate shift, so the
        // improvement guard drops the move and publishes nothing.
        heat_object(&mut p, 0, 20, 100);
        let v = view(
            2,
            &[
                (30_000, 0.6, 0.0),
                (28_000, 0.6, 0.0),
                (26_000, 0.6, 0.0),
                (28_000, 0.6, 0.0),
            ],
            &[(0, 350 << 20)],
        );
        let plan = p.plan(&v);
        assert!(
            plan.is_empty(),
            "overfilling move must not be published: {plan:?}"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(EdmHdf::default().name(), "EDM-HDF");
    }

    #[test]
    fn plan_obs_journals_the_decision_and_changes_nothing() {
        use edm_obs::{Event, MemoryRecorder, ObsLevel};
        let v = hot_cold_view();
        let baseline = {
            let mut p = EdmHdf::default();
            heat_object(&mut p, 0, 50, 100);
            heat_object(&mut p, 1, 30, 100);
            p.plan(&v)
        };
        assert!(!baseline.is_empty());
        let mut p = EdmHdf::default();
        heat_object(&mut p, 0, 50, 100);
        heat_object(&mut p, 1, 30, 100);
        let mut rec = MemoryRecorder::new(ObsLevel::Events);
        let plan = p.plan_obs(&v, &mut rec);
        assert_eq!(plan, baseline, "recording must be read-only");
        // One wear-model input per OSD, then the trigger verdict.
        assert_eq!(rec.count_kind("wear_model_input"), v.osds.len());
        let trigger = rec
            .journal()
            .iter()
            .find_map(|e| match &e.event {
                Event::TriggerEval {
                    policy,
                    metric,
                    rsd,
                    lambda,
                    triggered,
                    ..
                } => Some((*policy, *metric, *rsd, *lambda, *triggered)),
                _ => None,
            })
            .expect("trigger evaluation journaled");
        assert_eq!(trigger.0, "EDM-HDF");
        assert_eq!(trigger.1, "erase_estimate");
        assert!(trigger.2 > trigger.3, "rsd above lambda in this view");
        assert!(trigger.4);
        // The chosen plan and its predicted effect close the journal.
        let chosen = rec
            .journal()
            .iter()
            .find_map(|e| match &e.event {
                Event::PlanChosen {
                    policy,
                    moves,
                    objects,
                    ..
                } => Some((*policy, *moves, objects.clone())),
                _ => None,
            })
            .expect("chosen plan journaled");
        assert_eq!(chosen.0, "EDM-HDF");
        assert_eq!(chosen.1, plan.len() as u64);
        assert_eq!(
            chosen.2,
            plan.iter().map(|m| m.object.0).collect::<Vec<_>>()
        );
        assert_eq!(rec.count_kind("plan_assessment"), 1);
    }

    #[test]
    fn plan_obs_with_metrics_level_keeps_journal_empty() {
        use edm_obs::{MemoryRecorder, ObsLevel};
        let mut p = EdmHdf::default();
        heat_object(&mut p, 0, 50, 100);
        let mut rec = MemoryRecorder::new(ObsLevel::Metrics);
        let plan = p.plan_obs(&hot_cold_view(), &mut rec);
        assert!(!plan.is_empty());
        assert!(rec.journal().is_empty());
    }
}

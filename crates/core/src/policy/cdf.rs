//! EDM-CDF: Cold-Data-First migration (§III.B.4–5).
//!
//! CDF trades a little extra moved data for near-zero impact on foreground
//! requests: it cools a hot SSD by *reducing its utilization* — moving
//! rarely-accessed objects away — instead of relocating the write-hot set.
//! Cold candidates (temperature below a threshold) are sorted by size,
//! largest first, to minimize the number of moved objects and hence the
//! remapping-table growth (§III.C); sources below 50 % utilization are
//! never drained further because the wear model is flat there (Fig. 3).

use edm_cluster::{AccessEvent, ClusterView, Migrator, MoveAction};
use edm_snap::{SnapReader, SnapWriter, Snapshot};

use crate::alg1::calculate_cdf;
use crate::config::{Assessor, EdmConfig};
use crate::evaluate::{assess_plan_obs, trim_to_improvement, trim_to_improvement_model};
use crate::plan::{dest_budget_bytes, distribute, Destination, Selected};
use crate::policy::{emit_plan_chosen, emit_wear_inputs, members_by_group};
use crate::temperature::AccessTracker;
use crate::trigger;
use crate::wear_model::WearModel;

/// The Cold-Data-First policy.
pub struct EdmCdf {
    cfg: EdmConfig,
    tracker: AccessTracker,
}

impl EdmCdf {
    pub fn new(cfg: EdmConfig) -> Self {
        // edm-audit: allow(panic.expect, "constructor contract: callers pass validated EDM configuration")
        cfg.validate().expect("invalid EDM configuration");
        let tracker = match cfg.tracker_capacity {
            Some(cap) => AccessTracker::with_capacity(cfg.temperature_interval_us, cap),
            None => AccessTracker::new(cfg.temperature_interval_us),
        };
        EdmCdf { tracker, cfg }
    }

    pub fn config(&self) -> &EdmConfig {
        &self.cfg
    }

    pub fn tracker(&self) -> &AccessTracker {
        &self.tracker
    }
}

impl Default for EdmCdf {
    fn default() -> Self {
        EdmCdf::new(EdmConfig::default())
    }
}

impl Migrator for EdmCdf {
    fn name(&self) -> &str {
        "EDM-CDF"
    }

    fn on_access(&mut self, event: AccessEvent) {
        self.tracker.record(event);
    }

    fn on_window_reset(&mut self) {
        self.tracker.reset_window();
    }

    fn parallel_safe(&self) -> bool {
        // Plans only intra-group moves (§III.A) and the unbounded tracker's
        // per-object counters commute across placement components, so
        // component-ordered replay reproduces the sequential state. A
        // capacity-bounded tracker does not qualify: its eviction points
        // depend on the global arrival order of accesses.
        self.cfg.tracker_capacity.is_none()
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.tracker.save(w);
    }

    fn load_state(&mut self, r: &mut SnapReader) {
        self.tracker = AccessTracker::load(r);
    }

    fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
        self.plan_obs(view, &mut edm_obs::NoopRecorder)
    }

    fn plan_obs(&mut self, view: &ClusterView, obs: &mut dyn edm_obs::Recorder) -> Vec<MoveAction> {
        let model = WearModel {
            pages_per_block: view.pages_per_block,
            sigma: self.cfg.sigma,
        };
        let ecs: Vec<f64> = view
            .osds
            .iter()
            .map(|o| model.erase_count(o.wc_pages as f64, o.utilization))
            .collect();
        emit_wear_inputs(view, &ecs, obs);
        let decision =
            trigger::evaluate_obs(&ecs, self.cfg.lambda, "EDM-CDF", "erase_estimate", obs);
        if !self.cfg.force && !decision.triggered {
            return Vec::new();
        }
        // §III.B.2: only devices with Ec − Ēc > Ēc·λ shed objects; only
        // devices below the cluster-wide average absorb them.
        let is_source = |o: &edm_cluster::OsdId| decision.sources.contains(&(o.0 as usize));
        let is_dest = |o: &edm_cluster::OsdId| decision.destinations.contains(&(o.0 as usize));

        let mut plan = Vec::new();
        for (_, members) in members_by_group(view) {
            if members.len() < 2 {
                continue;
            }
            let wc: Vec<f64> = members
                .iter()
                .map(|&m| view.osd(m).wc_pages as f64)
                .collect();
            let u: Vec<f64> = members.iter().map(|&m| view.osd(m).utilization).collect();
            // Algorithm 1 (CDF variant): how much utilization to shed.
            let amounts = calculate_cdf(&wc, &u, &model, &self.cfg.alg1);

            let mut dests: Vec<Destination> = members
                .iter()
                .zip(&amounts.delta)
                .filter(|(m, &d)| d > 0.0 && is_dest(m))
                .map(|(&m, &d)| {
                    let capacity = view.osd(m).capacity_bytes as f64;
                    Destination {
                        osd: m,
                        demand: d * capacity, // Δu expressed in bytes
                        budget_bytes: dest_budget_bytes(view, m, self.cfg.dest_free_reserve),
                    }
                })
                .collect();
            if dests.is_empty() {
                continue;
            }

            for (&source, &delta) in members.iter().zip(&amounts.delta) {
                if delta >= 0.0 || !is_source(&source) {
                    continue;
                }
                // Never migrate cold data off a device below 50 %
                // utilization (§III.B.5); Algorithm 1 already respects
                // this, so the check is a belt-and-braces guard.
                if view.osd(source).utilization < self.cfg.alg1.min_source_utilization {
                    continue;
                }
                let needed_bytes = -delta * view.osd(source).capacity_bytes as f64;
                // Cold candidates: total temperature below the threshold,
                // largest first to minimize the number of moved objects;
                // ties prefer already-remapped objects (§III.C).
                let mut candidates: Vec<(Selected, bool)> = view
                    .objects_on(source)
                    .filter_map(|o| {
                        let heat = self.tracker.heat(o.object, view.now_us);
                        if heat.total_temp >= self.cfg.cold_threshold {
                            return None;
                        }
                        Some((
                            Selected {
                                object: o.object,
                                source,
                                weight: o.size_bytes as f64,
                                size_bytes: o.size_bytes,
                            },
                            o.remapped,
                        ))
                    })
                    .collect();
                candidates.sort_by(|a, b| {
                    b.0.size_bytes
                        .cmp(&a.0.size_bytes)
                        .then(b.1.cmp(&a.1))
                        .then(a.0.object.cmp(&b.0.object))
                });
                let mut selected = Vec::new();
                let mut cum = 0.0;
                for (s, _) in candidates {
                    if cum >= needed_bytes {
                        break;
                    }
                    cum += s.weight;
                    selected.push(s);
                }
                plan.extend(distribute(&selected, &mut dests));
            }
        }
        // Whole-object selection can overshoot Algorithm 1's demand; never
        // publish a plan the model predicts makes the imbalance worse.
        let plan = match self.cfg.assessor {
            Assessor::Projection => trim_to_improvement(view, plan, &self.tracker, &model),
            Assessor::Model => trim_to_improvement_model(view, plan, &self.tracker, &model),
        };
        emit_plan_chosen("EDM-CDF", view, &plan, obs);
        if obs.events_on() {
            assess_plan_obs(view, &plan, &self.tracker, &model, obs);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::view;
    use edm_cluster::{AccessKind, ObjectId, OsdId};

    fn touch(p: &mut EdmCdf, obj: u64, times: u64) {
        for _ in 0..times {
            p.on_access(AccessEvent {
                now_us: 500_000,
                object: ObjectId(obj),
                kind: AccessKind::Read,
                pages: 1,
            });
        }
    }

    /// Two groups; OSD 0 is full and write-hot, OSD 2 (same group) is
    /// emptier.
    fn full_hot_view() -> edm_cluster::ClusterView {
        view(
            2,
            &[
                (100_000, 0.85, 0.0),
                (20_000, 0.60, 0.0),
                (20_000, 0.55, 0.0),
                (20_000, 0.60, 0.0),
            ],
            &[
                (0, 8 << 20), // big cold object
                (0, 4 << 20),
                (0, 1 << 20),
                (2, 1 << 20),
            ],
        )
    }

    #[test]
    fn moves_cold_objects_largest_first() {
        let mut p = EdmCdf::default();
        touch(&mut p, 2, 50); // object 2 is hot -> not a candidate
        let plan = p.plan(&full_hot_view());
        assert!(!plan.is_empty());
        assert_eq!(plan[0].object, ObjectId(0), "largest cold object first");
        assert!(plan.iter().all(|m| m.object != ObjectId(2)));
        for m in &plan {
            assert_eq!(m.source, OsdId(0));
            assert_eq!(m.dest, OsdId(2), "intra-group destination");
        }
    }

    #[test]
    fn source_below_half_utilization_is_left_alone() {
        let mut p = EdmCdf::default();
        let v = view(
            2,
            &[
                (100_000, 0.45, 0.0), // hottest wear but u < 0.5
                (10_000, 0.60, 0.0),
                (10_000, 0.55, 0.0),
                (10_000, 0.60, 0.0),
            ],
            &[(0, 1 << 20), (0, 1 << 20)],
        );
        assert!(p.plan(&v).is_empty());
    }

    #[test]
    fn trigger_check_blocks_balanced_cluster() {
        let cfg = EdmConfig {
            force: false,
            ..EdmConfig::default()
        };
        let mut p = EdmCdf::new(cfg);
        let v = view(2, &[(10_000, 0.6, 0.0); 4], &[(0, 1 << 20)]);
        assert!(p.plan(&v).is_empty());
    }

    #[test]
    fn hot_objects_excluded_even_when_demand_unmet() {
        let mut p = EdmCdf::default();
        // Heat everything on the source above the threshold.
        for obj in 0..3 {
            touch(&mut p, obj, 10);
        }
        let plan = p.plan(&full_hot_view());
        assert!(plan.is_empty(), "no cold candidates ⇒ no moves: {plan:?}");
    }

    #[test]
    fn selects_all_cold_in_size_order_when_demand_unmet() {
        let mut p = EdmCdf::default();
        // The utilization gap (~12 % of 1 GiB) dwarfs the 13 MB of cold
        // data: every cold object moves, largest first.
        let plan = p.plan(&full_hot_view());
        assert_eq!(plan.len(), 3, "{plan:?}");
        assert_eq!(plan[0].object, ObjectId(0));
        assert_eq!(plan[1].object, ObjectId(1));
        assert_eq!(plan[2].object, ObjectId(2));
    }

    #[test]
    fn moves_stop_at_needed_bytes() {
        // A tight per-round shed cap (0.5 % of 1 GiB ≈ 5.4 MB) bounds the
        // demand, so the largest cold object alone covers it.
        let mut cfg = EdmConfig::default();
        cfg.alg1.stop_rsd = 0.0;
        cfg.alg1.max_shed_per_device = 0.005;
        let mut p = EdmCdf::new(cfg);
        let v = view(
            2,
            &[
                (50_000, 0.70, 0.0),
                (20_000, 0.60, 0.0),
                (20_000, 0.55, 0.0),
                (20_000, 0.60, 0.0),
            ],
            &[(0, 8 << 20), (0, 4 << 20), (0, 1 << 20), (2, 1 << 20)],
        );
        let plan = p.plan(&v);
        assert_eq!(plan.len(), 1, "{plan:?}");
        assert_eq!(plan[0].object, ObjectId(0));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(EdmCdf::default().name(), "EDM-CDF");
    }
}

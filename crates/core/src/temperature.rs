//! Object temperature (§III.B.3, Definition 1) and the access tracker of
//! the EDM architecture (Fig. 4).
//!
//! The time-line since an object's creation is split into equal intervals;
//! with `Aᵢ` accesses in interval `i`, the temperature at interval `k` is
//!
//! > Tₖ(O) = Σᵢ Aᵢ / 2^(k−i)                           (Eq. 5)
//!
//! maintained incrementally by the recurrence
//!
//! > Tₖ(O) = Tₖ₋₁(O)/2 + Aₖ                            (Eq. 6)
//!
//! HDF counts only writes in `Aᵢ` ("Aᵢ is the write frequency of an object
//! (not including the read operations) for HDF"); CDF counts reads and
//! writes ("Aᵢ represents the total access frequency ... for CDF",
//! §III.B.5). The tracker maintains both, plus the per-object page-write
//! tally of the current measurement window that HDF's object selection
//! needs to satisfy ΔWc.

use edm_cluster::{AccessEvent, AccessKind, ObjectId};
use edm_snap::{FlatMap, SnapReader, SnapWriter, Snapshot};

/// One object's decayed counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObjectHeat {
    /// Write-only temperature (HDF's Tₖ).
    pub write_temp: f64,
    /// Read+write temperature (CDF's Tₖ).
    pub total_temp: f64,
    /// Interval index of the last decay applied.
    last_interval: u64,
    /// Host pages written to this object during the current measurement
    /// window (not decayed; reset with the window).
    pub window_write_pages: u64,
    /// Pages accessed (read + write) during the current window.
    pub window_access_pages: u64,
}

impl ObjectHeat {
    /// Applies Eq. 6 lazily: decays by one halving per elapsed interval.
    fn decay_to(&mut self, interval: u64) {
        debug_assert!(interval >= self.last_interval);
        let elapsed = interval - self.last_interval;
        if elapsed > 0 {
            // 2^-elapsed, exactly zero past the f64 exponent range.
            let factor = if elapsed >= 1075 {
                0.0
            } else {
                // edm-audit: allow(num.lossy_cast, "explicitly clamped to i32::MAX on the same expression")
                (0.5f64).powi(elapsed.min(i32::MAX as u64) as i32)
            };
            self.write_temp *= factor;
            self.total_temp *= factor;
            self.last_interval = interval;
        }
    }
}

/// The EDM access tracker: updates temperatures on every object access.
///
/// Optionally memory-bounded: §IV reduces memory consumption by caching
/// "only part of the objects' metadata in memory, for example ... the k
/// hottest objects". With a capacity set, the tracker prunes its coldest
/// entries once it overflows 25 % past the cap (amortized O(n) per prune,
/// O(1) per access).
#[derive(Debug, Clone)]
pub struct AccessTracker {
    interval_us: u64,
    /// Ordered by object id: iteration order reaches pruning, the hot
    /// cache, and the snapshot encoding, so it must be deterministic. A
    /// sorted vec, not a `BTreeMap`: `record` sits on the simulator's
    /// per-I/O hot path and the flat layout keeps lookups cache-friendly.
    heats: FlatMap<ObjectId, ObjectHeat>,
    capacity: Option<usize>,
}

impl AccessTracker {
    /// The paper recomputes wear every minute (§III.B.2); one minute is
    /// also our default temperature interval.
    pub const DEFAULT_INTERVAL_US: u64 = 60 * 1_000_000;

    pub fn new(interval_us: u64) -> Self {
        assert!(interval_us > 0, "interval must be positive");
        AccessTracker {
            interval_us,
            heats: FlatMap::new(),
            capacity: None,
        }
    }

    /// A tracker that keeps at most ~`capacity` object entries, evicting
    /// the coldest (by total temperature) when it overflows.
    pub fn with_capacity(interval_us: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        AccessTracker {
            capacity: Some(capacity),
            ..AccessTracker::new(interval_us)
        }
    }

    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Evicts the coldest entries down to the capacity. Called once the
    /// map overflows 25 % past the cap so the amortized per-access cost
    /// stays constant.
    fn prune(&mut self, now_interval: u64) {
        let Some(cap) = self.capacity else {
            return;
        };
        if self.heats.len() <= cap + cap / 4 {
            return;
        }
        let mut temps: Vec<(ObjectId, f64)> = self
            .heats
            .iter()
            .map(|(&o, h)| {
                let mut h = *h;
                h.decay_to(now_interval);
                (o, h.total_temp)
            })
            .collect();
        // edm-audit: allow(panic.expect, "temperatures are finite by construction (sums of decayed counters)")
        temps.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        for (o, _) in temps.into_iter().take(self.heats.len() - cap) {
            self.heats.remove(&o);
        }
    }

    pub fn interval_of(&self, now_us: u64) -> u64 {
        now_us / self.interval_us
    }

    /// Records one object access (the cluster calls this for every
    /// object-level I/O).
    pub fn record(&mut self, event: AccessEvent) {
        let interval = self.interval_of(event.now_us);
        let heat = self.heats.get_mut_or_default(event.object);
        heat.decay_to(interval);
        heat.total_temp += 1.0;
        heat.window_access_pages += event.pages;
        if event.kind == AccessKind::Write {
            heat.write_temp += 1.0;
            heat.window_write_pages += event.pages;
        }
        self.prune(interval);
    }

    /// Temperature snapshot of one object at `now_us` (decayed to the
    /// current interval; untouched objects are stone cold).
    pub fn heat(&self, object: ObjectId, now_us: u64) -> ObjectHeat {
        let interval = self.interval_of(now_us);
        let mut h = self.heats.get(&object).copied().unwrap_or_default();
        h.decay_to(interval);
        h
    }

    /// Number of objects ever seen.
    pub fn tracked_objects(&self) -> usize {
        self.heats.len()
    }

    /// The `n` hottest objects by write temperature, hottest first — the
    /// in-memory hot cache of Fig. 4 ("we only cache the k hottest objects
    /// in memory for HDF").
    pub fn hottest_by_write(&self, n: usize, now_us: u64) -> Vec<(ObjectId, ObjectHeat)> {
        let mut v: Vec<(ObjectId, ObjectHeat)> = self
            .heats
            .keys()
            .map(|&o| (o, self.heat(o, now_us)))
            .collect();
        v.sort_by(|a, b| {
            b.1.write_temp
                .partial_cmp(&a.1.write_temp)
                // edm-audit: allow(panic.expect, "temperatures are finite by construction (sums of decayed counters)")
                .expect("temperatures are finite")
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }

    /// Clears the per-window page counters (start of a new measurement
    /// period); temperatures persist.
    pub fn reset_window(&mut self) {
        for h in self.heats.values_mut() {
            h.window_write_pages = 0;
            h.window_access_pages = 0;
        }
    }
}

impl Snapshot for ObjectHeat {
    fn save(&self, w: &mut SnapWriter) {
        w.put_f64(self.write_temp);
        w.put_f64(self.total_temp);
        w.put_u64(self.last_interval);
        w.put_u64(self.window_write_pages);
        w.put_u64(self.window_access_pages);
    }
    fn load(r: &mut SnapReader) -> Self {
        ObjectHeat {
            write_temp: r.take_f64(),
            total_temp: r.take_f64(),
            last_interval: r.take_u64(),
            window_write_pages: r.take_u64(),
            window_access_pages: r.take_u64(),
        }
    }
}

impl Snapshot for AccessTracker {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.interval_us);
        self.capacity.save(w);
        // Canonical order for free: the heat map iterates by object id.
        w.put_u64(self.heats.len() as u64);
        for (o, heat) in self.heats.iter() {
            o.save(w);
            heat.save(w);
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        let interval_us = r.take_u64();
        let capacity: Option<usize> = Option::load(r);
        let pairs = Vec::<(ObjectId, ObjectHeat)>::load(r);
        let mut heats = FlatMap::new();
        for (o, h) in pairs {
            if heats.insert(o, h).is_some() {
                r.corrupt(format!("duplicate tracked object {o}"));
            }
        }
        if !r.failed() {
            if interval_us == 0 {
                r.corrupt("tracker interval must be positive");
            }
            if capacity == Some(0) {
                r.corrupt("tracker capacity must be positive");
            }
        }
        AccessTracker {
            interval_us: interval_us.max(1),
            heats,
            capacity: capacity.filter(|&c| c > 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(now_us: u64, object: u64, kind: AccessKind, pages: u64) -> AccessEvent {
        AccessEvent {
            now_us,
            object: ObjectId(object),
            kind,
            pages,
        }
    }

    #[test]
    fn accesses_accumulate_within_an_interval() {
        let mut t = AccessTracker::new(1000);
        t.record(ev(10, 1, AccessKind::Write, 2));
        t.record(ev(20, 1, AccessKind::Read, 1));
        t.record(ev(30, 1, AccessKind::Write, 3));
        let h = t.heat(ObjectId(1), 40);
        assert_eq!(h.write_temp, 2.0);
        assert_eq!(h.total_temp, 3.0);
        assert_eq!(h.window_write_pages, 5);
        assert_eq!(h.window_access_pages, 6);
    }

    #[test]
    fn recurrence_halves_per_interval() {
        // Eq. 6: T_k = T_{k-1}/2 + A_k.
        let mut t = AccessTracker::new(1000);
        for _ in 0..4 {
            t.record(ev(0, 1, AccessKind::Write, 1));
        }
        assert_eq!(t.heat(ObjectId(1), 999).write_temp, 4.0);
        assert_eq!(t.heat(ObjectId(1), 1000).write_temp, 2.0);
        assert_eq!(t.heat(ObjectId(1), 2000).write_temp, 1.0);
        // New accesses add on top of the decayed value.
        t.record(ev(2000, 1, AccessKind::Write, 1));
        assert_eq!(t.heat(ObjectId(1), 2500).write_temp, 2.0);
    }

    #[test]
    fn matches_eq5_closed_form() {
        // A_1 = 3 (interval 1), A_2 = 5 (interval 2), A_3 = 2 (interval 3):
        // T_3 = 3/4 + 5/2 + 2 = 5.25.
        let mut t = AccessTracker::new(100);
        for _ in 0..3 {
            t.record(ev(150, 7, AccessKind::Write, 1));
        }
        for _ in 0..5 {
            t.record(ev(250, 7, AccessKind::Write, 1));
        }
        for _ in 0..2 {
            t.record(ev(350, 7, AccessKind::Write, 1));
        }
        assert!((t.heat(ObjectId(7), 399).write_temp - 5.25).abs() < 1e-12);
    }

    #[test]
    fn untouched_objects_are_cold() {
        let t = AccessTracker::new(1000);
        let h = t.heat(ObjectId(99), 5000);
        assert_eq!(h.write_temp, 0.0);
        assert_eq!(h.total_temp, 0.0);
        assert_eq!(t.tracked_objects(), 0);
    }

    #[test]
    fn reads_heat_total_but_not_write_temp() {
        let mut t = AccessTracker::new(1000);
        t.record(ev(0, 1, AccessKind::Read, 4));
        let h = t.heat(ObjectId(1), 0);
        assert_eq!(h.write_temp, 0.0);
        assert_eq!(h.total_temp, 1.0);
        assert_eq!(h.window_write_pages, 0);
        assert_eq!(h.window_access_pages, 4);
    }

    #[test]
    fn long_idle_decays_to_zero_without_overflow() {
        let mut t = AccessTracker::new(1);
        t.record(ev(0, 1, AccessKind::Write, 1));
        let h = t.heat(ObjectId(1), u64::MAX);
        assert_eq!(h.write_temp, 0.0);
        assert!(h.write_temp.is_finite());
    }

    #[test]
    fn hottest_by_write_ranks_correctly() {
        let mut t = AccessTracker::new(1000);
        for _ in 0..5 {
            t.record(ev(0, 1, AccessKind::Write, 1));
        }
        for _ in 0..2 {
            t.record(ev(0, 2, AccessKind::Write, 1));
        }
        for _ in 0..9 {
            t.record(ev(0, 3, AccessKind::Read, 1)); // read-hot, write-cold
        }
        let top = t.hottest_by_write(2, 0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, ObjectId(1));
        assert_eq!(top[1].0, ObjectId(2));
    }

    #[test]
    fn bounded_tracker_keeps_the_hot_and_evicts_the_cold() {
        let mut t = AccessTracker::with_capacity(1000, 8);
        assert_eq!(t.capacity(), Some(8));
        // Heat objects 0..4 heavily, then stream 100 cold one-shot objects.
        for hot in 0..4u64 {
            for _ in 0..50 {
                t.record(ev(0, hot, AccessKind::Write, 1));
            }
        }
        for cold in 100..200u64 {
            t.record(ev(0, cold, AccessKind::Read, 1));
        }
        assert!(
            t.tracked_objects() <= 10,
            "tracker exceeded its cap: {}",
            t.tracked_objects()
        );
        for hot in 0..4u64 {
            assert!(
                t.heat(ObjectId(hot), 0).write_temp > 0.0,
                "hot object {hot} was evicted"
            );
        }
    }

    #[test]
    fn unbounded_tracker_never_evicts() {
        let mut t = AccessTracker::new(1000);
        for o in 0..500u64 {
            t.record(ev(0, o, AccessKind::Read, 1));
        }
        assert_eq!(t.tracked_objects(), 500);
    }

    #[test]
    fn tracker_snapshot_roundtrip_is_byte_identical() {
        let mut t = AccessTracker::with_capacity(1000, 64);
        for o in 0..20u64 {
            let kind = if o % 3 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            for k in 0..(o % 5 + 1) {
                t.record(ev(k * 700, o, kind, o + 1));
            }
        }
        let mut w = SnapWriter::new();
        t.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = AccessTracker::load(&mut r);
        r.finish("tracker").unwrap();

        let mut w2 = SnapWriter::new();
        back.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-encode must be byte-identical");

        assert_eq!(t.tracked_objects(), back.tracked_objects());
        assert_eq!(t.capacity(), back.capacity());
        for o in 0..20u64 {
            let (a, b) = (t.heat(ObjectId(o), 5000), back.heat(ObjectId(o), 5000));
            assert_eq!(a.write_temp.to_bits(), b.write_temp.to_bits());
            assert_eq!(a.total_temp.to_bits(), b.total_temp.to_bits());
            assert_eq!(a.window_write_pages, b.window_write_pages);
        }
    }

    #[test]
    fn reset_window_keeps_temperatures() {
        let mut t = AccessTracker::new(1000);
        t.record(ev(0, 1, AccessKind::Write, 7));
        t.reset_window();
        let h = t.heat(ObjectId(1), 0);
        assert_eq!(h.window_write_pages, 0);
        assert_eq!(h.window_access_pages, 0);
        assert_eq!(h.write_temp, 1.0);
    }
}

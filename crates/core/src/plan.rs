//! Plan assembly helpers shared by the migration policies: distributing
//! selected objects over destination devices "in proportion to ΔWc"
//! (§III.B.5) while respecting destination free space.

use edm_cluster::{ClusterView, MoveAction, ObjectId, OsdId};

/// A selected object with the weight it removes from its source (pages
/// for HDF, bytes for CDF/CMT).
#[derive(Debug, Clone, Copy)]
pub struct Selected {
    pub object: ObjectId,
    pub source: OsdId,
    pub weight: f64,
    pub size_bytes: u64,
}

/// A destination with its remaining demand (same unit as `Selected::weight`).
#[derive(Debug, Clone, Copy)]
pub struct Destination {
    pub osd: OsdId,
    pub demand: f64,
    /// Free bytes available beyond the reserve.
    pub budget_bytes: i64,
}

/// Assigns each selected object to the destination with the largest
/// remaining demand that can still hold it. Objects that fit nowhere are
/// dropped (the engine would reject them anyway).
pub fn distribute(selected: &[Selected], dests: &mut [Destination]) -> Vec<MoveAction> {
    let mut plan = Vec::with_capacity(selected.len());
    for s in selected {
        let Some(best) = dests
            .iter_mut()
            .filter(|d| d.osd != s.source && d.budget_bytes >= s.size_bytes as i64)
            // edm-audit: allow(panic.expect, "demand values are sums of finite page counts")
            .max_by(|a, b| a.demand.partial_cmp(&b.demand).expect("finite demand"))
        else {
            continue;
        };
        if best.demand <= 0.0 {
            // Every destination is satisfied; stop assigning.
            continue;
        }
        best.demand -= s.weight;
        best.budget_bytes -= s.size_bytes as i64;
        plan.push(MoveAction {
            object: s.object,
            source: s.source,
            dest: best.osd,
        });
    }
    plan
}

/// Builds the free-space budget of a destination from the view: free bytes
/// minus the configured reserve fraction of capacity.
pub fn dest_budget_bytes(view: &ClusterView, osd: OsdId, reserve: f64) -> i64 {
    let o = view.osd(osd);
    o.free_bytes as i64 - (o.capacity_bytes as f64 * reserve) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(obj: u64, src: u32, weight: f64, size: u64) -> Selected {
        Selected {
            object: ObjectId(obj),
            source: OsdId(src),
            weight,
            size_bytes: size,
        }
    }

    fn dst(osd: u32, demand: f64, budget: i64) -> Destination {
        Destination {
            osd: OsdId(osd),
            demand,
            budget_bytes: budget,
        }
    }

    #[test]
    fn objects_flow_to_largest_demand() {
        let selected = [sel(1, 0, 10.0, 100), sel(2, 0, 10.0, 100)];
        let mut dests = [dst(1, 5.0, 1000), dst(2, 30.0, 1000)];
        let plan = distribute(&selected, &mut dests);
        assert_eq!(plan.len(), 2);
        // Both go to OSD 2: it starts with demand 30 and still leads (20)
        // after the first assignment.
        assert!(plan.iter().all(|m| m.dest == OsdId(2)));
    }

    #[test]
    fn proportional_split_across_dests() {
        let selected: Vec<Selected> = (0..6).map(|i| sel(i, 0, 10.0, 10)).collect();
        let mut dests = [dst(1, 40.0, 1000), dst(2, 20.0, 1000)];
        let plan = distribute(&selected, &mut dests);
        let to1 = plan.iter().filter(|m| m.dest == OsdId(1)).count();
        let to2 = plan.iter().filter(|m| m.dest == OsdId(2)).count();
        assert_eq!(to1, 4);
        assert_eq!(to2, 2);
    }

    #[test]
    fn budget_exhaustion_skips_dest() {
        let selected = [sel(1, 0, 1.0, 600), sel(2, 0, 1.0, 600)];
        let mut dests = [dst(1, 100.0, 700)];
        let plan = distribute(&selected, &mut dests);
        assert_eq!(plan.len(), 1, "second object no longer fits");
    }

    #[test]
    fn source_is_never_a_destination() {
        let selected = [sel(1, 3, 1.0, 10)];
        let mut dests = [dst(3, 100.0, 1000)];
        assert!(distribute(&selected, &mut dests).is_empty());
    }

    #[test]
    fn satisfied_demand_stops_assignment() {
        let selected = [sel(1, 0, 10.0, 10), sel(2, 0, 10.0, 10)];
        let mut dests = [dst(1, 10.0, 1000)];
        let plan = distribute(&selected, &mut dests);
        assert_eq!(plan.len(), 1, "demand met after the first move");
    }
}

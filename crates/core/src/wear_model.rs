//! The SSD wear model of §III.B.1 (Equations 1–4).
//!
//! Under greedy garbage collection, each reclaimed victim block with
//! average valid-page ratio uᵣ yields only `Np · (1 − uᵣ)` net free pages,
//! so the erase count over a period with `Wc` host page writes is
//!
//! > Ec = Wc / (Np · (1 − uᵣ))                         (Eq. 1)
//!
//! uᵣ is invisible above the device, but relates to disk utilization `u`
//! through the classic log-structured cleaning relation
//!
//! > u = (uᵣ − 1) / ln uᵣ                              (Eq. 2)
//!
//! which fits uniformly random workloads but overestimates uᵣ for skewed
//! real-world traces; the paper corrects it with an empirical offset
//! σ = 0.28 (good for u ≤ 85 %):
//!
//! > u = (uᵣ − 1) / ln uᵣ + σ                          (Eq. 3)
//!
//! Writing F(u) for the inverse (uᵣ = F(u)) gives the wear model
//!
//! > Ec(Wc, u) = Wc / (Np · (1 − F(u)))                (Eq. 4)

use serde::{Deserialize, Serialize};

/// The paper's empirical impact factor σ (§III.B.1, Fig. 3).
pub const PAPER_SIGMA: f64 = 0.28;

/// Utilization→uᵣ ceiling: above this, GC reclaims almost nothing and
/// Eq. 4 diverges; we clamp so the model stays finite.
const UR_MAX: f64 = 0.999;

/// Forward direction of Eq. 2: utilization implied by a victim ratio.
///
/// `u = (ur - 1) / ln(ur)`, continuously extended with `u(0) = 0` and
/// `u(1) = 1`.
pub fn u_of_ur(ur: f64) -> f64 {
    assert!((0.0..=1.0).contains(&ur), "ur must be in [0, 1]");
    if ur <= f64::EPSILON {
        return 0.0;
    }
    if ur >= 1.0 - 1e-12 {
        return 1.0;
    }
    (ur - 1.0) / ur.ln()
}

/// The SSD wear model: Eq. 4 with a configurable σ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearModel {
    /// Pages per erase block (`Np`); the paper's geometry gives 32.
    pub pages_per_block: u32,
    /// Impact factor σ of Eq. 3; 0 recovers Eq. 2, 0.28 is the paper's
    /// empirical fit.
    pub sigma: f64,
}

impl WearModel {
    /// Eq. 3 model with the paper's σ = 0.28.
    pub fn paper(pages_per_block: u32) -> Self {
        WearModel {
            pages_per_block,
            sigma: PAPER_SIGMA,
        }
    }

    /// Eq. 2 model (σ = 0), the uniform-workload baseline of Fig. 3.
    pub fn eq2(pages_per_block: u32) -> Self {
        WearModel {
            pages_per_block,
            sigma: 0.0,
        }
    }

    /// F(u): the victim valid-page ratio uᵣ predicted for utilization `u`.
    ///
    /// Solves `u = (ur − 1)/ln(ur) + σ` for uᵣ by bisection; the right-hand
    /// side is strictly increasing in uᵣ, so the root is unique. Inputs at
    /// or below σ clamp to 0 (victims are entirely invalid); inputs whose
    /// corrected utilization reaches 1 clamp just below 1.
    pub fn f_of_u(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "utilization must be in [0, 1]");
        let target = u - self.sigma;
        if target <= 0.0 {
            return 0.0;
        }
        if target >= u_of_ur(UR_MAX) {
            return UR_MAX;
        }
        let (mut lo, mut hi) = (0.0f64, UR_MAX);
        // 60 bisection steps: |hi − lo| < 1e-18, far below f64 noise here.
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if u_of_ur(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Eq. 4: estimated block erases for `wc_pages` host page writes at
    /// disk utilization `u`.
    pub fn erase_count(&self, wc_pages: f64, u: f64) -> f64 {
        assert!(wc_pages >= 0.0, "write pages must be non-negative");
        let ur = self.f_of_u(u);
        wc_pages / (self.pages_per_block as f64 * (1.0 - ur))
    }

    /// Net free pages produced per erase at utilization `u` (the
    /// denominator of Eq. 4).
    pub fn free_pages_per_erase(&self, u: f64) -> f64 {
        self.pages_per_block as f64 * (1.0 - self.f_of_u(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_of_ur_endpoints_and_monotonicity() {
        assert_eq!(u_of_ur(0.0), 0.0);
        assert_eq!(u_of_ur(1.0), 1.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let u = u_of_ur(i as f64 / 100.0);
            assert!(u > prev, "u_of_ur must be strictly increasing");
            prev = u;
        }
        // Known value: ur = 0.5 ⇒ u = 0.5/ln 2 ≈ 0.7213.
        assert!((u_of_ur(0.5) - 0.5 / std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn f_of_u_inverts_eq2() {
        let m = WearModel::eq2(32);
        for ur in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let u = u_of_ur(ur);
            let back = m.f_of_u(u);
            assert!((back - ur).abs() < 1e-9, "ur {ur} -> u {u} -> {back}");
        }
    }

    #[test]
    fn f_of_u_inverts_eq3_with_sigma() {
        let m = WearModel::paper(32);
        for ur in [0.1, 0.3, 0.5] {
            let u = u_of_ur(ur) + PAPER_SIGMA;
            if u <= 1.0 {
                let back = m.f_of_u(u);
                assert!((back - ur).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sigma_lowers_predicted_ur() {
        // Skewed workloads segregate hot and cold data, so victims hold
        // fewer valid pages than Eq. 2 predicts — Eq. 3's whole point.
        let eq2 = WearModel::eq2(32);
        let eq3 = WearModel::paper(32);
        for u in [0.4, 0.6, 0.8] {
            assert!(eq3.f_of_u(u) < eq2.f_of_u(u), "at u = {u}");
        }
    }

    #[test]
    fn low_utilization_clamps_to_zero_ur() {
        let m = WearModel::paper(32);
        assert_eq!(m.f_of_u(0.0), 0.0);
        assert_eq!(m.f_of_u(0.28), 0.0);
        // Just above σ it rises off zero.
        assert!(m.f_of_u(0.30) > 0.0);
    }

    #[test]
    fn erase_count_scales_linearly_in_writes() {
        let m = WearModel::paper(32);
        let e1 = m.erase_count(10_000.0, 0.6);
        let e2 = m.erase_count(20_000.0, 0.6);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn erase_count_grows_with_utilization() {
        let m = WearModel::paper(32);
        let mut prev = 0.0;
        for u in [0.3, 0.5, 0.7, 0.9, 0.99] {
            let e = m.erase_count(10_000.0, u);
            assert!(e >= prev, "erases must not decrease with utilization");
            prev = e;
        }
        // And the dependence is strict above the σ knee.
        assert!(m.erase_count(1e4, 0.9) > m.erase_count(1e4, 0.5));
    }

    #[test]
    fn erase_count_stays_finite_at_full_utilization() {
        let m = WearModel::paper(32);
        let e = m.erase_count(10_000.0, 1.0);
        assert!(e.is_finite());
        assert!(e > 0.0);
    }

    #[test]
    fn below_sigma_knee_utilization_has_no_effect() {
        // "Further reduction of the disk utilization has almost no effect
        // on the wear frequency" below 50 % (§III.B.5; the CDF guard).
        let m = WearModel::paper(32);
        let e_low = m.erase_count(1e4, 0.05);
        let e_mid = m.erase_count(1e4, 0.28);
        assert_eq!(e_low, e_mid);
    }

    #[test]
    fn zero_writes_zero_erases() {
        let m = WearModel::paper(32);
        assert_eq!(m.erase_count(0.0, 0.7), 0.0);
    }

    #[test]
    fn free_pages_per_erase_shrinks_with_utilization() {
        let m = WearModel::paper(32);
        assert!(m.free_pages_per_erase(0.9) < m.free_pages_per_erase(0.5));
        assert!((m.free_pages_per_erase(0.0) - 32.0).abs() < 1e-9);
    }
}

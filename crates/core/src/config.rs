//! Configuration of the EDM policies.

use serde::{Deserialize, Serialize};

use crate::alg1::Alg1Config;
use crate::temperature::AccessTracker;
use crate::wear_model::PAPER_SIGMA;

/// Which engine vets a plan before the policy publishes it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assessor {
    /// The one-window projection loop over every object footprint — the
    /// reference semantics (default).
    #[default]
    Projection,
    /// The closed-form mean-field fast path (`edm-model`): incremental
    /// O(1)-per-trimmed-move evaluation, with the published plan still
    /// reference-checked so it can never disagree with `Projection` on
    /// whether a plan improves balance.
    Model,
}

impl Assessor {
    pub fn label(&self) -> &'static str {
        match self {
            Assessor::Projection => "projection",
            Assessor::Model => "model",
        }
    }

    pub fn from_label(label: &str) -> Option<Assessor> {
        match label {
            "projection" => Some(Assessor::Projection),
            "model" => Some(Assessor::Model),
            _ => None,
        }
    }
}

/// Tunables shared by EDM-HDF and EDM-CDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdmConfig {
    /// Wear-imbalance trigger threshold λ (§III.B.2: "the threshold λ can
    /// be adjusted in real cases").
    pub lambda: f64,
    /// Impact factor σ of the wear model (Eq. 3).
    pub sigma: f64,
    /// When true, skip the trigger check at plan time — the paper's
    /// experiments "enforce the OSDs to shuffle objects in the middle time
    /// point of trace replay" (§V.A).
    pub force: bool,
    /// CDF: objects with total temperature below this are cold candidates
    /// ("target objects which meet Tₖ(O) less than a threshold",
    /// §III.B.5).
    pub cold_threshold: f64,
    /// Width of one temperature interval (Eq. 5's time-line split).
    pub temperature_interval_us: u64,
    /// Algorithm 1 tunables.
    pub alg1: Alg1Config,
    /// Soft free-space reserve kept on destinations while planning
    /// ("to avoid disk saturation", §III.B.5), as a fraction of capacity.
    pub dest_free_reserve: f64,
    /// Cap on tracked object entries — §IV's memory reduction ("we only
    /// cache the k hottest objects in memory"). `None` tracks everything.
    pub tracker_capacity: Option<usize>,
    /// Plan-vetting engine (reference projection loop vs the `edm-model`
    /// closed-form fast path).
    pub assessor: Assessor,
}

impl Default for EdmConfig {
    fn default() -> Self {
        EdmConfig {
            lambda: 0.10,
            sigma: PAPER_SIGMA,
            force: true,
            cold_threshold: 1.0,
            temperature_interval_us: AccessTracker::DEFAULT_INTERVAL_US,
            alg1: Alg1Config::default(),
            dest_free_reserve: 0.05,
            tracker_capacity: None,
            assessor: Assessor::Projection,
        }
    }
}

impl EdmConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.lambda < 0.0 {
            return Err("lambda must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.sigma) {
            return Err("sigma must be in [0, 1)".into());
        }
        if self.cold_threshold < 0.0 {
            return Err("cold_threshold must be non-negative".into());
        }
        if self.temperature_interval_us == 0 {
            return Err("temperature interval must be positive".into());
        }
        if !(0.0..1.0).contains(&self.dest_free_reserve) {
            return Err("dest_free_reserve must be in [0, 1)".into());
        }
        if self.tracker_capacity == Some(0) {
            return Err("tracker_capacity must be positive when set".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = EdmConfig::default();
        assert!((c.sigma - 0.28).abs() < 1e-12);
        assert!(c.force);
        assert_eq!(c.alg1.iterations, 500);
        assert!((c.alg1.eps_step - 0.001).abs() < 1e-12);
        c.validate().unwrap();
    }

    #[test]
    fn assessor_labels_round_trip() {
        assert_eq!(EdmConfig::default().assessor, Assessor::Projection);
        for a in [Assessor::Projection, Assessor::Model] {
            assert_eq!(Assessor::from_label(a.label()), Some(a));
        }
        assert_eq!(Assessor::from_label("simulator"), None);
    }

    #[test]
    fn bad_configs_rejected() {
        let c = EdmConfig {
            lambda: -0.1,
            ..EdmConfig::default()
        };
        assert!(c.validate().is_err());

        let c = EdmConfig {
            sigma: 1.0,
            ..EdmConfig::default()
        };
        assert!(c.validate().is_err());

        let c = EdmConfig {
            temperature_interval_us: 0,
            ..EdmConfig::default()
        };
        assert!(c.validate().is_err());
    }
}

//! Workspace symbol graph: every function in every file, a conservative
//! call-resolution heuristic, and the resolved call edges the
//! interprocedural rules (taint, lock-order) walk.
//!
//! Resolution is name-based, not type-based — there is no type checker
//! here. The bias is asymmetric on purpose: an edge is added only when
//! the callee name resolves *uniquely* (after preferring the caller's
//! own crate), so the graph under-approximates calls but never invents
//! them. External calls (`std::…`, vendor crates) resolve to nothing,
//! which is exactly what the rules want: taint sources and blocking
//! calls are recognized by name pattern instead.

use std::collections::BTreeMap;

use crate::ast::{Call, FnCtx, StructDecl};
use crate::source::{FileKind, SourceFile};

/// One function node: its declaration context plus resolved call edges.
pub struct FnNode<'a> {
    /// Index of the owning file in the graph's file slice.
    pub file_idx: usize,
    pub ctx: FnCtx<'a>,
    /// Resolved calls: (callee fn index, call-site line).
    pub edges: Vec<(usize, u32)>,
    /// Dotted assignment targets written by this fn, with lines
    /// (`self.t_us`, `entry.wear`, …) — the "who writes which fields"
    /// half of the graph.
    pub writes: Vec<(String, u32)>,
}

/// The workspace symbol graph. Borrows the audited files.
pub struct SymGraph<'a> {
    pub files: &'a [SourceFile],
    pub fns: Vec<FnNode<'a>>,
    /// Simple name → fn indices bearing it.
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// (crate, struct name) → declaration, for field-type lookups.
    structs: BTreeMap<(&'a str, &'a str), &'a StructDecl>,
}

impl<'a> SymGraph<'a> {
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&'a str, Vec<usize>> = BTreeMap::new();
        let mut structs = BTreeMap::new();
        for (file_idx, f) in files.iter().enumerate() {
            for s in f.ast.structs() {
                structs
                    .entry((f.crate_name.as_str(), s.name.as_str()))
                    .or_insert(s);
            }
            for ctx in f.ast.fns() {
                let idx = fns.len();
                let writes = ctx
                    .decl
                    .body
                    .iter()
                    .filter_map(|s| match &s.kind {
                        crate::ast::StmtKind::Assign { target } => Some((target.clone(), s.line)),
                        _ => None,
                    })
                    .collect();
                by_name.entry(&ctx.decl.name).or_default().push(idx);
                fns.push(FnNode {
                    file_idx,
                    ctx,
                    edges: Vec::new(),
                    writes,
                });
            }
        }
        let mut g = SymGraph {
            files,
            fns,
            by_name,
            structs,
        };
        for i in 0..g.fns.len() {
            let mut edges = Vec::new();
            for stmt in &g.fns[i].ctx.decl.body {
                for call in &stmt.calls {
                    if let Some(callee) = g.resolve(i, call) {
                        edges.push((callee, call.line));
                    }
                }
            }
            edges.dedup();
            g.fns[i].edges = edges;
        }
        g
    }

    pub fn file_of(&self, fn_idx: usize) -> &'a SourceFile {
        &self.files[self.fns[fn_idx].file_idx]
    }

    /// The struct declared as `(crate, name)`, if any.
    pub fn struct_decl(&self, krate: &str, name: &str) -> Option<&'a StructDecl> {
        self.structs.get(&(krate, name)).copied()
    }

    /// The declared type of field `field` on struct `name` in `krate`.
    pub fn field_type(&self, krate: &str, name: &str, field: &str) -> Option<&'a str> {
        self.struct_decl(krate, name)?
            .fields
            .iter()
            .find(|f| f.name == field)
            .map(|f| f.ty.as_str())
    }

    /// Resolves a call site in fn `from` to a workspace function.
    ///
    /// `Owner::name` path calls must match a fn in an `impl Owner` (or a
    /// free fn when no owner matches nothing — external paths like
    /// `Instant::now` resolve to `None`). Bare and method calls match by
    /// simple name. Ambiguity after preferring the caller's crate and
    /// file resolves to `None`.
    pub fn resolve(&self, from: usize, call: &Call) -> Option<usize> {
        let (owner, name) = match call.callee.rsplit_once("::") {
            Some((path, last)) => (path.rsplit("::").next(), last),
            None => (None, call.callee.as_str()),
        };
        if name.is_empty() {
            return None;
        }
        // A let-bound local or parameter shadows workspace fns: a bare
        // call to that name is a closure/fn-pointer call, not resolvable.
        if owner.is_none() && !call.method {
            let caller = self.fns[from].ctx.decl;
            let shadowed = caller.params.iter().any(|p| p.name == name)
                || caller.body.iter().any(|s| match &s.kind {
                    crate::ast::StmtKind::Let { names } => names.iter().any(|n| n == name),
                    _ => false,
                });
            if shadowed {
                return None;
            }
        }
        let cands = self.by_name.get(name)?;
        let mut c: Vec<usize> = match owner {
            Some(o) => {
                let matched: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].ctx.owner == Some(o))
                    .collect();
                if matched.is_empty() {
                    return None; // external type path (std, vendor)
                }
                matched
            }
            None => cands.clone(),
        };
        // Never resolve into test code from non-test code.
        if !self.fns[from].ctx.in_test {
            c.retain(|&i| !self.fns[i].ctx.in_test);
        }
        if c.len() > 1 {
            let home = &self.file_of(from).crate_name;
            let same_file: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&i| self.fns[i].file_idx == self.fns[from].file_idx)
                .collect();
            if let [only] = same_file.as_slice() {
                return Some(*only);
            }
            let same_crate: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&i| &self.file_of(i).crate_name == home)
                .collect();
            if let [only] = same_crate.as_slice() {
                return Some(*only);
            }
            return None; // genuinely ambiguous: no edge
        }
        c.first().copied()
    }

    /// Resolves a bare/method callee *name* from fn `from` — the unit
    /// checker's entry for call operands.
    pub fn resolve_simple(&self, from: usize, name: &str, method: bool) -> Option<usize> {
        self.resolve(
            from,
            &Call {
                callee: name.to_string(),
                method,
                recv: None,
                line: 0,
                args: Vec::new(),
            },
        )
    }

    /// Indices of fns in analyzable (non-tool, non-test) library or
    /// binary code — the default scope for the semantic rules.
    pub fn analyzable(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| {
                let f = self.file_of(i);
                let tool = matches!(
                    f.crate_name.as_str(),
                    "harness" | "audit" | "fuzz" | "bench"
                );
                !tool
                    && matches!(f.kind, FileKind::LibSrc | FileKind::BinSrc)
                    && !self.fns[i].ctx.in_test
            })
            .collect()
    }
}

//! `unit.time` / `unit.wear` — newtype-discipline checking without
//! newtypes.
//!
//! Unit roles are inferred from names: `_us`/`_ms`/`_ns` suffixes are
//! time units, `tick` names are wear ticks, `erase` names are erase
//! counts, `_page(s)`/`ppn`/`lpn` and `_block(s)`/`pbn` are media
//! indices, `_bytes` is capacity. The checker walks every statement's
//! tokens and flags additive arithmetic (`+ - += -=`) and comparisons
//! (`< <= > >= == !=`) whose two operands carry *different known*
//! units, plus call arguments whose unit disagrees with the named
//! parameter they bind to. Multiplication and division are exempt —
//! rates and scaling legitimately mix units. Operands with no inferable
//! unit never fire, so generics `<`/`>` punctuation is naturally inert.
//!
//! `unit.time` fires when either side is a time unit; `unit.wear`
//! covers the rest (ticks/erases/pages/blocks/bytes cross-mixes).

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::symgraph::SymGraph;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    Micros,
    Millis,
    Nanos,
    Ticks,
    Erases,
    Pages,
    Blocks,
    Bytes,
}

impl Unit {
    fn name(self) -> &'static str {
        match self {
            Unit::Micros => "microseconds",
            Unit::Millis => "milliseconds",
            Unit::Nanos => "nanoseconds",
            Unit::Ticks => "wear ticks",
            Unit::Erases => "erase counts",
            Unit::Pages => "page index/count",
            Unit::Blocks => "block index/count",
            Unit::Bytes => "bytes",
        }
    }

    fn is_time(self) -> bool {
        matches!(self, Unit::Micros | Unit::Millis | Unit::Nanos)
    }
}

/// Infers a unit role from an identifier. Suffix rules run first so
/// `wear_tick_us` is microseconds, not ticks.
pub fn unit_of_name(name: &str) -> Option<Unit> {
    let n = name.to_ascii_lowercase();
    let n = n.as_str();
    if n.ends_with("_us") || n == "us" || n == "now_us" || n == "t_us" {
        return Some(Unit::Micros);
    }
    if n.ends_with("_ms") || n == "ms" {
        return Some(Unit::Millis);
    }
    if n.ends_with("_ns") || n == "ns" {
        return Some(Unit::Nanos);
    }
    if n.ends_with("_ticks") || n.ends_with("_tick") || n == "ticks" || n == "tick" {
        return Some(Unit::Ticks);
    }
    if n.contains("erase") {
        return Some(Unit::Erases);
    }
    if n.ends_with("_pages")
        || n.ends_with("_page")
        || n == "pages"
        || n.ends_with("ppn")
        || n.ends_with("lpn")
    {
        return Some(Unit::Pages);
    }
    if n.ends_with("_blocks") || n.ends_with("_block") || n == "blocks" || n.ends_with("pbn") {
        return Some(Unit::Blocks);
    }
    if n.ends_with("_bytes") || n == "bytes" {
        return Some(Unit::Bytes);
    }
    None
}

/// Unit of a dotted path / callee: its last segment's name.
fn unit_of_path(path: &str) -> Option<Unit> {
    let last = path.rsplit(['.', ':']).next().unwrap_or(path);
    unit_of_name(last)
}

pub fn check_units(graph: &SymGraph<'_>, findings: &mut Vec<Finding>) {
    for &i in &graph.analyzable() {
        let decl = graph.fns[i].ctx.decl;
        let file = graph.file_of(i);
        for stmt in &decl.body {
            check_stmt_ops(graph, i, stmt, findings);
            // Call-argument vs parameter-name unit agreement. Only pure
            // single-path arguments — arithmetic expressions are the
            // operator check's job.
            for call in &stmt.calls {
                let Some(callee) = graph.resolve(i, call) else {
                    continue;
                };
                let cdecl = graph.fns[callee].ctx.decl;
                let skip = usize::from(
                    call.method && cdecl.params.first().is_some_and(|p| p.name == "self"),
                );
                for (ai, arg) in call.args.iter().enumerate() {
                    let [path] = arg.as_slice() else { continue };
                    let Some(arg_unit) = unit_of_path(path) else {
                        continue;
                    };
                    let Some(param) = cdecl.params.get(ai + skip) else {
                        continue;
                    };
                    let Some(param_unit) = unit_of_name(&param.name) else {
                        continue;
                    };
                    if arg_unit != param_unit {
                        let rule = if arg_unit.is_time() || param_unit.is_time() {
                            "unit.time"
                        } else {
                            "unit.wear"
                        };
                        findings.push(Finding {
                            rule,
                            path: file.rel_path.clone(),
                            line: call.line,
                            message: format!(
                                "`{path}` ({}) passed to `{}`'s `{}` parameter ({})",
                                arg_unit.name(),
                                cdecl.name,
                                param.name,
                                param_unit.name()
                            ),
                            chain: vec![
                                format!(
                                    "{}:{}: argument `{path}` carries {}",
                                    file.rel_path,
                                    call.line,
                                    arg_unit.name()
                                ),
                                format!(
                                    "{}:{}: parameter `{}` of `{}` expects {}",
                                    graph.file_of(callee).rel_path,
                                    cdecl.line,
                                    param.name,
                                    cdecl.name,
                                    param_unit.name()
                                ),
                            ],
                        });
                    }
                }
            }
        }
    }
}

/// Scans a statement's tokens for additive/comparison operators with
/// unit-conflicting operands.
fn check_stmt_ops(
    graph: &SymGraph<'_>,
    fn_idx: usize,
    stmt: &crate::ast::Stmt,
    findings: &mut Vec<Finding>,
) {
    let file = graph.file_of(fn_idx);
    let text = |i: usize| file.sig.get(i).map_or("", |t| t.text(&file.src));
    let glued = |i: usize| match (file.sig.get(i), file.sig.get(i + 1)) {
        (Some(a), Some(b)) => a.end == b.start,
        _ => false,
    };
    let mut i = stmt.lo;
    while i < stmt.hi {
        // Operator recognition with glued-pair disambiguation.
        let (op, op_len) = match text(i) {
            "+" | "-" if glued(i) && text(i + 1) == "=" => (text(i), 2),
            "+" => ("+", 1),
            "-" if !(glued(i) && text(i + 1) == ">") => ("-", 1),
            "<" | ">" if glued(i) && text(i + 1) == "=" => (text(i), 2),
            "<" => ("<", 1),
            ">" => (">", 1),
            "=" if glued(i) && text(i + 1) == "=" => ("==", 2),
            "!" if glued(i) && text(i + 1) == "=" => ("!=", 2),
            _ => {
                i += 1;
                continue;
            }
        };
        // `=>` / `->` never reach here; `<<`/`>>` shifts: skip when the
        // neighbor repeats the same angle.
        if (op == "<" || op == ">")
            && (text(i + 1) == text(i) || (i > stmt.lo && text(i - 1) == text(i)))
        {
            i += op_len.max(1);
            continue;
        }
        let lhs = operand_back(file, stmt.lo, i);
        let rhs = operand_fwd(file, i + op_len, stmt.hi);
        if let (Some((l, l_call)), Some((r, r_call))) = (&lhs, &rhs) {
            let lu = operand_unit(graph, fn_idx, l, *l_call);
            let ru = operand_unit(graph, fn_idx, r, *r_call);
            if let (Some(lu), Some(ru)) = (lu, ru) {
                if lu != ru {
                    let rule = if lu.is_time() || ru.is_time() {
                        "unit.time"
                    } else {
                        "unit.wear"
                    };
                    findings.push(Finding {
                        rule,
                        path: file.rel_path.clone(),
                        line: stmt.line,
                        message: format!(
                            "`{l}` ({}) {op} `{r}` ({}) mixes units",
                            lu.name(),
                            ru.name()
                        ),
                        chain: vec![
                            format!(
                                "{}:{}: left operand `{l}` carries {}",
                                file.rel_path,
                                stmt.line,
                                lu.name()
                            ),
                            format!(
                                "{}:{}: right operand `{r}` carries {}",
                                file.rel_path,
                                stmt.line,
                                ru.name()
                            ),
                        ],
                    });
                }
            }
        }
        i += op_len;
    }
}

/// Unit of an operand. For call operands the callee's return type wins
/// when it resolves to a workspace fn returning a named (non-primitive)
/// type — a newtype like `DeviceTime` absorbs the unit, so `read_pages()
/// + erase_blocks(1)` on a latency model is not a unit mix. Unresolved
/// or primitive-returning calls fall back to name inference, keeping
/// `now_us()`-style signature propagation.
fn operand_unit(graph: &SymGraph<'_>, fn_idx: usize, path: &str, is_call: bool) -> Option<Unit> {
    if is_call {
        let name = path.rsplit('.').next().unwrap_or(path);
        let method = path.contains('.');
        if let Some(callee) = graph.resolve_simple(fn_idx, name, method) {
            match graph.fns[callee].ctx.decl.ret.as_deref() {
                Some(t) if !is_primitive_ty(t) => return None,
                None => return None,
                _ => {}
            }
        }
        return unit_of_name(name);
    }
    unit_of_path(path)
}

fn is_primitive_ty(t: &str) -> bool {
    matches!(
        t.trim(),
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

/// The dotted path (or call name) ending just before token `op`;
/// `true` when the operand is a call.
fn operand_back(file: &crate::source::SourceFile, lo: usize, op: usize) -> Option<(String, bool)> {
    let text = |i: usize| file.sig.get(i).map_or("", |t| t.text(&file.src));
    let kind = |i: usize| file.sig.get(i).map(|t| t.kind);
    let mut i = op.checked_sub(1)?;
    // `foo()` / `foo.bar()` → use the callee name.
    let mut is_call = false;
    if text(i) == ")" {
        let mut depth = 0i64;
        loop {
            match text(i) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i = i.checked_sub(1)?;
            if i < lo {
                return None;
            }
        }
        i = i.checked_sub(1)?;
        is_call = true;
    }
    if i < lo || kind(i) != Some(TokKind::Ident) {
        return None;
    }
    let mut parts = vec![text(i).to_string()];
    while i >= lo + 2 && text(i - 1) == "." && kind(i - 2) == Some(TokKind::Ident) {
        i -= 2;
        parts.push(text(i).to_string());
    }
    parts.reverse();
    Some((parts.join("."), is_call))
}

/// The dotted path (or call name) starting at token `at`; `true` when
/// the operand is a call.
fn operand_fwd(file: &crate::source::SourceFile, at: usize, hi: usize) -> Option<(String, bool)> {
    let text = |i: usize| file.sig.get(i).map_or("", |t| t.text(&file.src));
    let kind = |i: usize| file.sig.get(i).map(|t| t.kind);
    let mut i = at;
    while i < hi && matches!(text(i), "&" | "*" | "mut") {
        i += 1;
    }
    if kind(i) != Some(TokKind::Ident) {
        return None;
    }
    // `Path::…` operands (enum consts, assoc fns) carry no unit.
    if text(i + 1) == ":" {
        return None;
    }
    let mut parts = vec![text(i).to_string()];
    while text(i + 1) == "."
        && (kind(i + 2) == Some(TokKind::Ident) || kind(i + 2) == Some(TokKind::Int))
        && i + 2 < hi
    {
        i += 2;
        parts.push(text(i).to_string());
    }
    Some((parts.join("."), text(i + 1) == "("))
}

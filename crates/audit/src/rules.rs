//! The rule engine: every audit rule, run over the significant
//! (comment-free) token stream of each workspace file.
//!
//! Rules are lexical heuristics, tuned to this codebase and biased
//! toward *catching* violations: a false positive costs one explanatory
//! pragma, a false negative silently breaks replayability. Each rule
//! documents its scope; DESIGN.md §8 records the rationale.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::report::Finding;
use crate::source::{FileKind, SourceFile};

/// Registry of every rule id with a one-line description. The pragma
/// checker rejects `allow(...)` of ids not listed here.
pub const RULES: &[(&str, &str)] = &[
    (
        "det.map_iter",
        "iteration over HashMap/HashSet in simulation-state crates (unordered)",
    ),
    (
        "det.thread_order",
        "thread spawn / cross-thread aggregation primitive (mpsc, Mutex, RwLock) in simulation-state crates or the serve daemon",
    ),
    (
        "det.suppression_budget",
        "deterministic-core crate exceeds its frozen det.* pragma budget",
    ),
    (
        "det.wallclock",
        "Instant::now/SystemTime::now outside harness bins and bench",
    ),
    (
        "det.ambient_rng",
        "ambient randomness (thread_rng, OsRng, from_entropy, rand::random)",
    ),
    (
        "det.env_read",
        "process-environment read (std::env) outside harness bins and bench",
    ),
    ("panic.unwrap", ".unwrap() in non-test library code"),
    ("panic.expect", ".expect(...) in non-test library code"),
    (
        "panic.panic",
        "panic!/todo!/unimplemented! in non-test library code",
    ),
    ("panic.unreachable", "unreachable! in non-test library code"),
    (
        "panic.slice_index",
        "slice indexing by integer literal in non-test library code",
    ),
    (
        "num.lossy_cast",
        "lossy `as` cast in wear/erase accounting files",
    ),
    (
        "num.float_eq",
        "==/!= against a float literal in wear/erase accounting files",
    ),
    (
        "snap.field_coverage",
        "Snapshot impl whose save or load path misses a struct field",
    ),
    (
        "unsafe.forbid_missing",
        "library crate root without #![forbid(unsafe_code)]",
    ),
    ("pragma.malformed", "unparseable edm-audit pragma"),
    (
        "pragma.unknown_rule",
        "pragma allows a rule id that does not exist",
    ),
    ("pragma.unused", "pragma that suppressed nothing"),
    (
        "ci.workflow_gate",
        "CI workflow does not invoke every scripts/check.sh step",
    ),
    (
        "spec.event_coverage",
        "journal Event variant never matched in the edm-spec transition function",
    ),
    (
        "det.taint",
        "nondeterministic value (wallclock, RNG, env, thread id, hash iteration) flows into sim state, a snapshot section, or the journal",
    ),
    (
        "conc.lock_order",
        "inconsistent lock acquisition order, or a lock held across a blocking call",
    ),
    (
        "conc.shared_state",
        "non-Sync state (Rc/RefCell/Cell) reachable from a spawned closure",
    ),
    (
        "unit.time",
        "arithmetic/comparison mixing a time unit (us/ms/ns) with another unit",
    ),
    (
        "unit.wear",
        "arithmetic/comparison mixing wear/erase/page/block/byte units",
    ),
];

pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Crates whose `src` holds simulation state: map iteration order there
/// can reach the event sequence, so `det.map_iter` applies.
const SIM_STATE_CRATES: &[&str] = &["ssd", "cluster", "core", "workload"];

/// `det.thread_order` additionally covers the serve daemon (lib and
/// bin): its server thread shares a control block with the session
/// thread, so every cross-thread primitive there must argue — in a
/// pragma — that no simulation state crosses the thread boundary and
/// the observable result is independent of scheduler interleaving.
fn in_thread_order_scope(file: &SourceFile) -> bool {
    match file.kind {
        FileKind::LibSrc => {
            SIM_STATE_CRATES.contains(&file.crate_name.as_str()) || file.crate_name == "serve"
        }
        FileKind::BinSrc => file.crate_name == "serve",
        _ => false,
    }
}

/// Files under the `num.*` rules: wear/erase accounting, where a lossy
/// cast or an exact float compare skews endurance results silently.
fn in_numeric_scope(path: &str) -> bool {
    path.ends_with("/wear.rs") || path.ends_with("/temperature.rs") || path.contains("/policy/")
}

/// Convenience view over one file's significant tokens.
struct View<'a> {
    src: &'a str,
    toks: &'a [Token],
}

impl<'a> View<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.toks[i].text(self.src)
    }
    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }
    fn is(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.text(self.src) == s)
    }
    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == s)
    }
    fn line(&self, i: usize) -> u32 {
        self.toks[i].line
    }
    /// Two puncts form a glued operator (`==`, `::`) only when adjacent.
    fn glued(&self, i: usize) -> bool {
        i + 1 < self.toks.len() && self.toks[i].end == self.toks[i + 1].start
    }
}

/// Runs every applicable rule over `file`, appending findings.
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let v = View {
        src: &file.src,
        toks: &file.sig,
    };
    let f = |rule: &'static str, line: u32, message: String| Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        chain: Vec::new(),
    };
    let in_test = |line: u32| file.in_cfg_test(line);
    let lib = file.kind == FileKind::LibSrc;
    // Harness bins own the process boundary (CLI args, wall-clock cell
    // timing); the audit and fuzz bins are repo tooling. Everything else
    // must stay deterministic.
    let tool_bin = file.kind == FileKind::BinSrc
        && (file.crate_name == "harness"
            || file.crate_name == "audit"
            || file.crate_name == "fuzz");
    let ambient_exempt = matches!(
        file.kind,
        FileKind::Bench | FileKind::TestCode | FileKind::Example
    ) || tool_bin;

    // --- det.map_iter ------------------------------------------------
    if lib && SIM_STATE_CRATES.contains(&file.crate_name.as_str()) {
        let decls = hash_container_idents(&v);
        for i in 0..v.toks.len() {
            if in_test(v.line(i)) {
                continue;
            }
            // ident.iter() / .keys() / .values() / .drain() / …
            if v.kind(i) == Some(TokKind::Ident)
                && decls.contains(v.text(i))
                && v.is(i + 1, ".")
                && v.kind(i + 2) == Some(TokKind::Ident)
            {
                let m = v.text(i + 2);
                const ITER_METHODS: &[&str] = &[
                    "iter",
                    "iter_mut",
                    "keys",
                    "values",
                    "values_mut",
                    "drain",
                    "into_iter",
                    "into_keys",
                    "into_values",
                    "retain",
                ];
                if ITER_METHODS.contains(&m) && v.is(i + 3, "(") {
                    findings.push(f(
                        "det.map_iter",
                        v.line(i),
                        format!(
                            "`.{m}()` on hash container `{}` iterates in unspecified order",
                            v.text(i)
                        ),
                    ));
                }
            }
            // for … in [&|&mut] [self.]ident { … }
            if v.is_ident(i, "for") {
                if let Some((name, line)) = for_loop_over(&v, i, &decls) {
                    findings.push(f(
                        "det.map_iter",
                        line,
                        format!(
                            "`for` loop over hash container `{name}` iterates in unspecified order"
                        ),
                    ));
                }
            }
        }
    }

    // --- det.thread_order --------------------------------------------
    // Threads themselves are allowed (the sharded engine depends on
    // them); what this rule polices is the *aggregation idiom*. Any
    // spawn or cross-thread channel/lock in simulation-state library
    // code must carry a pragma arguing that the observable result is
    // independent of scheduler interleaving — e.g. workers mutate
    // disjoint `&mut` slots read back in index order after the join.
    // mpsc receive order, lock acquisition order, and atomic RMW
    // interleavings are all scheduler-dependent; folding results in any
    // of those orders silently breaks the replay digest.
    if in_thread_order_scope(file) {
        for i in 0..v.toks.len() {
            if in_test(v.line(i)) {
                continue;
            }
            if v.is_ident(i, "spawn")
                && (v.is(i.wrapping_sub(1), ".") || v.is(i.wrapping_sub(1), ":"))
            {
                findings.push(f(
                    "det.thread_order",
                    v.line(i),
                    "`spawn` creates a worker thread — results must be aggregated in a \
                     scheduler-independent order"
                        .to_string(),
                ));
            }
            for prim in ["mpsc", "Mutex", "RwLock"] {
                if v.is_ident(i, prim) {
                    findings.push(f(
                        "det.thread_order",
                        v.line(i),
                        format!("`{prim}` aggregates across threads in scheduler-dependent order"),
                    ));
                }
            }
        }
    }

    // --- det.wallclock / det.ambient_rng / det.env_read --------------
    if !ambient_exempt {
        for i in 0..v.toks.len() {
            if in_test(v.line(i)) {
                continue;
            }
            if (v.is_ident(i, "Instant") || v.is_ident(i, "SystemTime"))
                && v.is(i + 1, ":")
                && v.is(i + 2, ":")
                && v.is_ident(i + 3, "now")
            {
                findings.push(f(
                    "det.wallclock",
                    v.line(i),
                    format!("`{}::now()` reads the wall clock", v.text(i)),
                ));
            }
            if v.is_ident(i, "thread_rng")
                || v.is_ident(i, "OsRng")
                || v.is_ident(i, "from_entropy")
                || (v.is_ident(i, "rand")
                    && v.is(i + 1, ":")
                    && v.is(i + 2, ":")
                    && v.is_ident(i + 3, "random"))
            {
                findings.push(f(
                    "det.ambient_rng",
                    v.line(i),
                    format!("`{}` draws ambient (unseeded) randomness", v.text(i)),
                ));
            }
            if v.is_ident(i, "env") && v.is(i + 1, ":") && v.is(i + 2, ":") {
                const ENV_READS: &[&str] = &[
                    "var",
                    "var_os",
                    "vars",
                    "args",
                    "args_os",
                    "temp_dir",
                    "current_dir",
                ];
                if let Some(TokKind::Ident) = v.kind(i + 3) {
                    let m = v.text(i + 3);
                    if ENV_READS.contains(&m) {
                        findings.push(f(
                            "det.env_read",
                            v.line(i),
                            format!("`env::{m}` reads the process environment"),
                        ));
                    }
                }
            }
        }
    }

    // --- panic.* -----------------------------------------------------
    if lib {
        for i in 0..v.toks.len() {
            if in_test(v.line(i)) {
                continue;
            }
            if v.is(i, ".") && v.kind(i + 1) == Some(TokKind::Ident) && v.is(i + 2, "(") {
                match v.text(i + 1) {
                    "unwrap" => findings.push(f(
                        "panic.unwrap",
                        v.line(i + 1),
                        "`.unwrap()` panics on the error path".to_string(),
                    )),
                    "expect" => findings.push(f(
                        "panic.expect",
                        v.line(i + 1),
                        "`.expect(...)` panics on the error path".to_string(),
                    )),
                    _ => {}
                }
            }
            if v.kind(i) == Some(TokKind::Ident) && v.is(i + 1, "!") {
                match v.text(i) {
                    "panic" | "todo" | "unimplemented" => findings.push(f(
                        "panic.panic",
                        v.line(i),
                        format!("`{}!` aborts the simulation", v.text(i)),
                    )),
                    "unreachable" => findings.push(f(
                        "panic.unreachable",
                        v.line(i),
                        "`unreachable!` aborts if the impossible happens".to_string(),
                    )),
                    _ => {}
                }
            }
            // ident[<int literal>] — indexing that panics out of bounds.
            // `!` before `[` is a macro (vec![…]); `<` before means a
            // generic argument list, not an expression.
            if v.kind(i) == Some(TokKind::Ident)
                && v.is(i + 1, "[")
                && v.kind(i + 2) == Some(TokKind::Int)
                && v.is(i + 3, "]")
            {
                findings.push(f(
                    "panic.slice_index",
                    v.line(i),
                    format!(
                        "`{}[{}]` panics when the index is out of bounds",
                        v.text(i),
                        v.text(i + 2)
                    ),
                ));
            }
        }
    }

    // --- num.* -------------------------------------------------------
    if lib && in_numeric_scope(&file.rel_path) {
        const NARROWING: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
        for i in 0..v.toks.len() {
            if in_test(v.line(i)) {
                continue;
            }
            if v.is_ident(i, "as")
                && v.kind(i + 1) == Some(TokKind::Ident)
                && NARROWING.contains(&v.text(i + 1))
            {
                findings.push(f(
                    "num.lossy_cast",
                    v.line(i),
                    format!(
                        "`as {}` can silently truncate wear accounting",
                        v.text(i + 1)
                    ),
                ));
            }
            // `== 1.0` / `1.0 !=` — exact float comparison.
            let eq = (v.is(i, "=") && v.glued(i) && v.is(i + 1, "="))
                || (v.is(i, "!") && v.glued(i) && v.is(i + 1, "="));
            if eq {
                let lhs_float = i > 0 && v.kind(i - 1) == Some(TokKind::Float);
                let rhs_float = v.kind(i + 2) == Some(TokKind::Float);
                if lhs_float || rhs_float {
                    findings.push(f(
                        "num.float_eq",
                        v.line(i),
                        "exact comparison against a float literal".to_string(),
                    ));
                }
            }
        }
    }
}

/// Identifiers in this file declared with a HashMap/HashSet type or
/// initialized from `HashMap::…`/`HashSet::…`. Lexical, so a name
/// declared as a hash container *anywhere* in the file taints every
/// use of that name — bias toward catching.
fn hash_container_idents(v: &View<'_>) -> BTreeSet<String> {
    let mut decls = BTreeSet::new();
    for i in 0..v.toks.len() {
        if v.kind(i) != Some(TokKind::Ident) {
            continue;
        }
        let name = v.text(i);
        if name == "HashMap" || name == "HashSet" {
            // Walk back over `: & mut std :: collections ::` noise to the
            // declared identifier.
            let mut j = i;
            let mut saw_colon = false;
            while j > 0 {
                j -= 1;
                let t = v.text(j);
                match t {
                    ":" => saw_colon = true,
                    "&" | "mut" | "std" | "collections" => {}
                    "=" => {
                        // `let x = HashMap::new()` — identifier before `=`.
                        if v.kind(j.wrapping_sub(1)) == Some(TokKind::Ident) && j >= 1 {
                            decls.insert(v.text(j - 1).to_string());
                        }
                        break;
                    }
                    _ => {
                        if saw_colon && v.kind(j) == Some(TokKind::Ident) {
                            decls.insert(t.to_string());
                        }
                        break;
                    }
                }
            }
        }
    }
    decls
}

/// If the `for` loop starting at token `i` iterates directly over a
/// declared hash container (`for x in &self.map`), returns the
/// container name and loop line. Method-call iterations are caught by
/// the `.iter()`-family check instead.
fn for_loop_over(v: &View<'_>, i: usize, decls: &BTreeSet<String>) -> Option<(String, u32)> {
    // Find `in` at bracket depth 0 (patterns may contain tuples).
    let mut j = i + 1;
    let mut depth = 0i32;
    loop {
        match v.toks.get(j)? {
            t if t.text(v.src) == "(" || t.text(v.src) == "[" => depth += 1,
            t if t.text(v.src) == ")" || t.text(v.src) == "]" => depth -= 1,
            t if t.kind == TokKind::Ident && t.text(v.src) == "in" && depth == 0 => break,
            t if t.text(v.src) == "{" => return None, // no `in`: not a loop
            _ => {}
        }
        j += 1;
        if j > i + 64 {
            return None;
        }
    }
    // Expression tokens until the body `{`: accept only the simple
    // direct-iteration shape.
    let mut name: Option<String> = None;
    let mut k = j + 1;
    loop {
        let t = v.toks.get(k)?;
        let txt = t.text(v.src);
        if txt == "{" {
            break;
        }
        match txt {
            "&" | "mut" | "self" | "." => {}
            _ if t.kind == TokKind::Ident && decls.contains(txt) => {
                name = Some(txt.to_string());
            }
            _ => return None, // any other shape: method calls etc.
        }
        k += 1;
        if k > j + 8 {
            return None;
        }
    }
    name.map(|n| (n, v.line(i)))
}

// ---------------------------------------------------------------------
// Workspace-level rules: Snapshot field coverage and forbid(unsafe_code).
// ---------------------------------------------------------------------

/// Named-field structs collected across the workspace:
/// (crate, struct name) → candidate field lists (one per definition
/// site, to survive same-name structs in different modules).
pub type StructTable = BTreeMap<(String, String), Vec<Vec<String>>>;

/// Pass A: record every `struct Name { field: Type, … }` in `file`,
/// straight off the AST.
pub fn collect_structs(file: &SourceFile, table: &mut StructTable) {
    for s in file.ast.structs() {
        if s.fields.is_empty() {
            continue;
        }
        table
            .entry((file.crate_name.clone(), s.name.clone()))
            .or_default()
            .push(s.fields.iter().map(|f| f.name.clone()).collect());
    }
}

/// Pass B: for every `impl Snapshot for T` in `file` (found on the
/// AST), check that each field of `T` (when `T` is a named-field struct
/// in the same crate) appears in both the `save` and the `load` body.
pub fn check_snapshot_coverage(
    file: &SourceFile,
    table: &StructTable,
    findings: &mut Vec<Finding>,
) {
    if file.kind != FileKind::LibSrc {
        return;
    }
    let mut impls: Vec<(&crate::ast::ImplBlock, u32)> = Vec::new();
    collect_impls(&file.ast.items, &mut impls);
    for (imp, impl_line) in impls {
        if imp.trait_name.as_deref() != Some("Snapshot") || file.in_cfg_test(impl_line) {
            continue;
        }
        let tname = &imp.type_name;
        let key = (file.crate_name.clone(), tname.clone());
        let Some(candidates) = table.get(&key) else {
            continue;
        };
        let save_idents = fn_body_idents(file, imp, "save");
        let load_idents = fn_body_idents(file, imp, "load");
        // Same-name structs in different modules: report only if the
        // check fails for every candidate definition, and report the
        // candidate with the fewest missing fields.
        let mut best: Option<Vec<String>> = None;
        for fields in candidates {
            let mut missing = Vec::new();
            for field in fields {
                let in_save = save_idents.contains(field.as_str());
                let in_load = load_idents.contains(field.as_str());
                if !in_save || !in_load {
                    let side = match (in_save, in_load) {
                        (false, false) => "save and load paths",
                        (false, true) => "save path",
                        _ => "load path",
                    };
                    missing.push(format!("`{field}` missing from the {side}"));
                }
            }
            if missing.is_empty() {
                best = None;
                break;
            }
            if best.as_ref().is_none_or(|b| missing.len() < b.len()) {
                best = Some(missing);
            }
        }
        if let Some(missing) = best {
            for m in missing {
                findings.push(Finding {
                    rule: "snap.field_coverage",
                    path: file.rel_path.clone(),
                    line: impl_line,
                    message: format!("Snapshot impl for `{tname}`: field {m}"),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Every impl block in the file (recursing through inline modules),
/// with its declaration line.
fn collect_impls<'a>(
    items: &'a [crate::ast::Item],
    out: &mut Vec<(&'a crate::ast::ImplBlock, u32)>,
) {
    for item in items {
        match &item.kind {
            crate::ast::ItemKind::Impl(imp) => out.push((imp, item.line)),
            crate::ast::ItemKind::Mod(m) => collect_impls(&m.items, out),
            _ => {}
        }
    }
}

/// All ident texts inside the body of `fn <name>` of an impl block.
fn fn_body_idents<'s>(
    file: &'s SourceFile,
    imp: &crate::ast::ImplBlock,
    name: &str,
) -> BTreeSet<&'s str> {
    let mut out = BTreeSet::new();
    let Some(decl) = imp.fns.iter().find(|f| f.name == name) else {
        return out;
    };
    let Some((lo, hi)) = decl.body_range else {
        return out;
    };
    for t in lo..hi.min(file.sig.len()) {
        if file.sig[t].kind == TokKind::Ident {
            out.insert(file.sig[t].text(&file.src));
        }
    }
    out
}

/// `spec.event_coverage`: every variant of the journal `Event` enum
/// (crates/obs/src/event.rs) must be matched somewhere in the edm-spec
/// transition function (crates/spec/src) as `Event::<Name>`. A new
/// event kind the conformance checker silently ignores is a hole in the
/// spec: the journal would grow behaviour the state machine never
/// certifies. Workspace-level — it needs both crates' sources at once.
pub fn check_spec_event_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    const EVENT_DECL: &str = "crates/obs/src/event.rs";
    const SPEC_SRC: &str = "crates/spec/src/";
    let Some(decl) = files.iter().find(|f| f.rel_path == EVENT_DECL) else {
        return;
    };
    let variants = event_enum_variants(decl);
    if variants.is_empty() || !files.iter().any(|f| f.rel_path.starts_with(SPEC_SRC)) {
        return;
    }
    let mut matched: BTreeSet<&str> = BTreeSet::new();
    for f in files.iter().filter(|f| f.rel_path.starts_with(SPEC_SRC)) {
        let v = View {
            src: &f.src,
            toks: &f.sig,
        };
        for i in 0..v.toks.len() {
            if v.is_ident(i, "Event")
                && v.is(i + 1, ":")
                && v.is(i + 2, ":")
                && v.kind(i + 3) == Some(TokKind::Ident)
            {
                matched.insert(v.text(i + 3));
            }
        }
    }
    for (name, line) in &variants {
        if !matched.contains(name.as_str()) {
            findings.push(Finding {
                rule: "spec.event_coverage",
                path: decl.rel_path.clone(),
                line: *line,
                message: format!(
                    "`Event::{name}` is never matched in the edm-spec transition \
                     function (crates/spec/src) — the spec cannot certify journals \
                     that carry it"
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// The variant names (and declaration lines) of `pub enum Event` in the
/// given file, straight off the AST.
fn event_enum_variants(file: &SourceFile) -> Vec<(String, u32)> {
    file.ast
        .enums()
        .into_iter()
        .find(|e| e.name == "Event")
        .map(|e| e.variants.clone())
        .unwrap_or_default()
}

/// The frozen `det.*` pragma budget of each deterministic-core crate:
/// exactly as many determinism suppressions as the crate carried when
/// the budget was set. Growing a crate must not quietly grow its set of
/// "trust me" escapes from the determinism rules — a new suppression in
/// the core is a design event, and the way to admit one is to raise the
/// number here in the same change, where review can see it. Tooling
/// crates (harness, audit, fuzz) and the serve daemon own the process
/// boundary and are deliberately unbudgeted.
const DET_PRAGMA_BUDGETS: &[(&str, usize)] = &[
    ("ssd", 0),
    ("cluster", 3),
    ("core", 0),
    ("model", 0),
    ("workload", 1),
    ("snap", 0),
    ("obs", 0),
    ("spec", 0),
    ("scenario", 0),
];

/// `det.suppression_budget`: counts `det.*`, `conc.*`, and `unit.*`
/// pragmas under each budgeted crate's `src/` (every file kind — a
/// suppression in a bin or test module still normalizes an escape
/// hatch) and fires on any crate over its frozen allowance.
/// Workspace-level: the count is a property of the whole crate,
/// reported once at its root.
pub fn check_suppression_budget(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let budgeted = |rule: &str| {
        rule.starts_with("det.") || rule.starts_with("conc.") || rule.starts_with("unit.")
    };
    for (krate, budget) in DET_PRAGMA_BUDGETS {
        let prefix = format!("crates/{krate}/src/");
        let mut sites = Vec::new();
        for f in files.iter().filter(|f| f.rel_path.starts_with(&prefix)) {
            // Typo'd rule ids are already `pragma.unknown_rule` findings;
            // the budget counts only suppressions that actually bind.
            for p in f
                .pragmas
                .iter()
                .filter(|p| budgeted(&p.rule) && rule_exists(&p.rule))
            {
                sites.push(format!("{}:{} ({})", f.rel_path, p.line, p.rule));
            }
        }
        if sites.len() > *budget {
            findings.push(Finding {
                rule: "det.suppression_budget",
                path: format!("crates/{krate}/src/lib.rs"),
                line: 1,
                message: format!(
                    "crate `{krate}` carries {} det.*/conc.*/unit.* suppressions against \
                     a frozen budget of {budget} [{}] — admitting a new one means raising \
                     the budget in edm-audit's DET_PRAGMA_BUDGETS, in the same change",
                    sites.len(),
                    sites.join(", ")
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// Library crate roots must carry `#![forbid(unsafe_code)]`.
pub fn check_forbid_unsafe(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !(file.rel_path.starts_with("crates/") && file.rel_path.ends_with("/src/lib.rs")) {
        return;
    }
    let v = View {
        src: &file.src,
        toks: &file.sig,
    };
    for i in 0..v.toks.len() {
        if v.is(i, "#")
            && v.is(i + 1, "!")
            && v.is(i + 2, "[")
            && v.is_ident(i + 3, "forbid")
            && v.is(i + 4, "(")
            && v.is_ident(i + 5, "unsafe_code")
        {
            return;
        }
    }
    findings.push(Finding {
        rule: "unsafe.forbid_missing",
        path: file.rel_path.clone(),
        line: 1,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        chain: Vec::new(),
    });
}

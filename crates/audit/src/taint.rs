//! `det.taint` — interprocedural nondeterminism taint tracking.
//!
//! Sources: wall-clock reads (`Instant::now`, `SystemTime::now`),
//! ambient RNG (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`),
//! process environment reads, thread identity, and iteration over
//! unordered hash containers. Sinks: assignments to `self.*` fields in
//! the simulation-state crates (plus `snap`) and arguments fed to the
//! obs journal/recorder methods. A finding fires only when a source
//! value *reaches* a sink, and carries the full source→sink chain.
//!
//! The analysis is a flow-insensitive-within-loops, two-pass transfer
//! over each function's statement skeleton plus a monotone fixpoint
//! over per-function summaries:
//!
//! - `returns_concrete` — the fn returns a value tainted by a source it
//!   reaches itself (chain recorded);
//! - `returns_params[i]` — the fn returns its `i`-th parameter's taint
//!   (chain suffix recorded);
//! - `param_sinks[i]` — the fn feeds its `i`-th parameter into a sink
//!   (chain suffix ending at the sink).
//!
//! Chains are first-writer-wins, so the fixpoint is monotone and
//! terminates. Resolution comes from [`crate::symgraph`]: unresolved
//! calls propagate nothing — the deliberate bias is that *recognized*
//! sources and sinks are matched by name pattern, while propagation
//! only follows unique, workspace-local edges.

use std::collections::BTreeMap;

use crate::ast::{Call, Stmt, StmtKind};
use crate::report::Finding;
use crate::symgraph::SymGraph;

/// Crates whose `self.*` fields count as sim-state sinks.
const SINK_CRATES: &[&str] = &["ssd", "cluster", "core", "workload", "snap"];

/// Recorder/journal methods whose arguments count as journal sinks.
const RECORDER_SINKS: &[&str] = &[
    "event",
    "counter",
    "gauge",
    "latency",
    "merge_histogram",
    "set_now",
];

/// Hash-container iteration methods (unordered order source).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

const MAX_CHAIN: usize = 8;

type Chain = Vec<String>;

/// A value's taint: possibly concretely tainted (chain from a source),
/// possibly carrying taint of caller parameters (chain suffixes).
#[derive(Debug, Clone, Default, PartialEq)]
struct Taint {
    concrete: Option<Chain>,
    params: BTreeMap<usize, Chain>,
}

impl Taint {
    fn is_clean(&self) -> bool {
        self.concrete.is_none() && self.params.is_empty()
    }

    /// First-writer-wins merge (monotone: chains never change once set).
    fn merge(&mut self, other: &Taint) {
        if self.concrete.is_none() {
            self.concrete.clone_from(&other.concrete);
        }
        for (k, v) in &other.params {
            self.params.entry(*k).or_insert_with(|| v.clone());
        }
    }

    fn extend_chain(&self, step: String) -> Taint {
        Taint {
            concrete: self.concrete.as_ref().map(|c| push_step(c, &step)),
            params: self
                .params
                .iter()
                .map(|(k, c)| (*k, push_step(c, &step)))
                .collect(),
        }
    }
}

fn push_step(chain: &Chain, step: &str) -> Chain {
    let mut c = chain.clone();
    if c.len() < MAX_CHAIN {
        c.push(step.to_string());
    }
    c
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Summary {
    returns_concrete: Option<Chain>,
    returns_params: BTreeMap<usize, Chain>,
    /// param index → (chain suffix ending at the sink, sink line).
    param_sinks: BTreeMap<usize, Chain>,
}

/// Runs the taint analysis over the whole workspace.
pub fn check_taint(graph: &SymGraph<'_>, findings: &mut Vec<Finding>) {
    let scope = graph.analyzable();
    let mut summaries: Vec<Summary> = vec![Summary::default(); graph.fns.len()];
    // Fixpoint over summaries (first-writer-wins chains ⇒ monotone).
    for _round in 0..6 {
        let mut changed = false;
        for &i in &scope {
            let (summary, _) = analyze_fn(graph, i, &summaries, false);
            if summary != summaries[i] {
                summaries[i] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Emission pass: report concrete-taint-reaches-sink findings.
    for &i in &scope {
        let (_, mut found) = analyze_fn(graph, i, &summaries, true);
        findings.append(&mut found);
    }
}

/// One transfer over fn `idx`'s statement skeleton. Two passes so taint
/// introduced late in a loop body reaches reads earlier in it.
fn analyze_fn(
    graph: &SymGraph<'_>,
    idx: usize,
    summaries: &[Summary],
    emit: bool,
) -> (Summary, Vec<Finding>) {
    let node = &graph.fns[idx];
    let file = graph.file_of(idx);
    let decl = node.ctx.decl;
    let here = |line: u32| format!("{}:{}", file.rel_path, line);
    let mut summary = Summary::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut env: BTreeMap<String, Taint> = BTreeMap::new();
    for (i, p) in decl.params.iter().enumerate() {
        if !p.name.is_empty() && p.name != "self" {
            env.insert(
                p.name.clone(),
                Taint {
                    concrete: None,
                    params: BTreeMap::from([(i, Vec::new())]),
                },
            );
        }
    }
    let hash_locals = hash_container_locals(decl);
    let sink_crate = SINK_CRATES.contains(&file.crate_name.as_str());

    for pass in 0..2 {
        let emit_now = emit && pass == 1;
        for stmt in &decl.body {
            let mut value = Taint::default();
            // Reads of tainted places.
            for path in &stmt.idents {
                if let Some(t) = lookup(&env, path) {
                    value.merge(&t);
                }
            }
            // Calls: sources, summaries, and sink arguments.
            for call in &stmt.calls {
                if let Some(desc) = source_desc(graph, idx, call, &hash_locals) {
                    value.merge(&Taint {
                        concrete: Some(vec![format!("{}: {desc}", here(call.line))]),
                        params: BTreeMap::new(),
                    });
                }
                let callee = graph.resolve(idx, call);
                let arg_taints: Vec<Taint> = call
                    .args
                    .iter()
                    .map(|paths| {
                        let mut t = Taint::default();
                        for p in paths {
                            if let Some(x) = lookup(&env, p) {
                                t.merge(&x);
                            }
                        }
                        t
                    })
                    .collect();
                if let Some(c) = callee {
                    let cs = &summaries[c];
                    let cname = &graph.fns[c].ctx.decl.name;
                    // Return-taint from the callee itself.
                    if let Some(chain) = &cs.returns_concrete {
                        let step =
                            format!("{}: tainted value returned by `{cname}()`", here(call.line));
                        value.merge(&Taint {
                            concrete: Some(push_step(chain, &step)),
                            params: BTreeMap::new(),
                        });
                    }
                    // Param pass-through and param-to-sink flows. The
                    // callee indexes params including any `self`
                    // receiver, which never appears in `call.args`.
                    let skip = usize::from(
                        call.method
                            && graph.fns[c]
                                .ctx
                                .decl
                                .params
                                .first()
                                .is_some_and(|p| p.name == "self"),
                    );
                    for (ai, at) in arg_taints.iter().enumerate() {
                        if at.is_clean() {
                            continue;
                        }
                        let pi = ai + skip;
                        let into = format!(
                            "{}: passes into `{cname}(…)` argument {}",
                            here(call.line),
                            ai + 1
                        );
                        if let Some(suffix) = cs.returns_params.get(&pi) {
                            let mut ret = at.extend_chain(into.clone());
                            ret = append_suffix(&ret, suffix);
                            value.merge(&ret);
                        }
                        if let Some(suffix) = cs.param_sinks.get(&pi) {
                            if let Some(chain) = &at.concrete {
                                if emit_now {
                                    let mut full = push_step(chain, &into);
                                    for s in suffix {
                                        if full.len() < MAX_CHAIN {
                                            full.push(s.clone());
                                        }
                                    }
                                    findings.push(sink_finding(file, call.line, full));
                                }
                            }
                            for (k, chain) in &at.params {
                                let mut full = push_step(chain, &into);
                                for s in suffix {
                                    if full.len() < MAX_CHAIN {
                                        full.push(s.clone());
                                    }
                                }
                                summary.param_sinks.entry(*k).or_insert(full);
                            }
                        }
                    }
                }
                // Journal/recorder sink: tainted argument to a recorder
                // method. Only for method calls — a free fn named
                // `event` elsewhere is not the journal.
                if call.method && RECORDER_SINKS.contains(&call.callee.as_str()) {
                    let sink_step = format!(
                        "{}: feeds the journal via `.{}(…)`",
                        here(call.line),
                        call.callee
                    );
                    for at in &arg_taints {
                        if let Some(chain) = &at.concrete {
                            if emit_now {
                                findings.push(sink_finding(
                                    file,
                                    call.line,
                                    push_step(chain, &sink_step),
                                ));
                            }
                        }
                        for (k, chain) in &at.params {
                            summary
                                .param_sinks
                                .entry(*k)
                                .or_insert_with(|| push_step(chain, &sink_step));
                        }
                    }
                }
            }
            // Binding / sink effects of the statement itself.
            match &stmt.kind {
                StmtKind::Let { names } => {
                    if !value.is_clean() {
                        let step =
                            format!("{}: bound to `{}`", here(stmt.line), names.join("`, `"));
                        let bound = value.extend_chain(step);
                        for n in names {
                            env.entry(n.clone()).or_default().merge(&bound);
                        }
                    }
                }
                StmtKind::Assign { target } => {
                    if !value.is_clean() {
                        if sink_crate && target.starts_with("self.") {
                            let sink_step = format!(
                                "{}: assigned to sim-state field `{target}`",
                                here(stmt.line)
                            );
                            if let Some(chain) = &value.concrete {
                                if emit_now {
                                    findings.push(sink_finding(
                                        file,
                                        stmt.line,
                                        push_step(chain, &sink_step),
                                    ));
                                }
                            }
                            for (k, chain) in &value.params {
                                summary
                                    .param_sinks
                                    .entry(*k)
                                    .or_insert_with(|| push_step(chain, &sink_step));
                            }
                        } else {
                            env.entry(target.clone()).or_default().merge(&value);
                        }
                    }
                }
                StmtKind::Return => {
                    if !value.is_clean() {
                        if summary.returns_concrete.is_none() {
                            summary.returns_concrete.clone_from(&value.concrete);
                        }
                        for (k, c) in &value.params {
                            summary
                                .returns_params
                                .entry(*k)
                                .or_insert_with(|| c.clone());
                        }
                    }
                }
                StmtKind::Other => {
                    // `for <pat> in <tainted>`: bind the loop pattern.
                    if !value.is_clean() && first_token_is(file, stmt, "for") {
                        let step = format!("{}: iterated in `for` loop", here(stmt.line));
                        let bound = value.extend_chain(step);
                        for p in &stmt.idents {
                            let head = p.split('.').next().unwrap_or(p);
                            env.entry(head.to_string()).or_default().merge(&bound);
                        }
                    }
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    (summary, findings)
}

fn sink_finding(file: &crate::source::SourceFile, line: u32, chain: Chain) -> Finding {
    let src = chain.first().cloned().unwrap_or_default();
    Finding {
        rule: "det.taint",
        path: file.rel_path.clone(),
        line,
        message: format!("nondeterministic value reaches a determinism sink (source: {src})"),
        chain,
    }
}

fn append_suffix(t: &Taint, suffix: &Chain) -> Taint {
    let app = |c: &Chain| {
        let mut out = c.clone();
        for s in suffix {
            if out.len() < MAX_CHAIN {
                out.push(s.clone());
            }
        }
        out
    };
    Taint {
        concrete: t.concrete.as_ref().map(app),
        params: t.params.iter().map(|(k, c)| (*k, app(c))).collect(),
    }
}

/// Taint of a dotted read: exact key, a tainted container prefix, or a
/// tainted member under the read path.
fn lookup(env: &BTreeMap<String, Taint>, path: &str) -> Option<Taint> {
    let mut out = Taint::default();
    for (k, t) in env {
        let related = k == path
            || path
                .strip_prefix(k.as_str())
                .is_some_and(|r| r.starts_with('.'))
            || k.strip_prefix(path).is_some_and(|r| r.starts_with('.'));
        if related {
            out.merge(t);
        }
    }
    if out.is_clean() {
        None
    } else {
        Some(out)
    }
}

/// Locals bound to hash containers in this fn: `let m = HashMap::new()`
/// (callee path) or `let m: HashMap<…> = …` (the type name surfaces in
/// the statement's ident paths).
fn hash_container_locals(decl: &crate::ast::FnDecl) -> Vec<String> {
    let mut out = Vec::new();
    for stmt in &decl.body {
        if let StmtKind::Let { names } = &stmt.kind {
            let from_call = stmt
                .calls
                .iter()
                .any(|c| c.callee.starts_with("HashMap::") || c.callee.starts_with("HashSet::"));
            let from_ty = stmt.idents.iter().any(|p| p == "HashMap" || p == "HashSet");
            if from_call || from_ty {
                out.extend(names.iter().cloned());
            }
        }
    }
    out
}

/// Is `call` a nondeterminism source? Returns the chain-step text.
fn source_desc(
    graph: &SymGraph<'_>,
    fn_idx: usize,
    call: &Call,
    hash_locals: &[String],
) -> Option<String> {
    let c = call.callee.as_str();
    if (c.contains("Instant") || c.contains("SystemTime")) && c.ends_with("::now") {
        return Some(format!("wall-clock read (`{c}()`)"));
    }
    if c.ends_with("thread_rng") || c.ends_with("from_entropy") || c.contains("OsRng") {
        return Some(format!("ambient RNG (`{c}()`)"));
    }
    if c == "random" || c.ends_with("::random") {
        return Some(format!("ambient RNG (`{c}()`)"));
    }
    if c.contains("env") {
        let last = c.rsplit("::").next().unwrap_or(c);
        if matches!(last, "var" | "var_os" | "vars" | "args" | "args_os") {
            return Some(format!("process-environment read (`{c}()`)"));
        }
    }
    if c.ends_with("thread::current")
        || c == "available_parallelism"
        || c.ends_with("::available_parallelism")
    {
        return Some(format!("thread/host identity (`{c}()`)"));
    }
    // Unordered iteration: `.iter()`-family on a known hash container.
    if call.method && ITER_METHODS.contains(&c) {
        if let Some(recv) = &call.recv {
            let head = recv.split('.').next().unwrap_or(recv);
            if hash_locals.iter().any(|l| l == head) {
                return Some(format!("unordered iteration over hash container `{recv}`"));
            }
            if let Some(field) = recv.strip_prefix("self.") {
                let node = &graph.fns[fn_idx];
                let file = graph.file_of(fn_idx);
                let field_head = field.split('.').next().unwrap_or(field);
                if let Some(owner) = node.ctx.owner {
                    if let Some(ty) = graph.field_type(&file.crate_name, owner, field_head) {
                        if ty.contains("HashMap") || ty.contains("HashSet") {
                            return Some(format!(
                                "unordered iteration over hash container `{recv}`"
                            ));
                        }
                    }
                }
            }
        }
    }
    None
}

fn first_token_is(file: &crate::source::SourceFile, stmt: &Stmt, kw: &str) -> bool {
    file.sig
        .get(stmt.lo)
        .is_some_and(|t| t.text(&file.src) == kw)
}

//! `conc.lock_order` / `conc.shared_state` — the static race-detector
//! layer over the sharded engine, the serve daemon, and the obs
//! buffers.
//!
//! Lock identity is *declared*, not guessed: a lock is a struct field
//! (or `let`-bound local) whose type names `Mutex`/`RwLock` or a
//! workspace `type` alias that resolves to one. `.lock()/.read()/
//! .write()` only count as acquisitions on such a receiver, which keeps
//! `io::Read::read` and friends out of the picture. Functions whose
//! return statement acquires a known lock are acquire-and-return-guard
//! helpers (`lock_ingest` in serve/state.rs), so calls to them acquire
//! interprocedurally.
//!
//! From per-function acquisition simulation the checker builds a global
//! lock-order graph (edges `A → B` = B acquired while A held, with
//! witness sites). An `A → B` edge coexisting with `B → A` is an
//! inconsistent acquisition order — the classic deadlock shape — and
//! fires `conc.lock_order` at both witnesses with the full chain.
//! Blocking calls (`recv`, `join`, `accept`, …, transitively through
//! workspace calls) made while a guard is live also fire
//! `conc.lock_order`. `conc.shared_state` flags spawn statements whose
//! closure captures a non-`Sync` local or field (`Rc`, `RefCell`,
//! `Cell`).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{FnDecl, ItemKind, StmtKind};
use crate::report::Finding;
use crate::source::SourceFile;
use crate::symgraph::SymGraph;

/// Blocking calls when made with zero arguments (`join` with arguments
/// is `slice::join`; `recv` and `accept` take none on channels and
/// listeners) — plus the always-blocking set.
const BLOCKING_NOARG: &[&str] = &["recv", "join", "accept", "park"];
const BLOCKING_ANYARG: &[&str] = &[
    "recv_timeout",
    "sleep",
    "park_timeout",
    "wait",
    "wait_timeout",
];

/// Non-`Sync` wrapper types a spawned closure must not capture.
const NON_SYNC: &[&str] = &["Rc", "RefCell", "Cell"];

#[derive(Default)]
struct LockWorld {
    /// Type names that denote a lock (`Mutex`, `RwLock`, plus aliases).
    lock_types: BTreeSet<String>,
    /// fn index → lock id its return statement acquires (guard-returning
    /// helpers).
    guard_fns: BTreeMap<usize, String>,
    /// fn index → first blocking cause ("desc", path, line), propagated
    /// transitively through resolved workspace calls.
    blocking: BTreeMap<usize, (String, String, u32)>,
}

pub fn check_conc(graph: &SymGraph<'_>, findings: &mut Vec<Finding>) {
    let scope = graph.analyzable();
    let mut world = LockWorld {
        lock_types: lock_type_names(graph.files),
        ..LockWorld::default()
    };

    // Direct blocking causes, then transitive propagation (bounded).
    for &i in &scope {
        let file = graph.file_of(i);
        if let Some((desc, line)) = direct_blocking(graph.fns[i].ctx.decl) {
            world
                .blocking
                .insert(i, (desc, file.rel_path.clone(), line));
        }
    }
    for _ in 0..8 {
        let mut grew = Vec::new();
        for &i in &scope {
            if world.blocking.contains_key(&i) {
                continue;
            }
            for &(callee, line) in &graph.fns[i].edges {
                if let Some((desc, ..)) = world.blocking.get(&callee) {
                    let file = graph.file_of(i);
                    grew.push((
                        i,
                        (
                            format!("{desc} via `{}()`", graph.fns[callee].ctx.decl.name),
                            file.rel_path.clone(),
                            line,
                        ),
                    ));
                    break;
                }
            }
        }
        if grew.is_empty() {
            break;
        }
        for (i, v) in grew {
            world.blocking.entry(i).or_insert(v);
        }
    }

    // Guard-returning helpers: return statement acquires a known lock.
    for &i in &scope {
        let decl = graph.fns[i].ctx.decl;
        for stmt in &decl.body {
            if stmt.kind != StmtKind::Return {
                continue;
            }
            for call in &stmt.calls {
                if let Some(lock) = acquisition(graph, i, call, &world, &BTreeMap::new()) {
                    world.guard_fns.insert(i, lock);
                }
            }
        }
    }

    // Per-fn acquisition simulation → global order edges + blocking
    // findings.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for &i in &scope {
        simulate(graph, i, &world, &mut edges, findings);
        check_shared_state(graph, i, findings);
    }

    // Inconsistent order: A→B and B→A both witnessed.
    for ((a, b), (path, line)) in &edges {
        if a >= b {
            continue; // report each cycle once, from the lesser pair
        }
        if let Some((rpath, rline)) = edges.get(&(b.clone(), a.clone())) {
            findings.push(Finding {
                rule: "conc.lock_order",
                path: path.clone(),
                line: *line,
                message: format!(
                    "inconsistent lock order: `{b}` acquired under `{a}` here, but `{a}` \
                     acquired under `{b}` at {rpath}:{rline}"
                ),
                chain: vec![
                    format!("{path}:{line}: `{a}` then `{b}`"),
                    format!("{rpath}:{rline}: `{b}` then `{a}`"),
                ],
            });
            findings.push(Finding {
                rule: "conc.lock_order",
                path: rpath.clone(),
                line: *rline,
                message: format!(
                    "inconsistent lock order: `{a}` acquired under `{b}` here, but `{b}` \
                     acquired under `{a}` at {path}:{line}"
                ),
                chain: vec![
                    format!("{rpath}:{rline}: `{b}` then `{a}`"),
                    format!("{path}:{line}: `{a}` then `{b}`"),
                ],
            });
        }
    }
}

/// `Mutex`/`RwLock` plus workspace `type` aliases whose right-hand side
/// names one (serve's `type Lock<T> = std::sync::Mutex<T>`).
fn lock_type_names(files: &[SourceFile]) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = ["Mutex", "RwLock"].iter().map(|s| s.to_string()).collect();
    // One alias hop is enough for this workspace.
    for _ in 0..2 {
        for f in files {
            collect_aliases(f, &f.ast.items, &mut out);
        }
    }
    out
}

fn collect_aliases(f: &SourceFile, items: &[crate::ast::Item], out: &mut BTreeSet<String>) {
    for item in items {
        match &item.kind {
            ItemKind::Other("type") => {
                let texts: Vec<&str> = (item.lo..item.hi)
                    .filter_map(|i| f.sig.get(i).map(|t| t.text(&f.src)))
                    .collect();
                // `type <Name> … = … <LockType> …`
                if let Some(eq) = texts.iter().position(|t| *t == "=") {
                    if texts[eq..].iter().any(|t| out.contains(*t)) {
                        if let Some(name) = texts.iter().skip(1).find(|t| {
                            t.chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_')
                                && **t != "type"
                                && **t != "pub"
                        }) {
                            out.insert((*name).to_string());
                        }
                    }
                }
            }
            ItemKind::Mod(m) => collect_aliases(f, &m.items, out),
            _ => {}
        }
    }
}

/// Does this type text name a lock (word match, not substring)?
fn ty_is_lock(ty: &str, lock_types: &BTreeSet<String>) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|w| lock_types.contains(w))
}

fn ty_is_non_sync(ty: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|w| NON_SYNC.contains(&w))
}

/// First direct blocking call in `decl`, with description and line.
fn direct_blocking(decl: &FnDecl) -> Option<(String, u32)> {
    for stmt in &decl.body {
        for call in &stmt.calls {
            if blocking_call(&call.callee, call.method, call.args.len()) {
                return Some((format!("blocking call `{}()`", call.callee), call.line));
            }
        }
    }
    None
}

fn blocking_call(callee: &str, method: bool, nargs: usize) -> bool {
    let last = callee.rsplit("::").next().unwrap_or(callee);
    if BLOCKING_ANYARG.contains(&last) {
        // `sleep`/`wait` as free names are common; require a path or
        // method shape so `fn sleep` locals don't trip it.
        return method || callee.contains("::");
    }
    BLOCKING_NOARG.contains(&last) && nargs == 0 && (method || callee.contains("::"))
}

/// If `call` acquires a lock, returns the lock's stable id.
/// `local_locks` maps let-bound lock locals to ids.
fn acquisition(
    graph: &SymGraph<'_>,
    fn_idx: usize,
    call: &crate::ast::Call,
    world: &LockWorld,
    local_locks: &BTreeMap<String, String>,
) -> Option<String> {
    if call.method && matches!(call.callee.as_str(), "lock" | "read" | "write") {
        let recv = call.recv.as_deref()?;
        let head = recv.split('.').next().unwrap_or(recv);
        if let Some(id) = local_locks.get(recv).or_else(|| local_locks.get(head)) {
            return Some(id.clone());
        }
        if let Some(field_path) = recv.strip_prefix("self.") {
            let field = field_path.split('.').next().unwrap_or(field_path);
            let owner = graph.fns[fn_idx].ctx.owner?;
            let file = graph.file_of(fn_idx);
            let ty = graph.field_type(&file.crate_name, owner, field)?;
            if ty_is_lock(ty, &world.lock_types) {
                return Some(format!("{owner}::{field}"));
            }
        }
        return None;
    }
    // Guard-returning helper call.
    let callee = graph.resolve(fn_idx, call)?;
    world.guard_fns.get(&callee).cloned()
}

/// Walks one function, tracking held guards; records order edges and
/// blocking-under-lock findings.
fn simulate(
    graph: &SymGraph<'_>,
    fn_idx: usize,
    world: &LockWorld,
    edges: &mut BTreeMap<(String, String), (String, u32)>,
    findings: &mut Vec<Finding>,
) {
    let decl = graph.fns[fn_idx].ctx.decl;
    let file = graph.file_of(fn_idx);
    // Guard-returning helpers intentionally end with a live guard.
    let is_guard_fn = world.guard_fns.contains_key(&fn_idx);
    let mut local_locks: BTreeMap<String, String> = BTreeMap::new();
    // (lock id, guard names — empty = statement-temporary, line)
    let mut held: Vec<(String, Vec<String>, u32)> = Vec::new();
    for stmt in &decl.body {
        // New lock locals: `let m = Mutex::new(…)` / `Arc::new(Mutex::new(…))`.
        if let StmtKind::Let { names } = &stmt.kind {
            let makes_lock = stmt.calls.iter().any(|c| {
                c.callee
                    .rsplit("::")
                    .nth(1)
                    .is_some_and(|ty| world.lock_types.contains(ty))
                    && c.callee.ends_with("::new")
            });
            if makes_lock {
                for n in names {
                    local_locks.insert(n.clone(), format!("{}::{n}", decl.name));
                }
            }
        }
        let mut temp_acquired = 0usize;
        for call in &stmt.calls {
            if let Some(lock) = acquisition(graph, fn_idx, call, world, &local_locks) {
                // Reentrant same-lock acquisition is a self-deadlock, but
                // the flattened skeleton can't see branch exclusivity —
                // only record cross-lock order edges.
                for (prev, _, _) in &held {
                    if *prev != lock {
                        edges
                            .entry((prev.clone(), lock.clone()))
                            .or_insert_with(|| (file.rel_path.clone(), call.line));
                    }
                }
                let names = match &stmt.kind {
                    StmtKind::Let { names } => names.clone(),
                    _ => Vec::new(),
                };
                if names.is_empty() {
                    temp_acquired += 1;
                }
                held.push((lock, names, call.line));
            }
        }
        // Blocking while a guard is live.
        if !held.is_empty() {
            let mut blocked: Option<(String, u32)> = None;
            for call in &stmt.calls {
                if blocking_call(&call.callee, call.method, call.args.len()) {
                    blocked = Some((format!("`{}()`", call.callee), call.line));
                    break;
                }
                if acquisition(graph, fn_idx, call, world, &local_locks).is_none() {
                    if let Some(callee) = graph.resolve(fn_idx, call) {
                        if let Some((desc, bpath, bline)) = world.blocking.get(&callee) {
                            blocked = Some((
                                format!(
                                    "`{}()` ({desc} at {bpath}:{bline})",
                                    graph.fns[callee].ctx.decl.name
                                ),
                                call.line,
                            ));
                            break;
                        }
                    }
                }
            }
            if let (Some((desc, line)), Some((lock, _, acq_line))) = (blocked, held.first()) {
                findings.push(Finding {
                    rule: "conc.lock_order",
                    path: file.rel_path.clone(),
                    line,
                    message: format!("lock `{lock}` held across blocking call {desc}"),
                    chain: vec![
                        format!("{}:{}: acquires `{lock}`", file.rel_path, acq_line),
                        format!(
                            "{}:{}: blocks on {desc} while holding it",
                            file.rel_path, line
                        ),
                    ],
                });
            }
        }
        // Explicit releases and statement-temporary guards.
        for call in &stmt.calls {
            if call.callee == "drop" && !call.method {
                if let Some(dropped) = call.args.first().and_then(|a| a.first()) {
                    held.retain(|(_, names, _)| !names.iter().any(|n| n == dropped));
                }
            }
        }
        if temp_acquired > 0 {
            held.retain(|(_, names, _)| !names.is_empty());
        }
        let _ = is_guard_fn; // guards returned by helpers stay held by design
    }
}

/// `conc.shared_state`: a spawn statement that references a known
/// non-`Sync` local or field.
fn check_shared_state(graph: &SymGraph<'_>, fn_idx: usize, findings: &mut Vec<Finding>) {
    let decl = graph.fns[fn_idx].ctx.decl;
    let file = graph.file_of(fn_idx);
    // Locals bound from Rc/RefCell/Cell constructors or annotated so.
    let mut non_sync: BTreeMap<&str, &str> = BTreeMap::new();
    for stmt in &decl.body {
        if let StmtKind::Let { names } = &stmt.kind {
            let wrapper = stmt.calls.iter().find_map(|c| {
                let ty = c.callee.rsplit("::").nth(1)?;
                NON_SYNC.contains(&ty).then_some(ty)
            });
            let from_ty = stmt
                .idents
                .iter()
                .find_map(|p| NON_SYNC.iter().find(|t| *t == p).copied());
            if let Some(ty) = wrapper.or(from_ty) {
                for n in names {
                    non_sync.insert(n.as_str(), ty);
                }
            }
        }
    }
    for stmt in &decl.body {
        // Closure arguments read through the matching `)`, so the spawn
        // call's arg paths see captures even when the closure body spans
        // statements of its own.
        let mut candidates: Vec<&String> = stmt.idents.iter().collect();
        let mut spawns = false;
        for c in &stmt.calls {
            if c.callee == "spawn" || c.callee.ends_with("::spawn") {
                spawns = true;
                candidates.extend(c.args.iter().flatten());
            }
        }
        if !spawns {
            continue;
        }
        candidates.sort();
        candidates.dedup();
        for path in candidates {
            let head = path.split('.').next().unwrap_or(path);
            if let Some(ty) = non_sync.get(head) {
                findings.push(Finding {
                    rule: "conc.shared_state",
                    path: file.rel_path.clone(),
                    line: stmt.line,
                    message: format!(
                        "non-Sync `{ty}` value `{head}` is reachable from a spawned closure"
                    ),
                    chain: vec![format!(
                        "{}:{}: `{head}` (a `{ty}`) captured by spawn",
                        file.rel_path, stmt.line
                    )],
                });
            }
            // Fields: `self.x` where x is an Rc/RefCell/Cell field.
            if let Some(field_path) = path.strip_prefix("self.") {
                let field = field_path.split('.').next().unwrap_or(field_path);
                if let Some(owner) = graph.fns[fn_idx].ctx.owner {
                    if let Some(ty) = graph.field_type(&file.crate_name, owner, field) {
                        if ty_is_non_sync(ty) {
                            findings.push(Finding {
                                rule: "conc.shared_state",
                                path: file.rel_path.clone(),
                                line: stmt.line,
                                message: format!(
                                    "non-Sync field `{owner}::{field}` is reachable from a \
                                     spawned closure"
                                ),
                                chain: vec![format!(
                                    "{}:{}: `self.{field}` captured by spawn",
                                    file.rel_path, stmt.line
                                )],
                            });
                        }
                    }
                }
            }
        }
    }
}

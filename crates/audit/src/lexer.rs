//! A small hand-rolled Rust lexer: just enough token structure for the
//! audit rules, with the parts that trip up grep-style checkers done
//! properly — strings (including raw strings with arbitrary `#` fences
//! and byte strings), char literals vs. lifetimes, and *nested* block
//! comments.
//!
//! The lexer is total: any input produces a token stream without
//! panicking. Unterminated strings/comments extend to end of input.
//! Tokens carry byte spans into the source and 1-based line numbers;
//! spans are strictly monotonic and non-overlapping (property-tested).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (rules match on text).
    Ident,
    /// `'a`, `'static`, `'_` — *not* a char literal.
    Lifetime,
    /// Integer literal, including suffixed (`4096u64`) and hex/oct/bin.
    Int,
    /// Float literal (`0.5`, `1e-3`, `2.0f32`).
    Float,
    /// `"…"`, `r#"…"#`, `b"…"`, `br##"…"##` — all string-ish literals.
    Str,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` (incl. `///`, `//!`) — text includes the slashes.
    LineComment,
    /// `/* … */` with nesting — text includes the delimiters.
    BlockComment,
    /// Any other single character (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One token: kind plus location. The text is borrowed via
/// [`Token::text`] to keep the stream allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Tokenizes `src` completely. Total: never panics, consumes every byte
/// (every byte of input lies inside exactly zero or one token span, and
/// spans appear in strictly increasing order).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    self.push(TokKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    self.push(TokKind::BlockComment, start, line);
                }
                b'r' | b'b' if self.try_raw_or_byte_literal() => {
                    // kind was pushed by the helper
                }
                b'"' => {
                    self.take_string();
                    self.push(TokKind::Str, start, line);
                }
                b'\'' => {
                    let kind = self.take_quote();
                    self.push(kind, start, line);
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    self.take_ident();
                    self.push(TokKind::Ident, start, line);
                }
                b'0'..=b'9' => {
                    let kind = self.take_number();
                    self.push(kind, start, line);
                }
                _ => {
                    // One punct per char; skip over multi-byte UTF-8
                    // sequences as a single Punct so spans stay on char
                    // boundaries.
                    let ch_len = utf8_len(b);
                    self.pos = (self.pos + ch_len).min(self.bytes.len());
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump_counting_lines(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn take_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn take_block_comment(&mut self) {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_lines();
            }
        }
    }

    /// At a `"`: consume the (cooked) string literal, honoring `\`
    /// escapes. Unterminated strings run to end of input.
    fn take_string(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump_counting_lines();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump_counting_lines(),
            }
        }
    }

    /// At `r` or `b`: if this starts `r"`, `r#…#"`, `br"`, `b"`, `b'`,
    /// or a raw identifier `r#ident`, consume it and push the right
    /// token, returning true. Otherwise return false (plain identifier).
    fn try_raw_or_byte_literal(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let mut i = self.pos + 1;
        let first = self.bytes[self.pos];
        if first == b'b' && self.bytes.get(i) == Some(&b'r') {
            i += 1; // br…
        }
        let mut hashes = 0usize;
        while self.bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        match (first, self.bytes.get(i).copied()) {
            // Raw string r"…", r#"…"#, br##"…"## (b requires the r).
            (b'r', Some(b'"')) | (b'b', Some(b'"')) if first == b'r' || i > self.pos + 1 => {
                self.pos = i + 1;
                self.take_raw_string_body(hashes);
                self.push(TokKind::Str, start, line);
                true
            }
            // Cooked byte string b"…" (no hashes, no r).
            (b'b', Some(b'"')) if hashes == 0 => {
                self.pos = i;
                self.take_string();
                self.push(TokKind::Str, start, line);
                true
            }
            // Byte char b'x'.
            (b'b', Some(b'\'')) if hashes == 0 => {
                self.pos = i + 1;
                self.take_char_body();
                self.push(TokKind::Char, start, line);
                true
            }
            // Raw identifier r#ident.
            (b'r', Some(c)) if hashes == 1 && is_ident_start(c) => {
                self.pos = i;
                self.take_ident();
                self.push(TokKind::Ident, start, line);
                true
            }
            _ => {
                self.take_ident();
                self.push(TokKind::Ident, start, line);
                true
            }
        }
    }

    /// After the opening quote of a raw string with `hashes` fence
    /// hashes: consume until `"` followed by that many `#`s.
    fn take_raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.bytes.get(self.pos + 1 + k) != Some(&b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump_counting_lines();
        }
    }

    /// At a `'`: decide char literal vs. lifetime.
    fn take_quote(&mut self) -> TokKind {
        // 'x' / '\…' are char literals; '<ident> without a closing quote
        // right after one char is a lifetime ('a, 'static, '_).
        match (self.peek(1), self.peek(2)) {
            (Some(b'\\'), _) => {
                self.pos += 1;
                self.take_char_body();
                TokKind::Char
            }
            (Some(c), Some(b'\'')) if c != b'\'' => {
                // 'x' exactly — note ''' (empty) stays a Punct-ish char.
                self.pos += 3;
                TokKind::Char
            }
            (Some(c), _) if is_ident_start(c) => {
                self.pos += 1;
                self.take_ident();
                TokKind::Lifetime
            }
            (Some(c), _) if !c.is_ascii() => {
                // Multi-byte char literal like '→'.
                self.pos += 1;
                self.take_char_body();
                TokKind::Char
            }
            _ => {
                self.pos += 1;
                TokKind::Char
            }
        }
    }

    /// After the opening quote of a char literal: consume through the
    /// closing quote, honoring escapes.
    fn take_char_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump_counting_lines();
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // never span a char literal over a newline
                _ => self.bump_counting_lines(),
            }
        }
    }

    fn take_ident(&mut self) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    /// At a digit: consume the numeric literal (int or float), including
    /// type suffixes. `1.max(0)` and `0..10` keep the dot out of the
    /// number; `1.5`, `1e-3`, `2.0f32` fold it in.
    fn take_number(&mut self) -> TokKind {
        let radix_prefixed = self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'));
        if radix_prefixed {
            self.pos += 2;
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
            return TokKind::Int;
        }
        let mut float = false;
        while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.')
            && matches!(self.bytes.get(self.pos + 1), Some(b'0'..=b'9'))
        {
            float = true;
            self.pos += 1;
            while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b'0'..=b'9' | b'_')
            {
                self.pos += 1;
            }
        } else if self.bytes.get(self.pos) == Some(&b'.')
            && !matches!(self.bytes.get(self.pos + 1), Some(b'.'))
            && !matches!(self.bytes.get(self.pos + 1), Some(&c) if is_ident_start(c))
        {
            // `1.` trailing-dot float (not a range, not a method call).
            float = true;
            self.pos += 1;
        }
        // Exponent: 1e9, 1.5e-3.
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E'))
            && (matches!(self.bytes.get(self.pos + 1), Some(b'0'..=b'9'))
                || (matches!(self.bytes.get(self.pos + 1), Some(b'+') | Some(b'-'))
                    && matches!(self.bytes.get(self.pos + 2), Some(b'0'..=b'9'))))
        {
            float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b'0'..=b'9' | b'_')
            {
                self.pos += 1;
            }
        }
        // Type suffix (u64, f32, …) folds into the token; an `f` suffix
        // marks a float (`2f64`).
        let suffix_start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        if self.bytes.get(suffix_start) == Some(&b'f') {
            float = true;
        }
        if float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

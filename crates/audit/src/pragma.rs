//! The `edm-audit: allow` suppression pragma.
//!
//! Grammar (inside a line comment, leading `//`/`///`/`//!` stripped):
//!
//! ```text
//! // edm-audit: allow(<rule-id>, "<reason>")
//! ```
//!
//! The reason string is mandatory and must be non-empty: a suppression
//! without a recorded justification is itself a finding. A pragma
//! suppresses findings of `<rule-id>`:
//!
//! * on its **own line**, when the line also holds code, or
//! * on the **next code line** otherwise — lines holding only comments
//!   or whitespace are skipped, so pragmas stack.

use crate::lexer::{TokKind, Token};

/// One parsed suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub rule: String,
    pub reason: String,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
}

/// A malformed pragma: reported as a finding, never honored.
#[derive(Debug, Clone)]
pub struct PragmaError {
    pub line: u32,
    pub detail: String,
}

/// Extracts pragmas (and pragma syntax errors) from a token stream.
pub fn parse_pragmas(src: &str, tokens: &[Token]) -> (Vec<Pragma>, Vec<PragmaError>) {
    // Lines that carry at least one non-comment token: pragma targets.
    let code_lines: Vec<u32> = {
        let mut v: Vec<u32> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|t| t.line)
            .collect();
        v.dedup();
        v
    };
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim_start_matches('!');
        let body = body.trim();
        let Some(rest) = body.strip_prefix("edm-audit:") else {
            // Catch near-misses like "edm-audit allow(...)" so a typo'd
            // pragma fails loudly instead of silently not suppressing.
            // Prose that merely mentions the tool name stays a comment.
            if body.starts_with("edm-audit") && body.contains("allow") {
                errors.push(PragmaError {
                    line: t.line,
                    detail: "pragma must start with exactly `edm-audit: allow(...)`".to_string(),
                });
            }
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                let own_line_has_code = code_lines.binary_search(&t.line).is_ok();
                let target_line = if own_line_has_code {
                    t.line
                } else {
                    // First code line strictly after the pragma; a
                    // trailing pragma with no code after it targets its
                    // own line (and will report as unused).
                    match code_lines.binary_search(&(t.line + 1)) {
                        Ok(i) => code_lines[i],
                        Err(i) => code_lines.get(i).copied().unwrap_or(t.line),
                    }
                };
                pragmas.push(Pragma {
                    rule,
                    reason,
                    line: t.line,
                    target_line,
                });
            }
            Err(detail) => errors.push(PragmaError {
                line: t.line,
                detail,
            }),
        }
    }
    (pragmas, errors)
}

/// Parses `allow(<rule>, "<reason>")`, returning (rule, reason).
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(args) = s.strip_prefix("allow") else {
        return Err(format!(
            "unknown pragma action `{}` (only `allow`)",
            first_word(s)
        ));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(args) = args.strip_suffix(')') else {
        return Err("pragma is missing its closing `)`".to_string());
    };
    let Some((rule, reason)) = args.split_once(',') else {
        return Err(
            "expected `allow(<rule>, \"<reason>\")` — the reason string is mandatory".to_string(),
        );
    };
    let rule = rule.trim();
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_')
    {
        return Err(format!("`{rule}` is not a rule id"));
    }
    let reason = reason.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "the reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("the reason string must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

fn first_word(s: &str) -> &str {
    s.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .next()
        .unwrap_or("")
}

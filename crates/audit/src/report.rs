//! Findings, suppression bookkeeping, and the two output renderings
//! (human text, machine JSON). Both renderings are deterministic:
//! findings sort by (path, line, rule, message) and JSON keys are
//! emitted in sorted order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    /// Source→sink chain for path-sensitive findings (`det.taint`,
    /// `conc.*`, `unit.*`): each step is `path:line: description`.
    /// Empty for point findings.
    pub chain: Vec<String>,
}

/// A finding that an `edm-audit: allow` pragma silenced, kept for the
/// JSON summary so suppression volume is visible per rule and crate.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub finding: Finding,
    pub reason: String,
}

/// The result of an audit run.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub files_scanned: usize,
}

impl AuditOutcome {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.path.clone(), f.line, f.rule, f.message.clone());
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(|s| key(&s.finding));
    }

    /// The human report: one `path:line: [rule] message` per finding
    /// (chain steps indented below it), path-sorted, plus a one-line
    /// summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            for step in &f.chain {
                let _ = writeln!(out, "    -> {step}");
            }
        }
        let _ = writeln!(
            out,
            "edm-audit: {} finding{} ({} suppressed) in {} files",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned,
        );
        out
    }

    /// The `--fix-report` machine summary: per-rule, per-crate counts of
    /// open and suppressed findings, plus the open findings themselves.
    pub fn render_json(&self) -> String {
        // rule -> crate -> (open, suppressed)
        let mut counts: BTreeMap<&str, BTreeMap<String, (u64, u64)>> = BTreeMap::new();
        for f in &self.findings {
            counts
                .entry(f.rule)
                .or_default()
                .entry(crate_of(&f.path))
                .or_default()
                .0 += 1;
        }
        for s in &self.suppressed {
            counts
                .entry(s.finding.rule)
                .or_default()
                .entry(crate_of(&s.finding.path))
                .or_default()
                .1 += 1;
        }
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"open\": {},", self.findings.len());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed.len());
        out.push_str("  \"rules\": {\n");
        let nrules = counts.len();
        for (ri, (rule, per_crate)) in counts.iter().enumerate() {
            let _ = write!(out, "    {}: {{", json_str(rule));
            let ncrates = per_crate.len();
            for (ci, (krate, (open, supp))) in per_crate.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}: {{\"open\": {open}, \"suppressed\": {supp}}}{}",
                    json_str(krate),
                    if ci + 1 < ncrates { ", " } else { "" }
                );
            }
            let _ = writeln!(out, "}}{}", if ri + 1 < nrules { "," } else { "" });
        }
        out.push_str("  },\n");
        out.push_str("  \"findings\": [\n");
        let n = self.findings.len();
        for (i, f) in self.findings.iter().enumerate() {
            let chain = if f.chain.is_empty() {
                String::new()
            } else {
                let steps: Vec<String> = f.chain.iter().map(|s| json_str(s)).collect();
                format!(", \"chain\": [{}]", steps.join(", "))
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}{}}}{}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                chain,
                if i + 1 < n { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Crate a workspace-relative path belongs to (`crates/<name>/…`);
/// top-level `tests/` and `examples/` roll up under "harness", which is
/// the crate that compiles them.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("<root>").to_string(),
        Some("tests") | Some("examples") => "harness".to_string(),
        _ => "<root>".to_string(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

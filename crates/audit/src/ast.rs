//! The lightweight item-level AST the semantic rules run on.
//!
//! This is deliberately *not* a full Rust grammar: items (functions,
//! structs, enums, impls, uses, modules) are parsed with their
//! signatures, and function bodies are reduced to a **statement
//! skeleton** — per statement, the binding it introduces or target it
//! assigns, the calls it makes (with per-argument identifier paths),
//! and the identifier paths it reads. That is exactly the granularity
//! the taint, lock-order, and unit rules need, and nothing more; full
//! expression typing stays out of scope.
//!
//! Spans are token ranges into a file's significant-token stream
//! ([`crate::SourceFile::sig`]). The parser is total and the top-level
//! item ranges **partition** the stream: every significant token lies
//! in exactly one item, in order, with no overlap (property-tested over
//! the whole workspace).

/// One parsed file.
#[derive(Debug, Default, Clone)]
pub struct Ast {
    /// Top-level items; their `[lo, hi)` token ranges tile `[0, sig.len())`.
    pub items: Vec<Item>,
}

/// One item. `lo..hi` spans the item's significant tokens, including
/// any leading outer attributes.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// First significant-token index, inclusive.
    pub lo: usize,
    /// Past-the-last significant-token index, exclusive.
    pub hi: usize,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub enum ItemKind {
    Fn(FnDecl),
    Struct(StructDecl),
    Enum(EnumDecl),
    Impl(ImplBlock),
    Mod(ModDecl),
    /// `use path::to::thing;` — the path text, `::`-joined.
    Use(String),
    /// Anything else, labeled: "const", "static", "type", "trait",
    /// "macro", "extern", "attr" (stray attribute), "unparsed".
    Other(&'static str),
}

/// A named-field struct (tuple/unit structs parse with empty `fields`).
#[derive(Debug, Clone)]
pub struct StructDecl {
    pub name: String,
    pub fields: Vec<FieldDecl>,
}

#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    /// The field's type, as whitespace-joined token text.
    pub ty: String,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct EnumDecl {
    pub name: String,
    /// Variant names with their declaration lines.
    pub variants: Vec<(String, u32)>,
}

#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// `impl Trait for Type` — the trait's last path segment.
    pub trait_name: Option<String>,
    /// The implemented type's last path segment.
    pub type_name: String,
    pub fns: Vec<FnDecl>,
}

#[derive(Debug, Clone)]
pub struct ModDecl {
    pub name: String,
    /// `true` when the module carried `#[cfg(test)]`.
    pub cfg_test: bool,
    pub items: Vec<Item>,
}

/// A function: signature plus statement skeleton.
#[derive(Debug, Clone)]
pub struct FnDecl {
    pub name: String,
    pub line: u32,
    /// `true` when the fn carried `#[test]` (or a `#[cfg(test)]` attr).
    pub test: bool,
    pub params: Vec<Param>,
    /// Return type as whitespace-joined token text (`None` = unit).
    pub ret: Option<String>,
    /// Statement skeleton of the body (empty for bodyless trait fns).
    pub body: Vec<Stmt>,
    /// Token range of the body including braces, when present.
    pub body_range: Option<(usize, usize)>,
}

#[derive(Debug, Clone)]
pub struct Param {
    /// First bound identifier of the pattern (`""` for `self` receivers
    /// and wholly unnamed patterns).
    pub name: String,
    /// Type text (`""` for `self` receivers).
    pub ty: String,
}

/// One statement-skeleton entry. Statements are the maximal token runs
/// between `;`, `{`, and `}` anywhere inside the body, so nested blocks
/// flatten into the same list (with `depth` recording nesting).
#[derive(Debug, Clone)]
pub struct Stmt {
    pub line: u32,
    /// Significant-token range of the statement.
    pub lo: usize,
    pub hi: usize,
    /// Brace depth inside the body (1 = body top level).
    pub depth: u32,
    pub kind: StmtKind,
    /// Calls made anywhere in the statement, in token order.
    pub calls: Vec<Call>,
    /// Dotted identifier paths read (e.g. `self.now`, `x`), excluding
    /// callee names, struct-literal field labels, and keywords.
    pub idents: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let <pat> = …;` — every identifier the pattern binds.
    Let {
        names: Vec<String>,
    },
    /// `<path> = …;` / `<path> += …;` — the dotted target path.
    Assign {
        target: String,
    },
    /// `return …;`, `break …`, or the body's tail expression.
    Return,
    Other,
}

/// One call site inside a statement.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee path text: `Instant::now` for path calls, the bare method
    /// name for method calls.
    pub callee: String,
    /// `true` for `recv.method(…)` shapes.
    pub method: bool,
    /// Receiver's dotted path for method calls on a named place
    /// (`self.ingest`, `q.lines`); `None` for chained/call receivers.
    pub recv: Option<String>,
    pub line: u32,
    /// Per-argument dotted identifier paths (top-level comma split).
    pub args: Vec<Vec<String>>,
}

impl Ast {
    /// Every function in the file, with its impl-owner type (if any) and
    /// whether it sits inside a `#[cfg(test)]` module, recursing through
    /// inline modules.
    pub fn fns(&self) -> Vec<FnCtx<'_>> {
        let mut out = Vec::new();
        collect_fns(&self.items, None, false, &mut out);
        out
    }

    /// Every named-field struct in the file (recursing through modules).
    pub fn structs(&self) -> Vec<&StructDecl> {
        let mut out = Vec::new();
        collect_structs(&self.items, &mut out);
        out
    }

    /// Every enum in the file (recursing through modules).
    pub fn enums(&self) -> Vec<&EnumDecl> {
        let mut out = Vec::new();
        collect_enums(&self.items, &mut out);
        out
    }
}

/// A function together with the context the semantic rules scope on.
#[derive(Debug, Clone, Copy)]
pub struct FnCtx<'a> {
    pub decl: &'a FnDecl,
    /// The impl block's type name, for methods.
    pub owner: Option<&'a str>,
    /// The impl block's trait name, for trait-impl methods.
    pub trait_name: Option<&'a str>,
    /// Inside a `#[cfg(test)]` module (or `#[test]`-attributed).
    pub in_test: bool,
}

fn collect_fns<'a>(
    items: &'a [Item],
    owner: Option<&'a str>,
    in_test: bool,
    out: &mut Vec<FnCtx<'a>>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(decl) => out.push(FnCtx {
                decl,
                owner,
                trait_name: None,
                in_test: in_test || decl.test,
            }),
            ItemKind::Impl(imp) => {
                for decl in &imp.fns {
                    out.push(FnCtx {
                        decl,
                        owner: Some(&imp.type_name),
                        trait_name: imp.trait_name.as_deref(),
                        in_test: in_test || decl.test,
                    });
                }
            }
            ItemKind::Mod(m) => collect_fns(&m.items, owner, in_test || m.cfg_test, out),
            _ => {}
        }
    }
}

fn collect_structs<'a>(items: &'a [Item], out: &mut Vec<&'a StructDecl>) {
    for item in items {
        match &item.kind {
            ItemKind::Struct(s) => out.push(s),
            ItemKind::Mod(m) => collect_structs(&m.items, out),
            _ => {}
        }
    }
}

fn collect_enums<'a>(items: &'a [Item], out: &mut Vec<&'a EnumDecl>) {
    for item in items {
        match &item.kind {
            ItemKind::Enum(e) => out.push(e),
            ItemKind::Mod(m) => collect_enums(&m.items, out),
            _ => {}
        }
    }
}
